//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides `crossbeam::channel`: multi-producer multi-consumer
//! channels with the disconnect semantics the workspace relies on,
//! implemented with a `Mutex<VecDeque>` + `Condvar`. Bounded capacity
//! blocks senders; both halves are cloneable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message arrives or all senders drop.
        readable: Condvar,
        /// Signalled when space frees up or all receivers drop.
        writable: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The message could not be sent: all receivers disconnected.
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`]: channel empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` messages; sends block
    /// when it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.writable.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.0.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Receives a message, blocking until one arrives or every
        /// sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.writable.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.readable.wait(inner).unwrap();
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.0.writable.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.writable.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .readable
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
                if res.timed_out() && inner.queue.is_empty() {
                    if inner.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.writable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_and_cross_thread() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = std::thread::spawn(move || {
                tx.send(7).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            h.join().unwrap();
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(9).is_err());
        }
    }
}
