//! Federation scaling: ingest throughput vs agent count, fan-out query
//! latency, and the kill/rejoin chaos smoke.
//!
//! ```text
//! cargo run --release -p oda-bench --bin federation_scaling            # full sweep + smoke
//! cargo run --release -p oda-bench --bin federation_scaling -- --quick # smaller sweep + smoke
//! cargo run --release -p oda-bench --bin federation_scaling -- --smoke # CI gate: smoke + quick sweep
//! ```
//!
//! `--smoke` exits nonzero unless the kill/rejoin cycle holds the
//! partial-result accounting identity, performs both shard-map
//! cutovers, and loses zero acked-durable readings.

use oda_bench::federation_scaling::{run, smoke, FederationScalingConfig, FederationScalingResult};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let smoke_only = std::env::args().any(|a| a == "--smoke");
    let config = if quick || smoke_only {
        FederationScalingConfig::quick()
    } else {
        FederationScalingConfig::paper()
    };

    println!(
        "federation scaling bench: agents {:?}, {} readings/node, {} queries, \
         {} us device latency, seed {:#x}\n",
        config.agent_counts,
        config.readings_per_node,
        config.queries,
        config.io_latency_us,
        config.seed
    );
    let mut dir = std::env::temp_dir();
    dir.push(format!("oda-bench-federation-{}", std::process::id()));

    let started = std::time::Instant::now();
    let mut result: FederationScalingResult = run(&config, &dir);
    let chaos = smoke(&config, &dir);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>8} {:>9} {:>9} {:>9}",
        "agents",
        "readings",
        "ingest_ms",
        "readings/s",
        "speedup",
        "q_p50_us",
        "q_p99_us",
        "complete"
    );
    for c in &result.cells {
        println!(
            "{:>6} {:>9} {:>10} {:>12.0} {:>7.2}x {:>9} {:>9} {:>9}",
            c.agents,
            c.readings,
            c.ingest_ms,
            c.ingest_throughput,
            c.speedup_vs_baseline,
            c.query_p50_us,
            c.query_p99_us,
            if c.queries_complete { "yes" } else { "NO" }
        );
    }
    println!(
        "\nscaling {} -> {} agents: {:.2}x",
        result.cells.first().map_or(0, |c| c.agents),
        result.cells.last().map_or(0, |c| c.agents),
        result.scaling_first_to_last
    );
    println!(
        "smoke: killed {} (epochs {:?}), published {}, returned {}, lost {}, dup {}, \
         accounted {}, outage visible {}, complete after rejoin {}, placement restored {} -> {}",
        chaos.killed,
        chaos.epochs,
        chaos.published,
        chaos.returned,
        chaos.lost_acked,
        chaos.duplicates,
        chaos.envelopes_accounted,
        chaos.outage_visible,
        chaos.complete_after_rejoin,
        chaos.placement_restored,
        if chaos.ok { "OK" } else { "FAILED" }
    );

    let smoke_ok = chaos.ok;
    result.smoke = Some(chaos);
    let meta = BenchMeta::new("federation_scaling", Some(config.seed), &config, started);
    match write_json_report(&meta, &result) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write results: {e}"),
    }

    if !smoke_ok {
        eprintln!("federation smoke FAILED");
        std::process::exit(1);
    }
    if !quick && !smoke_only && result.scaling_first_to_last < 2.5 {
        eprintln!(
            "ingest scaling {:.2}x below the 2.5x acceptance floor",
            result.scaling_first_to_last
        );
        std::process::exit(1);
    }
}
