//! The federated agent: N Collect Agents, each owning one shard of the
//! topic space.
//!
//! A [`FederatedAgent`] runs one broker + Collect Agent pair per shard
//! and implements [`MessageBus`], so Pushers publish *through the
//! federation*: each reading is routed to the shard owning its topic
//! (per the current [`ShardMap`]) exactly as a production DCDB fans
//! pushers out across Collect Agents. A refused publish (all shards
//! down) surfaces as an error, which the Pusher's supervised connection
//! answers with store-and-forward spooling — the PR-4 machinery applies
//! unchanged.
//!
//! Membership changes go through an **epoch-based cutover**: a
//! join/leave builds the next [`ShardMap`] (epoch + 1), swaps it in,
//! then bounded-waits for queries pinned to the old epoch to drain
//! before declaring the rebalance complete. Queries pin an epoch with
//! [`FederatedAgent::begin_query`] so a rebalance can never pull the
//! map out from under a scatter in flight.
//!
//! A **killed** shard keeps its broker, agent, and storage: kill only
//! marks it down and removes it from the ring, so readings that were
//! acknowledged durable before the kill are still on disk and become
//! queryable again the moment the shard rejoins — the zero-loss
//! guarantee the smoke test asserts.

use crate::ring::{ShardMap, DEFAULT_SHARD_KEY_DEPTH, DEFAULT_VNODES};
use bytes::Bytes;
use dcdb_bus::{
    Broker, BusHandle, BusStatsSnapshot, FilterSegment, MessageBus, SubscribeOptions, Subscription,
    TopicFilter,
};
use dcdb_collectagent::{CollectAgent, CollectAgentConfig, ShardAssignment};
use dcdb_common::error::{DcdbError, Result};
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_storage::{StorageBackend, StorageEngine};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wintermute::prelude::TickReport;

/// Federation sizing and behaviour.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of shards (Collect Agents) to run.
    pub agents: usize,
    /// Virtual nodes per agent on the hash ring.
    pub vnodes: usize,
    /// Leading topic segments forming the shard key.
    pub shard_key_depth: usize,
    /// Template for each shard's Collect Agent (`agent_id` is replaced
    /// with the shard's id).
    pub agent: CollectAgentConfig,
    /// How long a rebalance waits for queries pinned to the outgoing
    /// epoch before giving up on the drain (the cutover itself has
    /// already happened; a timeout only means an old-epoch reader was
    /// still running and is counted in the stats).
    pub drain_timeout_ms: u64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            agents: 4,
            vnodes: DEFAULT_VNODES,
            shard_key_depth: DEFAULT_SHARD_KEY_DEPTH,
            agent: CollectAgentConfig::default(),
            drain_timeout_ms: 1_000,
        }
    }
}

/// One shard: a broker + Collect Agent pair plus liveness state.
pub struct Shard {
    /// Stable shard id (`agent-00`, `agent-01`, …).
    pub id: String,
    /// Owns the shard's router thread lifecycle; queries and publishes
    /// go through handles.
    broker: Broker,
    agent: Arc<CollectAgent>,
    up: AtomicBool,
    /// Test hook: artificial per-query delay, nanoseconds. Lets tests
    /// and the chaos smoke drive a shard into scatter timeouts
    /// deterministically without touching the query path.
    query_delay_ns: AtomicU64,
}

impl Shard {
    /// The shard's Collect Agent.
    pub fn agent(&self) -> &Arc<CollectAgent> {
        &self.agent
    }

    /// A publish/subscribe handle onto the shard's own bus.
    pub fn bus(&self) -> BusHandle {
        self.broker.handle()
    }

    /// Liveness: false between kill and rejoin.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Sets the artificial query delay (test/chaos hook).
    pub fn set_query_delay_ms(&self, ms: u64) {
        self.query_delay_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Release);
    }

    /// The artificial query delay, if any.
    pub fn query_delay(&self) -> Option<std::time::Duration> {
        match self.query_delay_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(std::time::Duration::from_nanos(ns)),
        }
    }
}

/// One epoch of the shard map plus the number of queries pinned to it.
struct EpochState {
    map: Arc<ShardMap>,
    inflight: AtomicU64,
}

/// Pins the shard map of the epoch a query started under; the rebalance
/// drain waits for these to drop.
pub struct QueryGuard {
    epoch: Arc<EpochState>,
}

impl QueryGuard {
    /// The shard map this query runs against.
    pub fn map(&self) -> &Arc<ShardMap> {
        &self.epoch.map
    }
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        self.epoch.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Federation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Current shard-map epoch.
    pub epoch: u64,
    /// Shards configured.
    pub shards_total: usize,
    /// Shards currently up.
    pub shards_up: usize,
    /// Rebalances performed (kills + rejoins).
    pub rebalances: u64,
    /// Rebalances whose old-epoch drain hit the timeout with queries
    /// still pinned.
    pub drains_timed_out: u64,
    /// Readings routed to a shard via [`MessageBus::publish`].
    pub publishes: u64,
    /// Publishes refused (no live shard for the topic) — the caller's
    /// spool takes over.
    pub publishes_refused: u64,
}

/// N Collect Agents behind one [`MessageBus`], sharded by topic.
pub struct FederatedAgent {
    shards: Vec<Arc<Shard>>,
    current: RwLock<Arc<EpochState>>,
    drain_timeout_ms: u64,
    rebalances: AtomicU64,
    drains_timed_out: AtomicU64,
    publishes: AtomicU64,
    publishes_refused: AtomicU64,
}

impl FederatedAgent {
    /// Builds a federation of `config.agents` shards over in-memory
    /// storage.
    pub fn new(config: FederationConfig) -> Result<FederatedAgent> {
        FederatedAgent::new_with(config, |_, _| {
            Ok(Arc::new(StorageBackend::new()) as Arc<dyn StorageEngine>)
        })
    }

    /// Builds a federation with one storage engine per shard from
    /// `storage` — `(shard index, shard id)` in, engine out. This is how
    /// the bench and the durable sim give each shard its own journal
    /// directory (and, for chaos runs, its own fault-injecting device).
    pub fn new_with(
        config: FederationConfig,
        storage: impl Fn(usize, &str) -> Result<Arc<dyn StorageEngine>>,
    ) -> Result<FederatedAgent> {
        let n = config.agents.max(1);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let id = format!("agent-{i:02}");
            // Synchronous brokers keep per-shard ingest deterministic;
            // concurrency lives at the federation tier (scatter threads
            // and per-shard I/O), not inside each shard's bus.
            let broker = Broker::new_sync();
            let engine = storage(i, &id)?;
            let agent = Arc::new(CollectAgent::new(
                CollectAgentConfig {
                    agent_id: id.clone(),
                    ..config.agent.clone()
                },
                &broker.handle(),
                engine,
            )?);
            shards.push(Arc::new(Shard {
                id,
                broker,
                agent,
                up: AtomicBool::new(true),
                query_delay_ns: AtomicU64::new(0),
            }));
        }
        let ids: Vec<String> = shards.iter().map(|s| s.id.clone()).collect();
        let map = Arc::new(ShardMap::build(&ids, config.vnodes, config.shard_key_depth));
        let fed = FederatedAgent {
            shards,
            current: RwLock::new(Arc::new(EpochState {
                map: Arc::clone(&map),
                inflight: AtomicU64::new(0),
            })),
            drain_timeout_ms: config.drain_timeout_ms,
            rebalances: AtomicU64::new(0),
            drains_timed_out: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            publishes_refused: AtomicU64::new(0),
        };
        fed.apply_assignments(&map);
        Ok(fed)
    }

    /// All shards, up or down, in creation order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard with `id`, if configured.
    pub fn shard(&self, id: &str) -> Option<&Arc<Shard>> {
        self.shards.iter().find(|s| s.id == id)
    }

    /// The current shard map.
    pub fn shard_map(&self) -> Arc<ShardMap> {
        Arc::clone(&self.current.read().map)
    }

    /// Pins the current epoch for the duration of one query. The
    /// returned guard carries the map the query must use; a rebalance
    /// started after this call waits (bounded) for the guard to drop.
    pub fn begin_query(&self) -> QueryGuard {
        // Increment under the read lock: a rebalance swaps the epoch
        // under the write lock, so the drain can never miss a query
        // that pinned the old epoch.
        let current = self.current.read();
        current.inflight.fetch_add(1, Ordering::AcqRel);
        let epoch = Arc::clone(&current);
        drop(current);
        QueryGuard { epoch }
    }

    /// Marks `id` down and rebalances the ring without it. The shard's
    /// broker, agent, and storage are retained — rejoining restores
    /// every reading that was acknowledged before the kill. Returns
    /// false if the shard is unknown or already down.
    pub fn kill(&self, id: &str) -> bool {
        let Some(shard) = self.shard(id) else {
            return false;
        };
        if !shard.up.swap(false, Ordering::AcqRel) {
            return false;
        }
        self.rebalance();
        true
    }

    /// Marks `id` up again and rebalances the ring to include it.
    /// Returns false if the shard is unknown or already up.
    pub fn rejoin(&self, id: &str) -> bool {
        let Some(shard) = self.shard(id) else {
            return false;
        };
        if shard.up.swap(true, Ordering::AcqRel) {
            return false;
        }
        self.rebalance();
        true
    }

    /// Ids of the shards currently up.
    pub fn up_ids(&self) -> Vec<String> {
        self.shards
            .iter()
            .filter(|s| s.is_up())
            .map(|s| s.id.clone())
            .collect()
    }

    /// Rebuilds the map over the live shard set, swaps it in, and
    /// drains the outgoing epoch: new queries immediately see the new
    /// map; queries pinned to the old one get up to `drain_timeout_ms`
    /// to finish. Returns the new epoch.
    fn rebalance(&self) -> u64 {
        let live = self.up_ids();
        let old = {
            let mut current = self.current.write();
            let next = Arc::new(EpochState {
                map: Arc::new(current.map.rebalanced(&live)),
                inflight: AtomicU64::new(0),
            });
            let old = Arc::clone(&current);
            *current = next;
            old
        };
        let map = self.shard_map();
        self.apply_assignments(&map);
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        // Bounded drain: wait for old-epoch queries to finish so callers
        // can treat "rebalance returned" as "no query still reads the
        // retired map" (barring the counted timeout case).
        let deadline =
            std::time::Instant::now() + std::time::Duration::from_millis(self.drain_timeout_ms);
        while old.inflight.load(Ordering::Acquire) > 0 {
            if std::time::Instant::now() >= deadline {
                self.drains_timed_out.fetch_add(1, Ordering::Relaxed);
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        map.epoch
    }

    /// Pushes each shard's position in `map` down into its agent so
    /// `/health` and `/metrics` report the assignment.
    fn apply_assignments(&self, map: &ShardMap) {
        for shard in &self.shards {
            let assignment =
                map.agents
                    .iter()
                    .position(|a| *a == shard.id)
                    .map(|index| ShardAssignment {
                        index,
                        total: map.len(),
                        epoch: map.epoch,
                        vnodes: map.vnodes,
                    });
            shard.agent.set_shard_assignment(assignment);
        }
    }

    /// Drains pending bus messages on every live shard. Returns total
    /// readings ingested.
    pub fn process_pending(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.is_up())
            .map(|s| s.agent.process_pending())
            .sum()
    }

    /// Ticks every live shard (ingest + operators + storage
    /// maintenance). Returns `(shard index, report)` per live shard.
    pub fn tick(&self, now: Timestamp) -> Vec<(usize, TickReport)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_up())
            .map(|(i, s)| (i, s.agent.tick(now)))
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FederationStats {
        let map = self.shard_map();
        FederationStats {
            epoch: map.epoch,
            shards_total: self.shards.len(),
            shards_up: self.shards.iter().filter(|s| s.is_up()).count(),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            drains_timed_out: self.drains_timed_out.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            publishes_refused: self.publishes_refused.load(Ordering::Relaxed),
        }
    }

    /// Federation status as JSON: the shard map, per-shard liveness and
    /// ingest counters, and the rebalance/drain counters. Served by the
    /// router's `GET /federation` and the sim's status line.
    pub fn status_json(&self) -> serde_json::Value {
        let map = self.shard_map();
        let stats = self.stats();
        let shards: Vec<serde_json::Value> = self
            .shards
            .iter()
            .map(|s| {
                let a = s.agent.stats();
                serde_json::json!({
                    "id": s.id,
                    "up": s.is_up(),
                    "in_ring": map.agents.iter().any(|m| *m == s.id),
                    "readings": a.readings,
                    "messages": a.messages,
                    "ingest_backlog": s.agent.ingest_backlog(),
                    "sensors": s.agent.query_engine().sensor_count(),
                })
            })
            .collect();
        serde_json::json!({
            "epoch": map.epoch,
            "vnodes": map.vnodes,
            "shard_key_depth": map.shard_key_depth,
            "ring": map.agents,
            "shards_total": stats.shards_total,
            "shards_up": stats.shards_up,
            "rebalances": stats.rebalances,
            "drains_timed_out": stats.drains_timed_out,
            "publishes": stats.publishes,
            "publishes_refused": stats.publishes_refused,
            "shards": shards,
        })
    }

    /// The live shard owning `topic` under the current map.
    fn owner(&self, topic: &Topic) -> Option<Arc<Shard>> {
        let map = self.shard_map();
        let id = map.assign_id(topic)?;
        let shard = self.shard(id)?;
        if shard.is_up() {
            Some(Arc::clone(shard))
        } else {
            // Raced a kill between map swap and lookup; the caller
            // spools and retries against the rebalanced map.
            None
        }
    }
}

impl MessageBus for FederatedAgent {
    fn publish(&self, topic: Topic, payload: Bytes) -> std::result::Result<(), DcdbError> {
        match self.owner(&topic) {
            Some(shard) => {
                self.publishes.fetch_add(1, Ordering::Relaxed);
                shard.bus().publish(topic, payload)
            }
            None => {
                self.publishes_refused.fetch_add(1, Ordering::Relaxed);
                Err(DcdbError::Disconnected(format!(
                    "no live shard owns {topic}"
                )))
            }
        }
    }

    /// Attaches the subscription to the shard owning the filter's
    /// literal prefix (so `/rack00/node03/#` lands where that node's
    /// data is ingested), falling back to the first live shard for
    /// filters with no literal prefix. Limitation: a cross-shard filter
    /// (`/#` on a multi-agent federation) only sees its home shard's
    /// traffic — fan-in subscribers should query through the router
    /// instead.
    fn subscribe_with(&self, filter: TopicFilter, opts: SubscribeOptions) -> Subscription {
        let prefix: String = filter
            .segments()
            .iter()
            .map_while(|s| match s {
                FilterSegment::Literal(l) => Some(format!("/{l}")),
                _ => None,
            })
            .collect();
        let shard = Topic::parse(&prefix)
            .ok()
            .and_then(|t| self.owner(&t))
            .or_else(|| self.shards.iter().find(|s| s.is_up()).map(Arc::clone))
            .unwrap_or_else(|| Arc::clone(&self.shards[0]));
        shard.bus().subscribe_with(filter, opts)
    }

    fn stats(&self) -> BusStatsSnapshot {
        let mut total = BusStatsSnapshot {
            published: 0,
            delivered: 0,
            dropped: 0,
            router_dropped: 0,
        };
        for shard in &self.shards {
            let s = shard.bus().stats();
            total.published += s.published;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.router_dropped += s.router_dropped;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::reading::SensorReading;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn publish_node(fed: &FederatedAgent, node: usize, secs: std::ops::RangeInclusive<u64>) {
        for i in secs {
            fed.publish_readings(
                t(&format!("/rack00/node{node:02}/power")),
                &[SensorReading::new(
                    (node * 1000) as i64 + i as i64,
                    Timestamp::from_secs(i),
                )],
            )
            .unwrap();
        }
    }

    #[test]
    fn readings_route_to_the_owning_shard() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 4,
            ..FederationConfig::default()
        })
        .unwrap();
        for node in 0..8 {
            publish_node(&fed, node, 1..=10);
        }
        assert_eq!(fed.process_pending(), 80);
        let map = fed.shard_map();
        // Every shard's sensors are exactly the topics the ring assigns
        // to it.
        for shard in fed.shards() {
            for node in 0..8 {
                let topic = t(&format!("/rack00/node{node:02}/power"));
                let here = shard.agent().query_engine().knows(&topic);
                let owns = map.assign_id(&topic) == Some(shard.id.as_str());
                assert_eq!(here, owns, "{topic} on {}", shard.id);
            }
        }
        assert_eq!(fed.stats().publishes, 80);
    }

    #[test]
    fn kill_reroutes_and_rejoin_restores_history() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 3,
            ..FederationConfig::default()
        })
        .unwrap();
        let topic = t("/rack00/node00/power");
        let owner = fed.shard_map().assign_id(&topic).unwrap().to_string();

        publish_node(&fed, 0, 1..=5);
        fed.process_pending();

        assert!(fed.kill(&owner));
        assert!(!fed.kill(&owner), "double kill is a no-op");
        let map = fed.shard_map();
        assert_eq!(map.epoch, 1);
        assert_ne!(map.assign_id(&topic), Some(owner.as_str()));
        assert_eq!(fed.stats().shards_up, 2);

        // Interim publishes land on the new owner.
        publish_node(&fed, 0, 6..=8);
        fed.process_pending();
        let interim = map.assign_id(&topic).unwrap();
        assert!(fed
            .shard(interim)
            .unwrap()
            .agent()
            .query_engine()
            .knows(&topic));

        // Rejoin: placement returns to the original owner, whose
        // pre-kill history is intact.
        assert!(fed.rejoin(&owner));
        let map = fed.shard_map();
        assert_eq!(map.epoch, 2);
        assert_eq!(map.assign_id(&topic), Some(owner.as_str()));
        let back = fed.shard(&owner).unwrap().agent().query_engine().query(
            &topic,
            wintermute::prelude::QueryMode::Absolute {
                t0: Timestamp::from_secs(1),
                t1: Timestamp::from_secs(5),
            },
        );
        assert_eq!(back.len(), 5, "pre-kill readings survive on the shard");
    }

    #[test]
    fn publish_with_all_shards_down_is_refused_not_lost_silently() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 2,
            ..FederationConfig::default()
        })
        .unwrap();
        fed.kill("agent-00");
        fed.kill("agent-01");
        let err = fed.publish(t("/rack00/node00/power"), Bytes::new());
        assert!(err.is_err());
        assert_eq!(fed.stats().publishes_refused, 1);
        // Rejoin: publishes flow again.
        fed.rejoin("agent-00");
        assert!(fed.publish(t("/rack00/node00/power"), Bytes::new()).is_ok());
    }

    #[test]
    fn rebalance_waits_for_pinned_queries_then_counts_timeouts() {
        let fed = Arc::new(
            FederatedAgent::new(FederationConfig {
                agents: 2,
                drain_timeout_ms: 50,
                ..FederationConfig::default()
            })
            .unwrap(),
        );
        // A query pinned to epoch 0 that outlives the drain budget: the
        // cutover still happens, and the timeout is counted.
        let guard = fed.begin_query();
        assert_eq!(guard.map().epoch, 0);
        fed.kill("agent-01");
        assert_eq!(fed.shard_map().epoch, 1);
        assert_eq!(fed.stats().drains_timed_out, 1);
        drop(guard);

        // A query that finishes promptly lets the drain complete
        // without a timeout.
        let fed2 = Arc::clone(&fed);
        let guard = fed.begin_query();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            drop(guard);
        });
        fed2.rejoin("agent-01");
        h.join().unwrap();
        assert_eq!(fed.stats().drains_timed_out, 1, "no new drain timeout");
        assert_eq!(fed.shard_map().epoch, 2);
    }

    #[test]
    fn assignments_are_visible_in_shard_health() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 2,
            ..FederationConfig::default()
        })
        .unwrap();
        let a = fed.shard("agent-00").unwrap().agent();
        let assignment = a.shard_assignment().expect("assigned at construction");
        assert_eq!(assignment.total, 2);
        assert_eq!(assignment.epoch, 0);
        fed.kill("agent-00");
        assert!(fed
            .shard("agent-00")
            .unwrap()
            .agent()
            .shard_assignment()
            .is_none());
        let b = fed.shard("agent-01").unwrap().agent();
        let assignment = b.shard_assignment().unwrap();
        assert_eq!(assignment.total, 1);
        assert_eq!(assignment.epoch, 1);
    }

    #[test]
    fn subscriptions_attach_to_the_owning_shard() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 4,
            ..FederationConfig::default()
        })
        .unwrap();
        let topic = t("/rack00/node05/power");
        let sub = fed.subscribe_with(
            TopicFilter::parse("/rack00/node05/#").unwrap(),
            SubscribeOptions::default(),
        );
        fed.publish_readings(topic, &[SensorReading::new(7, Timestamp::from_secs(1))])
            .unwrap();
        let msg = sub.try_recv().unwrap().expect("delivered on home shard");
        assert_eq!(msg.topic.as_str(), "/rack00/node05/power");
    }
}
