//! Unit System at production scale: the paper's core scalability claim
//! is that pattern units let operators instantiate "thousands of
//! independent ODA models, each with their own set of sensors, by using
//! only a small configuration block" (§III-C). These tests bind
//! templates against a full CooLMUC-3-sized sensor tree and check both
//! correctness and that resolution stays fast enough for reloads.

use dcdb_wintermute::sim_cluster::Topology;
use dcdb_wintermute::wintermute::prelude::*;

/// All sensor topics of the full 148-node, 64-core system.
fn coolmuc3_topics() -> Vec<dcdb_wintermute::dcdb_common::Topic> {
    let topology = Topology::coolmuc3();
    topology
        .nodes()
        .flat_map(|n| topology.node_sensor_topics(n))
        .collect()
}

#[test]
fn full_system_tree_statistics() {
    let topics = coolmuc3_topics();
    // 148 × (4 node-level + 2 OPA + 64×4) sensors.
    assert_eq!(topics.len(), 148 * (6 + 256));
    let nav = SensorNavigator::build(topics.iter());
    assert_eq!(nav.sensor_count(), topics.len());
    assert_eq!(nav.depth(), 3); // rack / node / cpu
    assert_eq!(nav.nodes_at_level(0).len(), 4); // racks
    assert_eq!(nav.nodes_at_level(1).len(), 148); // nodes
    assert_eq!(nav.nodes_at_level(2).len(), 148 * 64); // cpus
}

#[test]
fn per_node_health_template_instantiates_148_units() {
    let nav = SensorNavigator::build(coolmuc3_topics().iter());
    let template = UnitTemplate::parse(
        &[
            "<bottomup-1>power",
            "<bottomup, filter cpu>cycles",
            "<bottomup, filter cpu>instructions",
        ],
        &["<bottomup-1>healthy"],
    )
    .unwrap();
    let resolution = resolve_units(&template, &nav).unwrap();
    assert_eq!(resolution.units.len(), 148);
    assert!(resolution.skipped.is_empty());
    for unit in &resolution.units {
        // 1 power + 64 cycles + 64 instructions.
        assert_eq!(unit.inputs.len(), 129, "{}", unit.name);
        assert_eq!(unit.outputs.len(), 1);
    }
}

#[test]
fn per_core_template_instantiates_9472_units() {
    let nav = SensorNavigator::build(coolmuc3_topics().iter());
    let template = UnitTemplate::parse(
        &[
            "<bottomup, filter cpu>cycles",
            "<bottomup, filter cpu>instructions",
        ],
        &["<bottomup, filter cpu>cpi"],
    )
    .unwrap();
    let start = std::time::Instant::now();
    let resolution = resolve_units(&template, &nav).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(resolution.units.len(), 148 * 64);
    // Each per-core unit binds exactly its own two counters.
    for unit in resolution.units.iter().step_by(997) {
        assert_eq!(unit.inputs.len(), 2, "{}", unit.name);
        assert!(unit.inputs.iter().all(|i| unit.name.is_ancestor_of(i)));
    }
    // Resolution must be cheap enough for runtime reloads: the paper
    // reconfigures plugins dynamically via REST. Generous bound (debug
    // builds on one core are slow).
    assert!(elapsed.as_secs_f64() < 30.0, "resolution took {elapsed:?}");
}

#[test]
fn rack_level_aggregation_binds_the_whole_subtree() {
    let nav = SensorNavigator::build(coolmuc3_topics().iter());
    let template = UnitTemplate::parse(&["<bottomup-1>power"], &["<topdown>rack-power"]).unwrap();
    let resolution = resolve_units(&template, &nav).unwrap();
    assert_eq!(resolution.units.len(), 4);
    // Each rack unit aggregates its 37 node power sensors.
    for unit in &resolution.units {
        assert_eq!(unit.inputs.len(), 37, "{}", unit.name);
    }
}

#[test]
fn filters_partition_without_overlap_or_loss() {
    // Horizontal navigation: two disjoint filters over racks must
    // partition the node set exactly.
    let nav = SensorNavigator::build(coolmuc3_topics().iter());
    let low = UnitTemplate::parse(
        &["<bottomup-1, filter ^rack0[01]$>power"],
        &["<bottomup-1>x"],
    )
    .unwrap();
    // Note: the filter applies to the level of the *pattern*, here the
    // node level; filter racks through the unit domain instead.
    let all = UnitTemplate::parse(&["<bottomup-1>power"], &["<bottomup-1>x"]).unwrap();
    let r_all = resolve_units(&all, &nav).unwrap();
    assert_eq!(r_all.units.len(), 148);
    let _ = low;

    let first_two_racks = UnitTemplate::parse(
        &["<bottomup-1>power"],
        &["<bottomup-1, filter ^node0[0-9]$>x"],
    )
    .unwrap();
    let r_sub = resolve_units(&first_two_racks, &nav).unwrap();
    // node00..node09 in each of 4 racks.
    assert_eq!(r_sub.units.len(), 40);
}

#[test]
fn manager_loads_a_parallel_plugin_at_scale() {
    use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp};
    use std::sync::Arc;
    // 148-node engine with power data; parallel aggregator = 148
    // operators.
    let topology = Topology::coolmuc3();
    let qe = Arc::new(QueryEngine::new(16));
    for n in topology.nodes() {
        let topic = topology.node_topic(n).child("power").unwrap();
        for s in 1..=5u64 {
            qe.insert(&topic, SensorReading::new(100, Timestamp::from_secs(s)));
        }
    }
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    mgr.register_plugin(Box::new(
        dcdb_wintermute::wintermute_plugins::AggregatorPlugin,
    ));
    mgr.load(
        PluginConfig::online("agg", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
            .with_unit_mode(UnitMode::Parallel)
            .with_option("window_ms", 10_000u64),
    )
    .unwrap();
    let list = mgr.list();
    assert_eq!(list[0].3, 148, "operator count");
    let report = mgr.tick(Timestamp::from_secs(6));
    assert_eq!(report.operators_run, 148);
    assert_eq!(report.outputs_published, 148);
    assert!(report.errors.is_empty());
}
