//! # dcdb-pusher — the DCDB sampling daemon with embedded Wintermute
//!
//! Pushers run on every monitored component, sampling sensors through
//! monitoring plugins and publishing readings over MQTT (paper §IV-A).
//! With Wintermute integrated, they also host operators working on the
//! local sensor caches — the in-band, low-latency deployment location
//! (paper §IV-B a).
//!
//! * [`plugins`] — the monitoring-plugin interface plus the
//!   simulator-backed and tester plugins;
//! * [`delivery`] — the supervised bus connection (reconnect backoff,
//!   connection-state machine) and the bounded store-and-forward spool
//!   that rides out broker outages;
//! * [`pusher`] — the tick-driven Pusher itself.

#![warn(missing_docs)]

pub mod delivery;
pub mod plugins;
pub mod pusher;

pub use delivery::{
    BusConnection, ConnectionState, DeliveryConfig, DeliveryMetricsSnapshot, DeliveryOutcome,
    ReconnectConfig, SpoolConfig, SpoolMetricsSnapshot,
};
pub use plugins::{
    standard_plugin_set, ClassMonitoringPlugin, FlakyMonitoringPlugin, MonitoringPlugin,
    SensorClass, SharedNodeSampler, SimMonitoringPlugin, TesterMonitoringPlugin,
};
pub use pusher::{PluginMetricsSnapshot, Pusher, PusherConfig, PusherStats};
