//! The shared error type for DCDB components.

use std::fmt;

/// Errors produced anywhere in the DCDB / Wintermute stack.
#[derive(Debug)]
pub enum DcdbError {
    /// Malformed sensor topic.
    Topic(String),
    /// Malformed configuration (missing key, wrong type, bad value).
    Config(String),
    /// Parse failure (pattern expressions, regexes, protocol frames).
    Parse(String),
    /// A named entity (sensor, unit, operator, plugin) does not exist.
    NotFound(String),
    /// An operation was attempted in an invalid state (e.g. starting an
    /// already-running operator).
    InvalidState(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A bus or channel endpoint disconnected.
    Disconnected(String),
}

impl fmt::Display for DcdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcdbError::Topic(m) => write!(f, "topic error: {m}"),
            DcdbError::Config(m) => write!(f, "config error: {m}"),
            DcdbError::Parse(m) => write!(f, "parse error: {m}"),
            DcdbError::NotFound(m) => write!(f, "not found: {m}"),
            DcdbError::InvalidState(m) => write!(f, "invalid state: {m}"),
            DcdbError::Io(e) => write!(f, "io error: {e}"),
            DcdbError::Disconnected(m) => write!(f, "disconnected: {m}"),
        }
    }
}

impl std::error::Error for DcdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcdbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DcdbError {
    fn from(e: std::io::Error) -> Self {
        DcdbError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DcdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = DcdbError::Config("missing interval".into());
        assert!(e.to_string().contains("config error"));
        assert!(e.to_string().contains("missing interval"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: DcdbError = io.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("pipe"));
    }
}
