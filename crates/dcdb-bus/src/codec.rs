//! Wire format for sensor-data messages.
//!
//! Although the bus is in-process, Pushers marshal readings into the
//! same compact binary frames a networked MQTT deployment would use, so
//! the serialization cost the paper's overhead numbers include is paid
//! here too.
//!
//! Two frame layouts share the version byte (little-endian):
//!
//! ```text
//! v1 (row-major):  [u8 1] [u32 n] n × { [i64 value] [u64 timestamp_ns] }
//! v2 (columnar):   [u8 2] [u32 n] [n × u64 timestamp_ns] [n × i64 value]
//! ```
//!
//! v2 carries a [`ReadingBatch`]'s packed columns verbatim, so encoding
//! on the Pusher side and decoding on the Collect Agent side are two
//! memcpys instead of per-reading loops. Decoders accept both versions;
//! v1 remains for single-reading publishes and older producers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcdb_common::batch::ReadingBatch;
use dcdb_common::batch::{extend_le_i64s, extend_le_u64s, read_le_i64s, read_le_u64s};
use dcdb_common::error::DcdbError;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;

/// Row-major frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Columnar frame format version.
pub const FRAME_VERSION_COLUMNAR: u8 = 2;

/// Bytes occupied by one encoded reading.
pub const READING_WIRE_SIZE: usize = 16;

/// Encodes a batch of readings into a frame.
pub fn encode_readings(readings: &[SensorReading]) -> Bytes {
    let mut buf = BytesMut::with_capacity(5 + readings.len() * READING_WIRE_SIZE);
    buf.put_u8(FRAME_VERSION);
    buf.put_u32_le(readings.len() as u32);
    for r in readings {
        buf.put_i64_le(r.value);
        buf.put_u64_le(r.ts.as_nanos());
    }
    buf.freeze()
}

/// Encodes a columnar batch into a v2 frame: both columns land in the
/// payload as single bulk copies.
pub fn encode_batch(batch: &ReadingBatch) -> Bytes {
    let mut buf = Vec::with_capacity(5 + batch.len() * READING_WIRE_SIZE);
    buf.push(FRAME_VERSION_COLUMNAR);
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    extend_le_u64s(&mut buf, &batch.ts);
    extend_le_i64s(&mut buf, &batch.values);
    Bytes::from(buf)
}

/// Decodes either frame version into a columnar batch (v1 frames are
/// transposed).
pub fn decode_batch(frame: Bytes) -> Result<ReadingBatch, DcdbError> {
    if frame.len() < 5 {
        return Err(DcdbError::Parse(format!(
            "sensor frame too short: {} bytes",
            frame.len()
        )));
    }
    match frame[0] {
        FRAME_VERSION => Ok(ReadingBatch::from_readings(&decode_readings(frame)?)),
        FRAME_VERSION_COLUMNAR => {
            let n = u32::from_le_bytes(frame[1..5].try_into().unwrap()) as usize;
            let body = &frame[5..];
            if body.len() != n * READING_WIRE_SIZE {
                return Err(DcdbError::Parse(format!(
                    "columnar frame length mismatch: {} readings declared, {} bytes remain",
                    n,
                    body.len()
                )));
            }
            Ok(ReadingBatch::from_columns(
                read_le_u64s(body, n),
                read_le_i64s(&body[n * 8..], n),
            ))
        }
        version => Err(DcdbError::Parse(format!(
            "unsupported frame version {version}"
        ))),
    }
}

/// Decodes a frame (either version) back into row-major readings.
pub fn decode_readings(mut frame: Bytes) -> Result<Vec<SensorReading>, DcdbError> {
    if frame.len() < 5 {
        return Err(DcdbError::Parse(format!(
            "sensor frame too short: {} bytes",
            frame.len()
        )));
    }
    if frame[0] == FRAME_VERSION_COLUMNAR {
        return Ok(decode_batch(frame)?.to_readings());
    }
    let version = frame.get_u8();
    if version != FRAME_VERSION {
        return Err(DcdbError::Parse(format!(
            "unsupported frame version {version}"
        )));
    }
    let n = frame.get_u32_le() as usize;
    if frame.remaining() != n * READING_WIRE_SIZE {
        return Err(DcdbError::Parse(format!(
            "frame length mismatch: {} readings declared, {} bytes remain",
            n,
            frame.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let value = frame.get_i64_le();
        let ts = Timestamp(frame.get_u64_le());
        out.push(SensorReading::new(value, ts));
    }
    Ok(out)
}

/// Encodes a single reading (the common per-sample publish).
pub fn encode_reading(r: SensorReading) -> Bytes {
    encode_readings(std::slice::from_ref(&r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64, ns: u64) -> SensorReading {
        SensorReading::new(v, Timestamp(ns))
    }

    #[test]
    fn round_trip_empty() {
        let frame = encode_readings(&[]);
        assert_eq!(decode_readings(frame).unwrap(), vec![]);
    }

    #[test]
    fn round_trip_batch() {
        let batch = vec![r(-5, 0), r(i64::MAX, u64::MAX), r(0, 42)];
        let frame = encode_readings(&batch);
        assert_eq!(frame.len(), 5 + 3 * READING_WIRE_SIZE);
        assert_eq!(decode_readings(frame).unwrap(), batch);
    }

    #[test]
    fn round_trip_single() {
        let frame = encode_reading(r(7, 9));
        assert_eq!(decode_readings(frame).unwrap(), vec![r(7, 9)]);
    }

    #[test]
    fn columnar_frame_round_trips() {
        let rows = vec![r(-5, 0), r(i64::MAX, u64::MAX), r(0, 42)];
        let batch = ReadingBatch::from_readings(&rows);
        let frame = encode_batch(&batch);
        assert_eq!(frame[0], FRAME_VERSION_COLUMNAR);
        assert_eq!(frame.len(), 5 + 3 * READING_WIRE_SIZE);
        assert_eq!(decode_batch(frame.clone()).unwrap(), batch);
        // Row-major decoders accept columnar frames transparently.
        assert_eq!(decode_readings(frame).unwrap(), rows);
        // And batch decoders accept row-major frames.
        assert_eq!(decode_batch(encode_readings(&rows)).unwrap(), batch);
        assert!(decode_batch(encode_batch(&ReadingBatch::new()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn columnar_frame_rejects_truncation_and_garbage() {
        let batch = ReadingBatch::from_columns(vec![1, 2], vec![10, 20]);
        let frame = encode_batch(&batch);
        assert!(decode_batch(frame.slice(0..frame.len() - 1)).is_err());
        let mut raw = frame.to_vec();
        raw.push(0);
        assert!(decode_batch(Bytes::from(raw)).is_err());
        let mut bad = frame.to_vec();
        bad[0] = 9;
        assert!(decode_batch(Bytes::from(bad)).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let frame = encode_readings(&[r(1, 1), r(2, 2)]);
        let cut = frame.slice(0..frame.len() - 3);
        assert!(decode_readings(cut).is_err());
        assert!(decode_readings(Bytes::from_static(&[1])).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = encode_readings(&[r(1, 1)]).to_vec();
        raw[0] = 9;
        assert!(decode_readings(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = encode_readings(&[r(1, 1)]).to_vec();
        raw.push(0);
        assert!(decode_readings(Bytes::from(raw)).is_err());
    }
}
