//! Wire format for sensor-data messages.
//!
//! Although the bus is in-process, Pushers marshal readings into the
//! same compact binary frames a networked MQTT deployment would use, so
//! the serialization cost the paper's overhead numbers include is paid
//! here too.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [u8  version = 1]
//! [u32 reading count = n]
//! n × { [i64 value] [u64 timestamp_ns] }
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcdb_common::error::DcdbError;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Bytes occupied by one encoded reading.
pub const READING_WIRE_SIZE: usize = 16;

/// Encodes a batch of readings into a frame.
pub fn encode_readings(readings: &[SensorReading]) -> Bytes {
    let mut buf = BytesMut::with_capacity(5 + readings.len() * READING_WIRE_SIZE);
    buf.put_u8(FRAME_VERSION);
    buf.put_u32_le(readings.len() as u32);
    for r in readings {
        buf.put_i64_le(r.value);
        buf.put_u64_le(r.ts.as_nanos());
    }
    buf.freeze()
}

/// Decodes a frame back into readings.
pub fn decode_readings(mut frame: Bytes) -> Result<Vec<SensorReading>, DcdbError> {
    if frame.len() < 5 {
        return Err(DcdbError::Parse(format!(
            "sensor frame too short: {} bytes",
            frame.len()
        )));
    }
    let version = frame.get_u8();
    if version != FRAME_VERSION {
        return Err(DcdbError::Parse(format!(
            "unsupported frame version {version}"
        )));
    }
    let n = frame.get_u32_le() as usize;
    if frame.remaining() != n * READING_WIRE_SIZE {
        return Err(DcdbError::Parse(format!(
            "frame length mismatch: {} readings declared, {} bytes remain",
            n,
            frame.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let value = frame.get_i64_le();
        let ts = Timestamp(frame.get_u64_le());
        out.push(SensorReading::new(value, ts));
    }
    Ok(out)
}

/// Encodes a single reading (the common per-sample publish).
pub fn encode_reading(r: SensorReading) -> Bytes {
    encode_readings(std::slice::from_ref(&r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64, ns: u64) -> SensorReading {
        SensorReading::new(v, Timestamp(ns))
    }

    #[test]
    fn round_trip_empty() {
        let frame = encode_readings(&[]);
        assert_eq!(decode_readings(frame).unwrap(), vec![]);
    }

    #[test]
    fn round_trip_batch() {
        let batch = vec![r(-5, 0), r(i64::MAX, u64::MAX), r(0, 42)];
        let frame = encode_readings(&batch);
        assert_eq!(frame.len(), 5 + 3 * READING_WIRE_SIZE);
        assert_eq!(decode_readings(frame).unwrap(), batch);
    }

    #[test]
    fn round_trip_single() {
        let frame = encode_reading(r(7, 9));
        assert_eq!(decode_readings(frame).unwrap(), vec![r(7, 9)]);
    }

    #[test]
    fn rejects_truncation() {
        let frame = encode_readings(&[r(1, 1), r(2, 2)]);
        let cut = frame.slice(0..frame.len() - 3);
        assert!(decode_readings(cut).is_err());
        assert!(decode_readings(Bytes::from_static(&[1])).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = encode_readings(&[r(1, 1)]).to_vec();
        raw[0] = 9;
        assert!(decode_readings(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = encode_readings(&[r(1, 1)]).to_vec();
        raw.push(0);
        assert!(decode_readings(Bytes::from(raw)).is_err());
    }
}
