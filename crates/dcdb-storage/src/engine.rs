//! The durable engine: WAL + memtable + sealed segments + compaction.
//!
//! [`DurableBackend`] is the log-structured persistence tier standing in
//! for the durability DCDB gets from Cassandra (paper §IV-A). It wraps
//! the existing in-memory [`StorageBackend`] as its *memtable* and adds:
//!
//! * a write-ahead log ([`crate::wal`]): every insert batch is journaled
//!   before it is acknowledged, under a configurable fsync policy;
//! * *sealing*: when the memtable exceeds a size threshold (or on
//!   explicit flush) its contents are written as an immutable compressed
//!   segment ([`crate::segment`]) and the WAL generation is retired;
//! * *recovery*: on open, sealed segments are indexed and the WAL tail
//!   is replayed into a fresh memtable — every acknowledged insert
//!   survives a process kill, tolerating a torn final record;
//! * *merged reads*: range queries stitch segment blocks and memtable
//!   partitions, deduplicating by timestamp with newest-generation-wins
//!   semantics (identical to overwrite behaviour of the memtable);
//! * *compaction* and *retention*: background maintenance merges small
//!   segments and drops whole segments past the retention horizon,
//!   honoring the same `evict_before` semantics as the memtable.
//!
//! Directory layout: `wal-<seq>.log` journal generations and
//! `seg-<seq>.seg` sealed segments, sharing one monotonic sequence
//! counter; `*.tmp` files are crash leftovers and deleted on open.

use crate::backend::{StorageBackend, StorageStats};
use crate::segment::{write_segment, SegmentReader};
use crate::wal::{replay, FsyncPolicy, WalReplay, WalWriter};
use crate::StorageEngine;
use dcdb_common::error::Result;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs for the durable engine.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// WAL fsync policy (durability vs ingest throughput).
    pub fsync: FsyncPolicy,
    /// Seal the memtable into a segment once it holds this many readings.
    pub memtable_max_readings: usize,
    /// Compact once this many sealed segments exist.
    pub compact_min_segments: usize,
    /// Drop data older than `now - retention_ns` during [`DurableBackend::maintain`].
    pub retention_ns: Option<u64>,
    /// Partition duration of the memtable (see [`crate::series`]).
    pub partition_ns: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: FsyncPolicy::EveryN(64),
            memtable_max_readings: 200_000,
            compact_min_segments: 4,
            retention_ns: None,
            partition_ns: crate::series::DEFAULT_PARTITION_NS,
        }
    }
}

/// What [`DurableBackend::open`] found and restored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sealed segments indexed.
    pub segments: usize,
    /// Readings held by those segments.
    pub segment_readings: usize,
    /// WAL files replayed.
    pub wal_files: usize,
    /// Complete batches recovered from the WALs.
    pub wal_batches: usize,
    /// Readings recovered from the WALs into the memtable.
    pub wal_readings: usize,
    /// WAL files that ended in a torn or corrupt tail (each lost only
    /// its final, never-acknowledged record).
    pub torn_tails: usize,
}

/// Operational counters beyond [`StorageStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Memtable→segment seals performed.
    pub seals: u64,
    /// Compaction passes performed.
    pub compactions: u64,
    /// Segment block reads that failed checksum or decode (served
    /// degraded from the remaining sources).
    pub read_errors: u64,
    /// Current number of sealed segments.
    pub sealed_segments: usize,
    /// Readings currently in the memtable (approximate; overwrites of
    /// duplicate timestamps are counted as inserts).
    pub memtable_readings: usize,
}

struct Active {
    memtable: Arc<StorageBackend>,
    wal: Mutex<WalWriter>,
    wal_path: PathBuf,
}

/// The durable storage engine. See the module docs for the design.
pub struct DurableBackend {
    dir: PathBuf,
    config: DurableConfig,
    active: RwLock<Active>,
    /// Memtable currently being written out as a segment; still visible
    /// to reads so sealing never hides acknowledged data.
    sealing: RwLock<Option<Arc<StorageBackend>>>,
    /// Sealed segments as `(seq, reader)`, ascending by `seq`; later
    /// sequence numbers win timestamp ties during merges.
    segments: RwLock<Vec<(u64, Arc<SegmentReader>)>>,
    /// WAL files (paths) whose contents live in the active memtable and
    /// are deleted once that data is sealed into a segment.
    unsealed_wals: Mutex<Vec<PathBuf>>,
    next_seq: AtomicU64,
    memtable_readings: AtomicUsize,
    /// Serializes seal / compact / retention passes.
    seal_lock: Mutex<()>,
    recovery: RecoveryReport,
    inserts: AtomicU64,
    queries: AtomicU64,
    seals: AtomicU64,
    compactions: AtomicU64,
    read_errors: AtomicU64,
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl DurableBackend {
    /// Opens (or initializes) a durable engine rooted at `dir`,
    /// recovering all sealed segments and replaying the WAL tail.
    pub fn open(dir: &Path, config: DurableConfig) -> Result<DurableBackend> {
        std::fs::create_dir_all(dir)?;
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut wal_files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // Crash leftover from an interrupted seal; the data it
                // was written from is still covered by the WALs.
                std::fs::remove_file(&path).ok();
            } else if let Some(seq) = parse_seq(name, "seg-", ".seg") {
                seg_files.push((seq, path));
            } else if let Some(seq) = parse_seq(name, "wal-", ".log") {
                wal_files.push((seq, path));
            }
        }
        seg_files.sort();
        wal_files.sort();

        let mut recovery = RecoveryReport::default();
        let mut segments = Vec::with_capacity(seg_files.len());
        let mut max_seq = 0u64;
        for (seq, path) in seg_files {
            let reader = SegmentReader::open(&path)?;
            recovery.segments += 1;
            recovery.segment_readings += reader.reading_count();
            segments.push((seq, Arc::new(reader)));
            max_seq = max_seq.max(seq);
        }

        let memtable = Arc::new(StorageBackend::with_partition_ns(config.partition_ns));
        let mut unsealed = Vec::new();
        for (seq, path) in wal_files {
            let rep: WalReplay = replay(&path, |topic, readings| {
                memtable.insert_batch(&topic, &readings);
            })?;
            recovery.wal_files += 1;
            recovery.wal_batches += rep.batches;
            recovery.wal_readings += rep.readings;
            if rep.torn_tail {
                recovery.torn_tails += 1;
            }
            unsealed.push(path);
            max_seq = max_seq.max(seq);
        }

        let wal_seq = max_seq + 1;
        let wal_path = dir.join(format!("wal-{wal_seq:010}.log"));
        let wal = WalWriter::create(&wal_path, config.fsync)?;

        Ok(DurableBackend {
            dir: dir.to_path_buf(),
            config,
            active: RwLock::new(Active {
                memtable,
                wal: Mutex::new(wal),
                wal_path,
            }),
            sealing: RwLock::new(None),
            segments: RwLock::new(segments),
            unsealed_wals: Mutex::new(unsealed),
            next_seq: AtomicU64::new(wal_seq + 1),
            memtable_readings: AtomicUsize::new(recovery.wal_readings),
            seal_lock: Mutex::new(()),
            recovery,
            inserts: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
        })
    }

    /// What `open` recovered from disk.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The engine's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Inserts one reading, journaled before acknowledgement.
    pub fn insert(&self, topic: &Topic, r: SensorReading) -> Result<()> {
        self.insert_batch(topic, std::slice::from_ref(&r))
    }

    /// Inserts a batch, journaled before acknowledgement: when this
    /// returns `Ok`, the batch is in the WAL file (and fsynced, under
    /// `FsyncPolicy::Always`) — it will survive a process kill.
    pub fn insert_batch(&self, topic: &Topic, readings: &[SensorReading]) -> Result<()> {
        if readings.is_empty() {
            return Ok(());
        }
        {
            let active = self.active.read();
            active.wal.lock().append(topic, readings)?;
            active.memtable.insert_batch(topic, readings);
            self.memtable_readings
                .fetch_add(readings.len(), Ordering::Relaxed);
        }
        self.inserts
            .fetch_add(readings.len() as u64, Ordering::Relaxed);
        if self.memtable_readings.load(Ordering::Relaxed) >= self.config.memtable_max_readings {
            self.seal()?;
        }
        Ok(())
    }

    /// Range query merging sealed segments, the sealing memtable (if a
    /// seal is in flight) and the active memtable. Duplicate timestamps
    /// resolve newest-generation-wins, matching memtable overwrites.
    pub fn query(&self, topic: &Topic, t0: Timestamp, t1: Timestamp) -> Vec<SensorReading> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if t1 < t0 {
            return Vec::new();
        }
        let segments = self.segments.read().clone();
        let sealing = self.sealing.read().clone();
        if segments.is_empty() && sealing.is_none() {
            // Fast path: everything lives in the active memtable.
            return self.active.read().memtable.query(topic, t0, t1);
        }
        let mut merged: BTreeMap<Timestamp, SensorReading> = BTreeMap::new();
        for (_, seg) in &segments {
            match seg.query(topic, t0, t1) {
                Ok(readings) => {
                    for r in readings {
                        merged.insert(r.ts, r);
                    }
                }
                Err(_) => {
                    self.read_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(mem) = &sealing {
            for r in mem.query(topic, t0, t1) {
                merged.insert(r.ts, r);
            }
        }
        for r in self.active.read().memtable.query(topic, t0, t1) {
            merged.insert(r.ts, r);
        }
        merged.into_values().collect()
    }

    /// The newest reading of `topic` across all generations.
    pub fn latest(&self, topic: &Topic) -> Option<SensorReading> {
        let mut best: Option<SensorReading> = None;
        for (_, seg) in self.segments.read().iter() {
            let worth_reading = match (seg.block_max_ts(topic), &best) {
                (Some(mts), Some(b)) => mts >= b.ts,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if worth_reading {
                match seg.read_topic(topic) {
                    Ok(Some(readings)) => {
                        if let Some(&last) = readings.last() {
                            best = Some(last);
                        }
                    }
                    Ok(None) => {}
                    Err(_) => {
                        self.read_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if let Some(mem) = self.sealing.read().clone() {
            if let Some(r) = mem.latest(topic) {
                if best.is_none_or(|b| r.ts >= b.ts) {
                    best = Some(r);
                }
            }
        }
        if let Some(r) = self.active.read().memtable.latest(topic) {
            if best.is_none_or(|b| r.ts >= b.ts) {
                best = Some(r);
            }
        }
        best
    }

    /// True when any generation holds data for `topic`.
    pub fn contains(&self, topic: &Topic) -> bool {
        self.active.read().memtable.contains(topic)
            || self
                .sealing
                .read()
                .as_ref()
                .is_some_and(|m| m.contains(topic))
            || self.segments.read().iter().any(|(_, s)| s.contains(topic))
    }

    /// All topics with data in any generation, unordered.
    pub fn topics(&self) -> Vec<Topic> {
        let mut set: BTreeSet<Topic> = self.active.read().memtable.topics().into_iter().collect();
        if let Some(mem) = self.sealing.read().clone() {
            set.extend(mem.topics());
        }
        for (_, seg) in self.segments.read().iter() {
            set.extend(seg.topics().cloned());
        }
        set.into_iter().collect()
    }

    /// Seals the current memtable into an immutable segment and retires
    /// the covered WAL generations. Returns the readings sealed (0 when
    /// the memtable was empty).
    pub fn seal(&self) -> Result<usize> {
        let _guard = self.seal_lock.lock();
        if self.memtable_readings.load(Ordering::Relaxed) == 0 {
            return Ok(0);
        }
        let seg_seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let wal_seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let new_wal_path = self.dir.join(format!("wal-{wal_seq:010}.log"));
        let new_wal = WalWriter::create(&new_wal_path, self.config.fsync)?;
        let fresh = Arc::new(StorageBackend::with_partition_ns(self.config.partition_ns));

        // Publish the outgoing memtable to the `sealing` slot *before*
        // swapping it out, so reads never lose sight of it (brief double
        // visibility is harmless — merges dedupe by timestamp).
        let old = {
            let active = self.active.read();
            *self.sealing.write() = Some(Arc::clone(&active.memtable));
            drop(active);
            let mut active = self.active.write();
            let old = std::mem::replace(
                &mut *active,
                Active {
                    memtable: fresh,
                    wal: Mutex::new(new_wal),
                    wal_path: new_wal_path,
                },
            );
            self.memtable_readings.store(0, Ordering::Relaxed);
            old
        };

        let mut topics = old.memtable.topics();
        topics.sort();
        let entries: Vec<(Topic, Vec<SensorReading>)> = topics
            .into_iter()
            .map(|t| {
                let readings = old.memtable.query(&t, Timestamp::ZERO, Timestamp::MAX);
                (t, readings)
            })
            .collect();
        let sealed: usize = entries.iter().map(|(_, r)| r.len()).sum();
        let seg_path = self.dir.join(format!("seg-{seg_seq:010}.seg"));

        let written =
            write_segment(&seg_path, &entries).and_then(|()| SegmentReader::open(&seg_path));
        match written {
            Ok(reader) => {
                self.segments.write().push((seg_seq, Arc::new(reader)));
                *self.sealing.write() = None;
                // The sealed data is durable in the segment; retire the
                // WAL generations that covered it.
                let mut retired: Vec<PathBuf> = std::mem::take(&mut *self.unsealed_wals.lock());
                retired.push(old.wal_path);
                for path in retired {
                    std::fs::remove_file(&path).ok();
                }
                self.seals.fetch_add(1, Ordering::Relaxed);
                Ok(sealed)
            }
            Err(e) => {
                // Seal failed (e.g. disk full): fold the outgoing
                // memtable back into the active one. Its WAL files stay
                // on disk, so crash recovery still covers every
                // acknowledged insert; the next seal retries.
                {
                    let active = self.active.read();
                    for (topic, readings) in &entries {
                        active.memtable.insert_batch(topic, readings);
                    }
                    self.memtable_readings.fetch_add(sealed, Ordering::Relaxed);
                }
                *self.sealing.write() = None;
                self.unsealed_wals.lock().push(old.wal_path);
                std::fs::remove_file(&seg_path).ok();
                Err(e)
            }
        }
    }

    /// Merges all sealed segments into one when at least
    /// `compact_min_segments` exist. Returns true if a pass ran.
    pub fn compact(&self) -> Result<bool> {
        let _guard = self.seal_lock.lock();
        let old: Vec<(u64, Arc<SegmentReader>)> = self.segments.read().clone();
        if old.len() < self.config.compact_min_segments.max(2) {
            return Ok(false);
        }
        let mut merged: BTreeMap<Topic, BTreeMap<Timestamp, SensorReading>> = BTreeMap::new();
        for (_, seg) in &old {
            for topic in seg.topics().cloned().collect::<Vec<_>>() {
                let readings = seg.read_topic(&topic)?.unwrap_or_default();
                let per_topic = merged.entry(topic).or_default();
                for r in readings {
                    per_topic.insert(r.ts, r);
                }
            }
        }
        let entries: Vec<(Topic, Vec<SensorReading>)> = merged
            .into_iter()
            .map(|(t, m)| (t, m.into_values().collect()))
            .collect();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("seg-{seq:010}.seg"));
        write_segment(&path, &entries)?;
        let reader = Arc::new(SegmentReader::open(&path)?);
        {
            let mut segments = self.segments.write();
            segments.retain(|(s, _)| !old.iter().any(|(o, _)| o == s));
            segments.push((seq, reader));
            segments.sort_by_key(|(s, _)| *s);
        }
        for (_, seg) in &old {
            std::fs::remove_file(seg.path()).ok();
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Evicts data older than `cutoff`: memtable partitions (exact
    /// semantics of [`StorageBackend::evict_before`]) plus whole sealed
    /// segments entirely below the cutoff. Returns readings evicted.
    pub fn evict_before(&self, cutoff: Timestamp) -> usize {
        let _guard = self.seal_lock.lock();
        let mut evicted = self.active.read().memtable.evict_before(cutoff);
        let mut dropped: Vec<Arc<SegmentReader>> = Vec::new();
        {
            let mut segments = self.segments.write();
            segments.retain(|(_, seg)| match seg.time_range() {
                Some((_, max_ts)) if max_ts < cutoff => {
                    dropped.push(Arc::clone(seg));
                    false
                }
                _ => true,
            });
        }
        for seg in dropped {
            evicted += seg.reading_count();
            std::fs::remove_file(seg.path()).ok();
        }
        evicted
    }

    /// One maintenance pass: seal when the memtable is over threshold,
    /// compact when enough segments accumulated, apply retention.
    pub fn maintain(&self, now: Timestamp) -> Result<()> {
        if self.memtable_readings.load(Ordering::Relaxed) >= self.config.memtable_max_readings {
            self.seal()?;
        }
        if self.segments.read().len() >= self.config.compact_min_segments.max(2) {
            self.compact()?;
        }
        if let Some(retention) = self.config.retention_ns {
            self.evict_before(now.saturating_sub_ns(retention));
        }
        Ok(())
    }

    /// Seals outstanding memtable data and fsyncs the WAL — call before
    /// a graceful shutdown.
    pub fn flush(&self) -> Result<()> {
        self.seal()?;
        self.active.read().wal.lock().sync()
    }

    /// Counter snapshot in the shape the rest of the stack expects.
    /// `readings` can double-count a timestamp that exists both in a
    /// segment and the memtable (pre-compaction); queries deduplicate.
    pub fn stats(&self) -> StorageStats {
        let mem = self.active.read().memtable.stats();
        let seg_readings: usize = self
            .segments
            .read()
            .iter()
            .map(|(_, s)| s.reading_count())
            .sum();
        StorageStats {
            readings: mem.readings + seg_readings,
            sensors: self.topics().len(),
            inserts: self.inserts.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }

    /// Engine-specific counters.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            seals: self.seals.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            sealed_segments: self.segments.read().len(),
            memtable_readings: self.memtable_readings.load(Ordering::Relaxed),
        }
    }

    /// Total bytes currently on disk (WALs + segments).
    pub fn disk_bytes(&self) -> u64 {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }
}

impl Drop for DurableBackend {
    fn drop(&mut self) {
        // Best-effort: make acknowledged-but-unsynced appends durable.
        let active = self.active.read();
        let _ = active.wal.lock().sync();
    }
}

impl std::fmt::Debug for DurableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = self.engine_stats();
        f.debug_struct("DurableBackend")
            .field("dir", &self.dir)
            .field("segments", &e.sealed_segments)
            .field("memtable_readings", &e.memtable_readings)
            .field("seals", &e.seals)
            .field("compactions", &e.compactions)
            .finish()
    }
}

impl StorageEngine for DurableBackend {
    fn insert(&self, topic: &Topic, r: SensorReading) -> Result<()> {
        DurableBackend::insert(self, topic, r)
    }
    fn insert_batch(&self, topic: &Topic, readings: &[SensorReading]) -> Result<()> {
        DurableBackend::insert_batch(self, topic, readings)
    }
    fn query(&self, topic: &Topic, t0: Timestamp, t1: Timestamp) -> Vec<SensorReading> {
        DurableBackend::query(self, topic, t0, t1)
    }
    fn latest(&self, topic: &Topic) -> Option<SensorReading> {
        DurableBackend::latest(self, topic)
    }
    fn contains(&self, topic: &Topic) -> bool {
        DurableBackend::contains(self, topic)
    }
    fn topics(&self) -> Vec<Topic> {
        DurableBackend::topics(self)
    }
    fn evict_before(&self, cutoff: Timestamp) -> usize {
        DurableBackend::evict_before(self, cutoff)
    }
    fn stats(&self) -> StorageStats {
        DurableBackend::stats(self)
    }
    fn flush(&self) -> Result<()> {
        DurableBackend::flush(self)
    }
    fn maintain(&self, now: Timestamp) -> Result<()> {
        DurableBackend::maintain(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }
    fn r(v: i64, s: u64) -> SensorReading {
        SensorReading::new(v, Timestamp::from_secs(s))
    }

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(name: &str) -> TempDir {
            let mut p = std::env::temp_dir();
            p.push(format!("dcdb-engine-test-{}-{name}", std::process::id()));
            std::fs::remove_dir_all(&p).ok();
            TempDir(p)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn small_config() -> DurableConfig {
        DurableConfig {
            fsync: FsyncPolicy::Never,
            memtable_max_readings: 100,
            compact_min_segments: 3,
            retention_ns: None,
            partition_ns: 10 * 1_000_000_000,
        }
    }

    #[test]
    fn insert_query_without_seal() {
        let dir = TempDir::new("basic");
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        db.insert_batch(&t("/n0/power"), &[r(1, 1), r(2, 2), r(3, 3)])
            .unwrap();
        let q = db.query(&t("/n0/power"), Timestamp::from_secs(2), Timestamp::MAX);
        assert_eq!(q.iter().map(|x| x.value).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(db.latest(&t("/n0/power")).unwrap().value, 3);
        assert!(db.contains(&t("/n0/power")));
        assert!(!db.contains(&t("/nope")));
    }

    #[test]
    fn recovery_from_wal_only() {
        let dir = TempDir::new("wal-recovery");
        {
            let db = DurableBackend::open(dir.path(), small_config()).unwrap();
            for i in 1..=50u64 {
                db.insert(&t("/n0/power"), r(i as i64, i)).unwrap();
            }
            // No flush: drop re-syncs but data stays only in the WAL.
        }
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        let rep = db.recovery();
        assert_eq!(rep.wal_readings, 50);
        assert_eq!(rep.segments, 0);
        assert_eq!(rep.torn_tails, 0);
        let q = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 50);
    }

    #[test]
    fn seal_moves_data_to_segments_and_retires_wals() {
        let dir = TempDir::new("seal");
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        for i in 1..=120u64 {
            db.insert(&t("/n0/power"), r(i as i64, i)).unwrap();
        }
        // Threshold of 100 crossed → at least one automatic seal.
        let e = db.engine_stats();
        assert!(e.seals >= 1, "{e:?}");
        assert!(e.sealed_segments >= 1);
        // All data still queryable across generations.
        let q = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 120);
        assert_eq!(
            q.iter().map(|x| x.value).sum::<i64>(),
            (1..=120).sum::<i64>()
        );
        // WAL generations covered by the segment were deleted.
        let wals = std::fs::read_dir(dir.path())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .count();
        assert_eq!(wals, 1, "only the active WAL should remain");
    }

    #[test]
    fn recovery_from_segments_and_wal() {
        let dir = TempDir::new("mixed-recovery");
        {
            let db = DurableBackend::open(dir.path(), small_config()).unwrap();
            for i in 1..=250u64 {
                db.insert(&t("/n0/power"), r(i as i64, i)).unwrap();
            }
            for i in 1..=30u64 {
                db.insert(&t("/n1/temp"), r(-(i as i64), i)).unwrap();
            }
        }
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        let rep = db.recovery();
        assert!(rep.segments >= 2, "{rep:?}");
        assert!(rep.wal_readings > 0, "{rep:?}");
        assert_eq!(rep.segment_readings + rep.wal_readings, 280);
        let q = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 250);
        let q = db.query(&t("/n1/temp"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 30);
        assert_eq!(db.latest(&t("/n0/power")).unwrap().value, 250);
    }

    #[test]
    fn segment_readings_are_byte_identical() {
        let dir = TempDir::new("identical");
        let readings: Vec<SensorReading> = (0..500)
            .map(|i| SensorReading::new(i64::MAX - i as i64 * 7, Timestamp(1_000_000 + i * 333)))
            .collect();
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        db.insert_batch(&t("/n0/exact"), &readings).unwrap();
        db.flush().unwrap();
        assert!(db.engine_stats().sealed_segments >= 1);
        let q = db.query(&t("/n0/exact"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q, readings);
    }

    #[test]
    fn merge_prefers_newest_generation_on_duplicate_ts() {
        let dir = TempDir::new("dup-ts");
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        db.insert(&t("/n0/s"), r(1, 10)).unwrap();
        db.flush().unwrap(); // sealed: value 1 @ ts 10
        db.insert(&t("/n0/s"), r(2, 10)).unwrap(); // memtable overwrite
        let q = db.query(&t("/n0/s"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].value, 2);
        assert_eq!(db.latest(&t("/n0/s")).unwrap().value, 2);
        // Seal the overwrite too: later segment wins.
        db.flush().unwrap();
        let q = db.query(&t("/n0/s"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].value, 2);
    }

    #[test]
    fn compaction_merges_segments() {
        let dir = TempDir::new("compact");
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        for round in 0..4u64 {
            for i in 0..50u64 {
                let ts = round * 50 + i + 1;
                db.insert(&t("/n0/power"), r(ts as i64, ts)).unwrap();
            }
            db.seal().unwrap();
        }
        assert_eq!(db.engine_stats().sealed_segments, 4);
        assert!(db.compact().unwrap());
        let e = db.engine_stats();
        assert_eq!(e.sealed_segments, 1);
        assert_eq!(e.compactions, 1);
        let q = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(q.len(), 200);
        assert!(q.windows(2).all(|w| w[0].ts < w[1].ts));
        // Old segment files are gone from disk.
        let segs = std::fs::read_dir(dir.path())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
            .count();
        assert_eq!(segs, 1);
    }

    #[test]
    fn eviction_drops_old_segments_and_memtable_partitions() {
        let dir = TempDir::new("evict");
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        for i in 0..100u64 {
            db.insert(&t("/n0/power"), r(i as i64, i)).unwrap();
        }
        db.seal().unwrap(); // segment spans [0, 99]
        for i in 100..140u64 {
            db.insert(&t("/n0/power"), r(i as i64, i)).unwrap();
        }
        // Cutoff above the sealed segment's max: segment dropped whole.
        let evicted = db.evict_before(Timestamp::from_secs(120));
        assert!(evicted >= 100, "evicted {evicted}");
        let q = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
        assert!(q.iter().all(|x| x.ts >= Timestamp::from_secs(120)));
        assert_eq!(db.engine_stats().sealed_segments, 0);
    }

    #[test]
    fn maintain_applies_retention() {
        let dir = TempDir::new("retention");
        let config = DurableConfig {
            retention_ns: Some(50 * 1_000_000_000),
            ..small_config()
        };
        let db = DurableBackend::open(dir.path(), config).unwrap();
        for i in 0..100u64 {
            db.insert(&t("/n0/power"), r(i as i64, i)).unwrap();
        }
        db.seal().unwrap();
        db.maintain(Timestamp::from_secs(200)).unwrap();
        // Everything is older than 200s - 50s = 150s.
        let q = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
        assert!(q.is_empty(), "{} readings survive", q.len());
    }

    #[test]
    fn concurrent_ingest_with_seals() {
        let dir = TempDir::new("concurrent");
        let db = Arc::new(DurableBackend::open(dir.path(), small_config()).unwrap());
        let mut handles = vec![];
        for n in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let topic = t(&format!("/n{n}/s"));
                for i in 1..=500u64 {
                    db.insert(&topic, r(i as i64, i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for n in 0..4 {
            let q = db.query(&t(&format!("/n{n}/s")), Timestamp::ZERO, Timestamp::MAX);
            assert_eq!(q.len(), 500, "topic /n{n}/s");
        }
        assert!(db.engine_stats().seals >= 1);
    }

    #[test]
    fn stats_and_debug_cover_generations() {
        let dir = TempDir::new("stats");
        let db = DurableBackend::open(dir.path(), small_config()).unwrap();
        db.insert_batch(&t("/a/x"), &[r(1, 1), r(2, 2)]).unwrap();
        db.seal().unwrap();
        db.insert(&t("/b/y"), r(3, 3)).unwrap();
        let s = db.stats();
        assert_eq!(s.readings, 3);
        assert_eq!(s.sensors, 2);
        assert_eq!(s.inserts, 3);
        assert!(db.disk_bytes() > 0);
        let dbg = format!("{db:?}");
        assert!(dbg.contains("DurableBackend"));
        let mut topics = db.topics();
        topics.sort();
        assert_eq!(topics, vec![t("/a/x"), t("/b/y")]);
    }
}
