//! Model-kernel benchmarks: the per-interval costs the paper's plugins
//! pay (feature extraction + forest prediction for the regressor; BGMM
//! fitting for the hourly clustering; decile aggregation for persyst).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oda_ml::bgmm::{fit_bgmm, BgmmConfig};
use oda_ml::features::FeatureExtractor;
use oda_ml::forest::{ForestConfig, RandomForest};
use oda_ml::stats::deciles;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| r.iter().sum::<f64>() + rng.gen_range(-1.0..1.0))
        .collect();
    (x, y)
}

fn forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_forest");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let (x, y) = synthetic(n, 12, 1);
        group.bench_with_input(BenchmarkId::new("fit_20_trees", n), &n, |b, _| {
            b.iter(|| black_box(RandomForest::fit(&x, &y, &ForestConfig::default())))
        });
    }
    let (x, y) = synthetic(5_000, 12, 1);
    let model = RandomForest::fit(&x, &y, &ForestConfig::default());
    group.bench_function("predict", |b| {
        b.iter(|| black_box(model.predict(black_box(&x[17]))))
    });
    group.finish();
}

fn bgmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgmm");
    group.sample_size(10);
    // 148 nodes × 3 features: the exact shape of the hourly clustering.
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<Vec<f64>> = (0..148)
        .map(|i| {
            let center = (i % 3) as f64 * 3.0;
            vec![
                center + rng.gen_range(-0.4..0.4),
                center + rng.gen_range(-0.4..0.4),
                -center + rng.gen_range(-0.4..0.4),
            ]
        })
        .collect();
    group.bench_function("fit_148_nodes_3d", |b| {
        b.iter(|| black_box(fit_bgmm(&data, &BgmmConfig::default())))
    });
    group.finish();
}

fn aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_kernels");
    // 2048 per-core CPI samples: one persyst decile computation.
    let mut rng = StdRng::seed_from_u64(3);
    let cpis: Vec<f64> = (0..2048).map(|_| rng.gen_range(1.0..30.0)).collect();
    group.bench_function("deciles_2048", |b| b.iter(|| black_box(deciles(&cpis))));

    // One regressor feature vector: 7 sensors × 32-sample windows.
    let extractor = FeatureExtractor::default_extractor();
    let windows: Vec<Vec<f64>> = (0..7)
        .map(|_| (0..32).map(|_| rng.gen_range(0.0..300.0)).collect())
        .collect();
    group.bench_function("feature_vector_7x32", |b| {
        b.iter(|| black_box(extractor.extract(&windows)))
    });
    group.finish();
}

criterion_group!(benches, forest, bgmm, aggregation);
criterion_main!(benches);
