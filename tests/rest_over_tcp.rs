//! Full REST control-plane integration over real TCP sockets: the
//! paper's management workflow (§V-A) and on-demand operator mode
//! (§IV-B b) driven exactly as an external tool would.

use dcdb_wintermute::dcdb_bus::Broker;
use dcdb_wintermute::dcdb_collectagent::{CollectAgent, CollectAgentConfig};
use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp, Topic};
use dcdb_wintermute::dcdb_rest::{http_request, Method, RestServer, Router};
use dcdb_wintermute::dcdb_storage::StorageBackend;
use dcdb_wintermute::wintermute::prelude::*;
use dcdb_wintermute::wintermute_plugins;
use std::sync::Arc;

fn served_agent() -> (RestServer, Arc<CollectAgent>, Broker) {
    let broker = Broker::new_sync();
    let storage = Arc::new(StorageBackend::new());
    let agent = Arc::new(
        CollectAgent::new(CollectAgentConfig::default(), &broker.handle(), storage).unwrap(),
    );
    wintermute_plugins::register_all(agent.manager(), None);
    let bus = broker.handle();
    for node in 0..2 {
        for sec in 1..=20u64 {
            bus.publish_readings(
                Topic::parse(&format!("/r0/n{node}/power")).unwrap(),
                &[SensorReading::new(
                    100 + node as i64 * 50 + (sec % 5) as i64,
                    Timestamp::from_secs(sec),
                )],
            )
            .unwrap();
        }
    }
    agent.process_pending();
    agent
        .manager()
        .load(
            PluginConfig::online("avg", "aggregator", 1000)
                .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
                .with_option("window_ms", 20_000u64),
        )
        .unwrap();
    agent.tick(Timestamp::from_secs(21));

    let mut router = Router::new();
    agent.mount_routes(&mut router);
    let server = RestServer::serve("127.0.0.1:0", router).unwrap();
    (server, agent, broker)
}

#[test]
fn plugin_listing_and_lifecycle() {
    let (server, agent, _broker) = served_agent();
    let addr = server.addr();

    let (code, body) = http_request(addr, Method::Get, "/analytics/plugins", b"").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("\"avg\""));
    assert!(body.contains("\"running\""));

    let (code, _) = http_request(addr, Method::Put, "/analytics/plugins/avg/stop", b"").unwrap();
    assert_eq!(code, 200);
    assert!(!agent.manager().is_running("avg"));

    let (code, _) = http_request(addr, Method::Put, "/analytics/plugins/avg/start", b"").unwrap();
    assert_eq!(code, 200);
    assert!(agent.manager().is_running("avg"));

    let (code, _) = http_request(addr, Method::Put, "/analytics/plugins/avg/explode", b"").unwrap();
    assert_eq!(code, 400);
    let (code, _) = http_request(addr, Method::Put, "/analytics/plugins/ghost/stop", b"").unwrap();
    assert_eq!(code, 404);
}

#[test]
fn on_demand_compute_over_tcp() {
    let (server, _agent, _broker) = served_agent();
    let addr = server.addr();

    let (code, body) =
        http_request(addr, Method::Get, "/analytics/plugins/avg/units", b"").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("/r0/n0"), "{body}");

    let (code, body) =
        http_request(addr, Method::Get, "/analytics/compute/avg?unit=/r0/n1", b"").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("power-avg"), "{body}");
    assert!(body.contains("\"value\""));

    let (code, _) = http_request(
        addr,
        Method::Get,
        "/analytics/compute/avg?unit=/r0/ghost",
        b"",
    )
    .unwrap();
    assert_eq!(code, 404);
}

#[test]
fn raw_sensor_queries_over_tcp() {
    let (server, _agent, _broker) = served_agent();
    let addr = server.addr();
    let (code, body) = http_request(
        addr,
        Method::Get,
        "/sensors/r0/n0/power?from_s=10&to_s=12",
        b"",
    )
    .unwrap();
    assert_eq!(code, 200);
    let rows: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(rows.as_array().unwrap().len(), 3);

    // Unknown sensor: empty list, not an error (query semantics).
    let (code, body) = http_request(addr, Method::Get, "/sensors/r9/none/power", b"").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body.trim(), "[]");
}

#[test]
fn unload_over_tcp_removes_the_instance() {
    let (server, agent, _broker) = served_agent();
    let addr = server.addr();
    let (code, _) = http_request(addr, Method::Delete, "/analytics/plugins/avg", b"").unwrap();
    assert_eq!(code, 204);
    assert!(agent.manager().units_of("avg").is_err());
    let (code, _) = http_request(addr, Method::Delete, "/analytics/plugins/avg", b"").unwrap();
    assert_eq!(code, 404);
}

#[test]
fn reload_over_tcp_rebinds_units() {
    let (server, agent, broker) = served_agent();
    let addr = server.addr();
    assert_eq!(agent.manager().units_of("avg").unwrap().len(), 2);

    // A third node starts reporting.
    broker
        .handle()
        .publish_readings(
            Topic::parse("/r0/n2/power").unwrap(),
            &[SensorReading::new(250, Timestamp::from_secs(21))],
        )
        .unwrap();
    agent.process_pending();

    let (code, _) = http_request(addr, Method::Put, "/analytics/plugins/avg/reload", b"").unwrap();
    assert_eq!(code, 200);
    assert_eq!(agent.manager().units_of("avg").unwrap().len(), 3);
}
