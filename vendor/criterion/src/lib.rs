//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Bench targets keep compiling and running, but there is no
//! statistical measurement: each routine executes a handful of
//! iterations and one timing line is printed per benchmark. This keeps
//! `cargo test` (which runs `harness = false` bench binaries) fast,
//! and keeps the bench code exercised. Real measurements in this repo
//! come from `oda-bench`'s own harness, not from criterion.

use std::fmt;
use std::time::Instant;

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Iterations per benchmark routine: enough to exercise the code, few
/// enough that bench binaries stay near-instant under `cargo test`.
const ITERS: u32 = 2;

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the stand-in always runs a fixed,
    /// tiny number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility (upstream: target time per bench).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut wrapped);
        self
    }

    /// Ends the group (no-op here).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark routines; [`Bencher::iter`] runs the closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Option<std::time::Duration>,
}

impl Bencher {
    /// Executes the routine a fixed small number of times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed = Some(start.elapsed() / ITERS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { elapsed: None };
    f(&mut bencher);
    match bencher.elapsed {
        Some(d) => println!("bench {label}: ~{d:?}/iter (stub, {ITERS} iters)"),
        None => println!("bench {label}: routine did not call iter()"),
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target. CLI
/// arguments (`--bench`, `--test`, filters) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        let n = 4u64;
        group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(3)));
    }

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default();
        target(&mut c);
    }
}
