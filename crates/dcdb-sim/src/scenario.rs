//! The named-scenario registry: which fault lanes each scenario arms,
//! and the scales a scenario can run at.
//!
//! A scenario is pure data — a name plus a [`LaneSet`] — and the
//! harness derives everything else (outage windows, fault windows,
//! kill schedules, storm rounds, facility events) from the single run
//! seed via per-lane splitmix sub-seeds. `wintermute-sim --scenario
//! <name> --seed <s>` and the `oda-bench sim_matrix` harness both
//! resolve names through this registry, so a scenario observed anywhere
//! replays bit-identically everywhere.

use sim_cluster::Topology;

/// Which fault lanes a scenario arms. Every lane draws its schedule
/// from its own splitmix sub-seed ([`dcdb_common::sim::lanes`]), so
/// arming one lane never perturbs another's schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneSet {
    /// ChaosBus outages, silent drops and delivery delays.
    pub bus: bool,
    /// FaultIo ENOSPC / EIO / fsync-poison windows under the shard
    /// journals (forces durable storage).
    pub io: bool,
    /// Seeded operator panics and errors driving quarantine.
    pub operators: bool,
    /// Shard kill/rejoin churn (runs shards as replica pairs).
    pub churn: bool,
    /// Flash-crowd query storm bursts against the router.
    pub storm: bool,
    /// Island-scale facility events: power outages (island partitions),
    /// thermal throttles (publish decimation), rolling restarts
    /// (kill/rejoin sweeps). Forces a multi-island topology.
    pub facility: bool,
}

/// One named, replayable scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Registry key (`wintermute-sim --scenario <name>`).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The fault lanes this scenario arms.
    pub lanes: LaneSet,
}

/// Every named scenario, in registry order.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "bus_outage",
        summary: "broker outage windows, silent drops and delivery delays on the transport",
        lanes: LaneSet {
            bus: true,
            ..quiet_lanes()
        },
    },
    Scenario {
        name: "storage_faults",
        summary: "ENOSPC / EIO / fsync-poison windows under every shard journal",
        lanes: LaneSet {
            io: true,
            ..quiet_lanes()
        },
    },
    Scenario {
        name: "operator_faults",
        summary: "seeded operator panics and errors driving containment and quarantine",
        lanes: LaneSet {
            operators: true,
            ..quiet_lanes()
        },
    },
    Scenario {
        name: "shard_churn",
        summary: "replica-pair shards killed and rejoined on a seeded schedule",
        lanes: LaneSet {
            churn: true,
            ..quiet_lanes()
        },
    },
    Scenario {
        name: "query_storm",
        summary: "flash-crowd query bursts against the scatter-gather router",
        lanes: LaneSet {
            storm: true,
            ..quiet_lanes()
        },
    },
    Scenario {
        name: "island_blackout",
        summary: "facility events: island power loss, thermal throttling, rolling restarts",
        lanes: LaneSet {
            facility: true,
            ..quiet_lanes()
        },
    },
    Scenario {
        name: "compound",
        summary: "every fault lane at once, from one seed",
        lanes: LaneSet {
            bus: true,
            io: true,
            operators: true,
            churn: true,
            storm: true,
            facility: true,
        },
    },
];

const fn quiet_lanes() -> LaneSet {
    LaneSet {
        bus: false,
        io: false,
        operators: false,
        churn: false,
        storm: false,
        facility: false,
    }
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// How big a run is: topology, federation width, and round count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Property-test size: 16 nodes, 2 agents, 10 rounds.
    Tiny,
    /// CI size: 64 nodes, 4 agents, 24 rounds.
    Small,
    /// Production size: a 1536-node, 3-island machine, 12 agents.
    Large,
}

impl Scale {
    /// Parses the CLI form.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Canonical lower-case label.
    pub fn as_str(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Large => "large",
        }
    }

    /// The topology a scenario runs over at this scale. Facility-lane
    /// scenarios need islands, so they get a multi-island variant of
    /// the same size class.
    pub fn topology(&self, lanes: &LaneSet) -> Topology {
        match (self, lanes.facility) {
            (Scale::Tiny, false) => Topology::new(2, 8, 4),
            (Scale::Tiny, true) => Topology::new(2, 8, 4).with_islands(2),
            (Scale::Small, false) => Topology::federated(4),
            (Scale::Small, true) => Topology::new(4, 16, 8).with_islands(2),
            // ≥ 1500 nodes across 3 islands — the production scale the
            // sim matrix certifies.
            (Scale::Large, _) => Topology::multi_island(),
        }
    }

    /// Collect Agents in the federation.
    pub fn agents(&self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 4,
            Scale::Large => 12,
        }
    }

    /// Ingest rounds.
    pub fn rounds(&self) -> u64 {
        match self {
            Scale::Tiny => 10,
            Scale::Small => 24,
            Scale::Large => 12,
        }
    }

    /// Virtual milliseconds one round represents.
    pub fn round_ms(&self) -> u64 {
        match self {
            Scale::Tiny => 250,
            Scale::Small => 250,
            Scale::Large => 500,
        }
    }

    /// The virtual horizon of a run at this scale, nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.rounds() * self.round_ms() * 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for s in SCENARIOS {
            assert_eq!(find(s.name).unwrap().name, s.name);
            assert_eq!(
                SCENARIOS.iter().filter(|o| o.name == s.name).count(),
                1,
                "duplicate scenario name {}",
                s.name
            );
        }
        assert!(find("no_such_scenario").is_none());
        assert!(SCENARIOS.len() >= 6, "at least six fault classes");
    }

    #[test]
    fn large_scale_reaches_the_production_node_count() {
        let lanes = find("compound").unwrap().lanes;
        let topo = Scale::Large.topology(&lanes);
        assert!(topo.total_nodes >= 1500, "{}", topo.total_nodes);
        assert!(topo.islands >= 3);
    }

    #[test]
    fn facility_scenarios_always_get_islands() {
        let lanes = find("island_blackout").unwrap().lanes;
        for scale in [Scale::Tiny, Scale::Small, Scale::Large] {
            assert!(scale.topology(&lanes).islands >= 2, "{scale:?}");
        }
    }
}
