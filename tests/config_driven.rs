//! Configuration-file-driven deployment: a whole Wintermute setup
//! parsed from one JSON document (the paper's "small configuration
//! block", §III-C / §V-C.2), including an on-demand plugin that never
//! ticks and is only reachable through explicit invocation (§IV-B b).

use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp, Topic};
use dcdb_wintermute::wintermute::prelude::*;
use dcdb_wintermute::wintermute_plugins;
use std::sync::Arc;

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

fn engine() -> Arc<QueryEngine> {
    let qe = Arc::new(QueryEngine::new(64));
    for n in 0..4 {
        for sec in 1..=30u64 {
            qe.insert(
                &t(&format!("/rack0/node{n}/power")),
                SensorReading::new(
                    100 + n as i64 * 10 + (sec % 3) as i64,
                    Timestamp::from_secs(sec),
                ),
            );
            qe.insert(
                &t(&format!("/rack0/node{n}/temp")),
                SensorReading::new(45, Timestamp::from_secs(sec)),
            );
        }
    }
    qe.rebuild_navigator();
    qe
}

const CONFIG: &str = r#"{
  "plugins": [
    {
      "name": "node-power-avg",
      "kind": "aggregator",
      "mode": "online",
      "interval_ms": 1000,
      "unit_mode": "parallel",
      "inputs": ["<bottomup>power"],
      "outputs": ["<bottomup>power-avg"],
      "options": {"op": "mean", "window_ms": 10000}
    },
    {
      "name": "rack-peak",
      "kind": "aggregator",
      "mode": "online",
      "interval_ms": 5000,
      "inputs": ["<bottomup>power"],
      "outputs": ["<topdown>rack-peak"],
      "options": {"op": "max", "window_ms": 10000}
    },
    {
      "name": "diagnostics",
      "kind": "aggregator",
      "mode": "on_demand",
      "inputs": ["<bottomup>power", "<bottomup>temp"],
      "outputs": ["<bottomup>diag"],
      "options": {"op": "std", "window_ms": 30000}
    }
  ]
}"#;

fn load_all(mgr: &OperatorManager) {
    let config = WintermuteConfig::from_json(CONFIG).unwrap();
    assert_eq!(config.plugins.len(), 3);
    for plugin in config.plugins {
        mgr.load(plugin).unwrap();
    }
}

#[test]
fn document_loads_all_three_instances() {
    let mgr = OperatorManager::new(engine());
    wintermute_plugins::register_all(&mgr, None);
    load_all(&mgr);
    let list = mgr.list();
    assert_eq!(list.len(), 3);
    // Parallel instance: 4 operators; sequential ones: 1 each.
    let by_name: std::collections::HashMap<String, usize> = list
        .iter()
        .map(|(n, _, _, ops, _)| (n.clone(), *ops))
        .collect();
    assert_eq!(by_name["node-power-avg"], 4);
    assert_eq!(by_name["rack-peak"], 1);
    assert_eq!(by_name["diagnostics"], 1);
}

#[test]
fn online_instances_tick_on_their_own_intervals() {
    let mgr = OperatorManager::new(engine());
    wintermute_plugins::register_all(&mgr, None);
    load_all(&mgr);
    // First tick: both online instances due (4 + 1 operators); the
    // on-demand instance never ticks.
    let report = mgr.tick(Timestamp::from_secs(31));
    assert_eq!(report.operators_run, 5);
    // 2 seconds later only the 1s-interval instance is due again.
    let report = mgr.tick(Timestamp::from_secs(33));
    assert_eq!(report.operators_run, 4);
    assert!(!mgr
        .query_engine()
        .query(&t("/rack0/rack-peak"), QueryMode::Latest)
        .is_empty());
    // On-demand produced nothing by itself.
    assert!(mgr
        .query_engine()
        .query(&t("/rack0/node0/diag"), QueryMode::Latest)
        .is_empty());
}

#[test]
fn on_demand_instance_answers_explicit_requests_only() {
    let mgr = OperatorManager::new(engine());
    wintermute_plugins::register_all(&mgr, None);
    load_all(&mgr);
    mgr.tick(Timestamp::from_secs(31));
    let outputs = mgr
        .on_demand("diagnostics", &t("/rack0/node2"), Timestamp::from_secs(31))
        .unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].0, t("/rack0/node2/diag"));
    // Responses are not persisted (propagated only as a response).
    assert!(mgr
        .query_engine()
        .query(&t("/rack0/node2/diag"), QueryMode::Latest)
        .is_empty());
}

#[test]
fn malformed_documents_are_rejected_with_context() {
    assert!(WintermuteConfig::from_json("{").is_err());
    assert!(WintermuteConfig::from_json(r#"{"plugins": [{"name": "x"}]}"#).is_err());
    // Unknown plugin kind fails at load, naming the kind.
    let mgr = OperatorManager::new(engine());
    let config = WintermuteConfig::from_json(
        r#"{"plugins": [{"name": "x", "kind": "warp-drive", "mode": "on_demand"}]}"#,
    )
    .unwrap();
    let err = mgr.load(config.plugins[0].clone()).unwrap_err().to_string();
    assert!(err.contains("warp-drive"), "{err}");
}
