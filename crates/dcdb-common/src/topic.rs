//! Sensor topics and the sensor registry.
//!
//! DCDB identifies sensors by MQTT-style topics: forward-slash separated
//! strings such as `/rack4/chassis2/server3/power` that encode the
//! physical or logical placement of the sensor in the HPC system
//! (paper §III-A). The last segment is the *sensor name*; the preceding
//! path locates the component it belongs to.
//!
//! Topic strings are expensive to hash and compare in hot paths, so this
//! module also provides a [`SensorRegistry`] interning topics into dense
//! [`SensorId`]s; caches, the bus and the storage backend all key on the
//! id and translate back to strings only at API boundaries.

use crate::error::DcdbError;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A normalized sensor topic: `/seg1/seg2/.../name`.
///
/// Invariants (enforced by [`Topic::parse`]):
/// * starts with `/`,
/// * no trailing `/` (except the bare root `/`),
/// * no empty segments,
/// * segments contain no whitespace, `+`, `#` or `/`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Topic(Arc<str>);

impl Topic {
    /// Parses and normalizes a topic string.
    ///
    /// Accepts missing leading slash and a trailing slash, normalizing
    /// both; rejects empty segments and MQTT wildcard characters (these
    /// belong to *topic filters*, not topics).
    pub fn parse(raw: &str) -> Result<Topic, DcdbError> {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed == "/" {
            return Err(DcdbError::Topic(format!("empty topic: {raw:?}")));
        }
        let body = trimmed.trim_start_matches('/').trim_end_matches('/');
        if body.is_empty() {
            return Err(DcdbError::Topic(format!("empty topic: {raw:?}")));
        }
        let mut out = String::with_capacity(body.len() + 1);
        for seg in body.split('/') {
            if seg.is_empty() {
                return Err(DcdbError::Topic(format!("empty segment in {raw:?}")));
            }
            if seg.contains(['+', '#']) {
                return Err(DcdbError::Topic(format!(
                    "wildcard character in topic {raw:?}; use TopicFilter instead"
                )));
            }
            if seg.chars().any(char::is_whitespace) {
                return Err(DcdbError::Topic(format!("whitespace in segment {seg:?}")));
            }
            out.push('/');
            out.push_str(seg);
        }
        Ok(Topic(out.into()))
    }

    /// The full normalized topic string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterator over the path segments (without slashes).
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').skip(1)
    }

    /// Number of segments; a top-level sensor `/power` has depth 1.
    pub fn depth(&self) -> usize {
        self.segments().count()
    }

    /// The sensor name: the last segment.
    pub fn name(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or("")
    }

    /// The parent path (component the sensor/component belongs to), or
    /// `None` for a top-level topic.
    pub fn parent(&self) -> Option<Topic> {
        let idx = self.0.rfind('/')?;
        if idx == 0 {
            return None;
        }
        Some(Topic(self.0[..idx].into()))
    }

    /// Appends a child segment, producing a deeper topic.
    pub fn child(&self, segment: &str) -> Result<Topic, DcdbError> {
        Topic::parse(&format!("{}/{}", self.0, segment))
    }

    /// True if `self` is a strict prefix (ancestor path) of `other`.
    pub fn is_ancestor_of(&self, other: &Topic) -> bool {
        other.0.len() > self.0.len()
            && other.0.starts_with(self.0.as_ref())
            && other.0.as_bytes()[self.0.len()] == b'/'
    }

    /// The topic truncated to its first `depth` segments — the whole
    /// topic when it is shorter (never an empty path; `depth` is clamped
    /// to at least 1).
    ///
    /// This is the canonical *grouping key* for everything that buckets
    /// sensors by their leading path: delivery-staleness tracking groups
    /// by source (`/rack00/node03/...` at depth 2 → `/rack00/node03`)
    /// and the federation hash ring places topics on shards by the same
    /// key, so one component's sensors always land together. Both used
    /// to carry their own ad-hoc string-slicing; a single normalized
    /// implementation keeps the two keyspaces identical.
    pub fn prefix(&self, depth: usize) -> Topic {
        let depth = depth.max(1);
        let mut end = 0usize;
        let mut segments = 0usize;
        for (i, byte) in self.0.bytes().enumerate() {
            if byte == b'/' && i > 0 {
                segments += 1;
                if segments == depth {
                    end = i;
                    break;
                }
            }
        }
        if end == 0 {
            self.clone()
        } else {
            Topic(self.0[..end].into())
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl TryFrom<String> for Topic {
    type Error = DcdbError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        Topic::parse(&s)
    }
}

impl From<Topic> for String {
    fn from(t: Topic) -> String {
        t.0.to_string()
    }
}

impl std::str::FromStr for Topic {
    type Err = DcdbError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Topic::parse(s)
    }
}

/// Dense integer handle for an interned topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SensorId(pub u32);

/// Per-sensor metadata carried alongside the topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorMetadata {
    /// Physical unit of the readings (free-form, e.g. `"W"`, `"C"`).
    pub unit: String,
    /// Fixed-point divisor applied when interpreting values as reals.
    pub scale: f64,
    /// True for monotonically increasing counters (cycles, instructions);
    /// consumers typically differentiate these.
    pub monotonic: bool,
    /// Expected sampling interval in nanoseconds, 0 if unknown.
    pub interval_ns: u64,
}

impl Default for SensorMetadata {
    fn default() -> Self {
        SensorMetadata {
            unit: String::new(),
            scale: 1.0,
            monotonic: false,
            interval_ns: 0,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    by_topic: HashMap<Topic, SensorId>,
    by_id: Vec<(Topic, SensorMetadata)>,
}

/// Thread-safe interner mapping topics to dense [`SensorId`]s.
///
/// A single registry is shared by all components of one process
/// (Pusher or Collect Agent); ids are stable for the process lifetime.
#[derive(Default)]
pub struct SensorRegistry {
    inner: RwLock<RegistryInner>,
}

impl SensorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `topic`, returning its id; registers default metadata on
    /// first sight.
    pub fn intern(&self, topic: &Topic) -> SensorId {
        if let Some(&id) = self.inner.read().by_topic.get(topic) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_topic.get(topic) {
            return id;
        }
        let id = SensorId(inner.by_id.len() as u32);
        inner.by_id.push((topic.clone(), SensorMetadata::default()));
        inner.by_topic.insert(topic.clone(), id);
        id
    }

    /// Interns `topic` and attaches `meta` (overwriting existing
    /// metadata: the sampling plugin is the authority).
    pub fn intern_with_meta(&self, topic: &Topic, meta: SensorMetadata) -> SensorId {
        let id = self.intern(topic);
        self.inner.write().by_id[id.0 as usize].1 = meta;
        id
    }

    /// Looks up the id of an already-interned topic.
    pub fn lookup(&self, topic: &Topic) -> Option<SensorId> {
        self.inner.read().by_topic.get(topic).copied()
    }

    /// Returns the topic for `id`, if valid.
    pub fn topic(&self, id: SensorId) -> Option<Topic> {
        self.inner
            .read()
            .by_id
            .get(id.0 as usize)
            .map(|e| e.0.clone())
    }

    /// Returns the metadata for `id`, if valid.
    pub fn metadata(&self, id: SensorId) -> Option<SensorMetadata> {
        self.inner
            .read()
            .by_id
            .get(id.0 as usize)
            .map(|e| e.1.clone())
    }

    /// Number of interned sensors.
    pub fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all `(id, topic)` pairs, ordered by id.
    pub fn all(&self) -> Vec<(SensorId, Topic)> {
        self.inner
            .read()
            .by_id
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (SensorId(i as u32), t.clone()))
            .collect()
    }
}

impl fmt::Debug for SensorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SensorRegistry")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes() {
        assert_eq!(
            Topic::parse("rack0/node1/power").unwrap().as_str(),
            "/rack0/node1/power"
        );
        assert_eq!(
            Topic::parse("/rack0/node1/power/").unwrap().as_str(),
            "/rack0/node1/power"
        );
        assert_eq!(Topic::parse("  /a/b  ").unwrap().as_str(), "/a/b");
    }

    #[test]
    fn parse_rejects_bad_topics() {
        for bad in ["", "/", "//", "/a//b", "/a/+/b", "/a/#", "/a b/c"] {
            assert!(Topic::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn accessors() {
        let t = Topic::parse("/r03/c02/s02/healthy").unwrap();
        assert_eq!(t.name(), "healthy");
        assert_eq!(t.depth(), 4);
        assert_eq!(
            t.segments().collect::<Vec<_>>(),
            vec!["r03", "c02", "s02", "healthy"]
        );
        assert_eq!(t.parent().unwrap().as_str(), "/r03/c02/s02");
        let top = Topic::parse("/power").unwrap();
        assert_eq!(top.parent(), None);
        assert_eq!(top.depth(), 1);
    }

    #[test]
    fn child_and_ancestor() {
        let node = Topic::parse("/r1/c1/s1").unwrap();
        let sensor = node.child("power").unwrap();
        assert_eq!(sensor.as_str(), "/r1/c1/s1/power");
        assert!(node.is_ancestor_of(&sensor));
        assert!(!sensor.is_ancestor_of(&node));
        // Prefix of a segment is not an ancestor.
        let other = Topic::parse("/r1/c1/s11/power").unwrap();
        assert!(!node.is_ancestor_of(&other));
        assert!(!node.is_ancestor_of(&node.clone()));
    }

    #[test]
    fn prefix_truncates_to_leading_segments() {
        let t = Topic::parse("/rack00/node03/cpu00/cycles").unwrap();
        assert_eq!(t.prefix(2).as_str(), "/rack00/node03");
        assert_eq!(t.prefix(1).as_str(), "/rack00");
        assert_eq!(t.prefix(3).as_str(), "/rack00/node03/cpu00");
        // Depth at or past the topic's own depth: the whole topic.
        assert_eq!(t.prefix(4), t);
        assert_eq!(t.prefix(99), t);
        // Shallow topics are returned whole; depth 0 clamps to 1.
        let short = Topic::parse("/short").unwrap();
        assert_eq!(short.prefix(2), short);
        assert_eq!(short.prefix(0), short);
        assert_eq!(t.prefix(0).as_str(), "/rack00");
        // The prefix is itself a valid, normalized topic.
        assert_eq!(Topic::parse(t.prefix(2).as_str()).unwrap(), t.prefix(2));
    }

    #[test]
    fn prefix_is_stable_grouping_key() {
        // Sensors under the same component share a prefix; overlapping
        // segment *names* (node3 vs node30) never collapse into one key.
        let a = Topic::parse("/r0/node3/power").unwrap();
        let b = Topic::parse("/r0/node3/cpu0/cycles").unwrap();
        let c = Topic::parse("/r0/node30/power").unwrap();
        assert_eq!(a.prefix(2), b.prefix(2));
        assert_ne!(a.prefix(2), c.prefix(2));
        assert!(a.prefix(2).is_ancestor_of(&b));
        assert!(!a.prefix(2).is_ancestor_of(&c));
    }

    #[test]
    fn parse_edge_cases_for_ring_keys() {
        // The hash ring keys off normalized topics: every spelling of
        // one path must normalize identically, and malformed paths must
        // be rejected rather than silently producing a different key.
        for (raw, want) in [
            ("a/b/c", "/a/b/c"),
            ("/a/b/c", "/a/b/c"),
            ("/a/b/c/", "/a/b/c"),
            ("  a/b/c/  ", "/a/b/c"),
            // Leading/trailing separator runs normalize away entirely.
            ("//a", "/a"),
            ("/a/b//", "/a/b"),
        ] {
            assert_eq!(Topic::parse(raw).unwrap().as_str(), want, "{raw:?}");
        }
        // Empty topics and *interior* empty segments are malformed.
        for bad in ["//", "///", "/a//b", "a//b", "/ /a"] {
            assert!(Topic::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Whitespace-only and wildcard-bearing topics.
        for bad in ["   ", "\t", "/a/+/b", "/+", "/#", "/a/b#c", "/a/+b"] {
            assert!(Topic::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn overlapping_prefixes_stay_distinct() {
        // `/a/b` vs `/a/bc`: byte-prefix but not path-prefix.
        let short = Topic::parse("/a/b").unwrap();
        let longer = Topic::parse("/a/bc").unwrap();
        let deeper = Topic::parse("/a/b/c").unwrap();
        assert!(!short.is_ancestor_of(&longer));
        assert!(short.is_ancestor_of(&deeper));
        assert_ne!(longer.prefix(2), short);
    }

    #[test]
    fn registry_interns_stably() {
        let reg = SensorRegistry::new();
        let a = Topic::parse("/n0/power").unwrap();
        let b = Topic::parse("/n0/temp").unwrap();
        let ia = reg.intern(&a);
        let ib = reg.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(reg.intern(&a), ia);
        assert_eq!(reg.lookup(&a), Some(ia));
        assert_eq!(reg.topic(ia).unwrap(), a);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_metadata() {
        let reg = SensorRegistry::new();
        let t = Topic::parse("/n0/cycles").unwrap();
        let id = reg.intern_with_meta(
            &t,
            SensorMetadata {
                unit: "cycles".into(),
                scale: 1.0,
                monotonic: true,
                interval_ns: 1_000_000_000,
            },
        );
        let m = reg.metadata(id).unwrap();
        assert!(m.monotonic);
        assert_eq!(m.unit, "cycles");
        assert_eq!(reg.metadata(SensorId(99)), None);
    }

    #[test]
    fn registry_concurrent_interning_is_consistent() {
        let reg = std::sync::Arc::new(SensorRegistry::new());
        let topics: Vec<Topic> = (0..64)
            .map(|i| Topic::parse(&format!("/n{}/s{}", i % 8, i)).unwrap())
            .collect();
        let mut handles = vec![];
        for _ in 0..4 {
            let reg = reg.clone();
            let topics = topics.clone();
            handles.push(std::thread::spawn(move || {
                topics.iter().map(|t| reg.intern(t)).collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<SensorId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(reg.len(), 64);
    }

    #[test]
    fn serde_round_trip() {
        let t = Topic::parse("/a/b/c").unwrap();
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "\"/a/b/c\"");
        let back: Topic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert!(serde_json::from_str::<Topic>("\"/a/+/c\"").is_err());
    }
}
