//! The consistent-hash ring over the sensor topic space.
//!
//! The paper's production deployment (§VI–§VII) is hierarchical: many
//! Collect Agents feed a query tier. This module provides the placement
//! function for that tier: a [`ShardMap`] hashing *topic shard keys*
//! (the first `shard_key_depth` path segments, see
//! [`dcdb_common::topic::Topic::prefix`]) onto agents through a ring of
//! virtual nodes.
//!
//! Properties the rest of the federation relies on:
//!
//! * **Deterministic** — placement depends only on `(agents, vnodes,
//!   shard_key_depth)`; two processes building a map from the same
//!   agent set agree on every assignment, so a map can be rebuilt
//!   anywhere instead of shipped around. (Placement metadata is cheap
//!   to recompute; the *data* a shard holds is what [`crate::replica`]
//!   replicates.)
//! * **Stable under churn** — removing one agent only moves the keys
//!   that agent owned; everything else stays put (the point of
//!   consistent hashing: a join/leave rebalances ~1/N of the space).
//! * **Component-affine** — keys are topic *prefixes*, so all sensors
//!   of one node (`/rack00/node03/...`) land on the same shard and a
//!   per-node analysis never fans out.
//! * **Serializable** — the map travels as JSON (epoch + agents +
//!   vnodes) and is rebuilt on arrival; the ring points themselves are
//!   derived, never serialized.

use dcdb_common::topic::Topic;
use serde::{Deserialize, Serialize};

/// Default virtual nodes per agent: enough to keep the largest/smallest
/// shard ratio near 1 for small fleets.
pub const DEFAULT_VNODES: usize = 64;

/// Default shard-key depth: `/rack/node` — one compute node's sensors
/// stay together.
pub const DEFAULT_SHARD_KEY_DEPTH: usize = 2;

/// 64-bit FNV-1a with a splitmix64 finalizer: tiny, dependency-free,
/// stable across platforms and process runs (unlike `std`'s
/// `DefaultHasher`, which is randomized). Raw FNV-1a mixes its high
/// bits poorly on short, similar strings (`agent-00#0` vs
/// `agent-00#1`), and ring placement orders by the *full* u64 — the
/// finalizer's avalanche is what makes vnode points actually
/// interleave instead of clustering per agent.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// A versioned, deterministic assignment of the topic space to agents.
///
/// Built with [`ShardMap::build`]; queried with [`ShardMap::assign`].
/// Serializes to its *generators* (epoch, agents, vnodes, key depth) —
/// deserialization rebuilds the ring points, so a map is
/// wire-compatible as long as both sides run the same hash.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Monotonic map version; bumped on every rebalance.
    pub epoch: u64,
    /// Virtual nodes per agent.
    pub vnodes: usize,
    /// How many leading topic segments form the shard key.
    pub shard_key_depth: usize,
    /// Member agent ids, sorted (placement is order-independent).
    pub agents: Vec<String>,
    /// Ring points: `(hash, agent index)`, sorted by hash. Derived from
    /// the fields above; rebuilt on deserialization.
    points: Vec<(u64, u32)>,
}

/// The serialized form of a [`ShardMap`]: generators only.
#[derive(Serialize, Deserialize)]
struct ShardMapWire {
    epoch: u64,
    vnodes: usize,
    shard_key_depth: usize,
    agents: Vec<String>,
}

impl From<ShardMapWire> for ShardMap {
    fn from(w: ShardMapWire) -> ShardMap {
        ShardMap::build_at(w.epoch, &w.agents, w.vnodes, w.shard_key_depth)
    }
}

impl From<ShardMap> for ShardMapWire {
    fn from(m: ShardMap) -> ShardMapWire {
        ShardMapWire {
            epoch: m.epoch,
            vnodes: m.vnodes,
            shard_key_depth: m.shard_key_depth,
            agents: m.agents,
        }
    }
}

// Serialization travels through the generators-only wire form; the
// ring points are rebuilt on arrival.
impl Serialize for ShardMap {
    fn to_content(&self) -> serde::Content {
        ShardMapWire::from(self.clone()).to_content()
    }
}

impl Deserialize for ShardMap {
    fn from_content(content: &serde::Content) -> std::result::Result<Self, serde::Error> {
        ShardMapWire::from_content(content).map(ShardMap::from)
    }
}

impl PartialEq for ShardMap {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.vnodes == other.vnodes
            && self.shard_key_depth == other.shard_key_depth
            && self.agents == other.agents
    }
}
impl Eq for ShardMap {}

impl ShardMap {
    /// Builds the epoch-0 map for `agents`.
    pub fn build(agents: &[String], vnodes: usize, shard_key_depth: usize) -> ShardMap {
        ShardMap::build_at(0, agents, vnodes, shard_key_depth)
    }

    /// Builds a map at an explicit epoch (rebalances bump the epoch of
    /// the map they replace).
    pub fn build_at(
        epoch: u64,
        agents: &[String],
        vnodes: usize,
        shard_key_depth: usize,
    ) -> ShardMap {
        let vnodes = vnodes.max(1);
        let mut agents: Vec<String> = agents.to_vec();
        agents.sort();
        agents.dedup();
        let mut points = Vec::with_capacity(agents.len() * vnodes);
        for (idx, id) in agents.iter().enumerate() {
            for v in 0..vnodes {
                let point = fnv1a(format!("{id}#{v}").as_bytes());
                points.push((point, idx as u32));
            }
        }
        // Ties broken by agent index so placement stays deterministic
        // even on (astronomically unlikely) hash collisions.
        points.sort_unstable();
        ShardMap {
            epoch,
            vnodes,
            shard_key_depth: shard_key_depth.max(1),
            agents,
            points,
        }
    }

    /// A copy of this map with `agents` as the member set and the epoch
    /// bumped — the rebalance primitive.
    pub fn rebalanced(&self, agents: &[String]) -> ShardMap {
        ShardMap::build_at(self.epoch + 1, agents, self.vnodes, self.shard_key_depth)
    }

    /// The shard key of `topic`: its first `shard_key_depth` segments.
    pub fn shard_key(&self, topic: &Topic) -> Topic {
        topic.prefix(self.shard_key_depth)
    }

    /// The index (into [`ShardMap::agents`]) of the agent owning
    /// `topic`, or `None` for an empty map.
    pub fn assign(&self, topic: &Topic) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let key = fnv1a(self.shard_key(topic).as_str().as_bytes());
        // First ring point at or after the key, wrapping around.
        let at = self.points.partition_point(|&(h, _)| h < key);
        let (_, idx) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(idx as usize)
    }

    /// The id of the agent owning `topic`.
    pub fn assign_id(&self, topic: &Topic) -> Option<&str> {
        self.assign(topic).map(|i| self.agents[i].as_str())
    }

    /// Number of member agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// True when no agents are in the map.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// The fraction of `topics` whose owner differs between `self` and
    /// `other` — churn accounting for rebalance tests and the
    /// `/federation` endpoint.
    pub fn moved_fraction(&self, other: &ShardMap, topics: &[Topic]) -> f64 {
        if topics.is_empty() {
            return 0.0;
        }
        let moved = topics
            .iter()
            .filter(|t| self.assign_id(t) != other.assign_id(t))
            .count();
        moved as f64 / topics.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agents(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("agent-{i:02}")).collect()
    }

    fn topics() -> Vec<Topic> {
        let mut out = Vec::new();
        for rack in 0..4 {
            for node in 0..16 {
                for sensor in ["power", "temp", "cpu00/cycles", "cpu01/cycles"] {
                    out.push(
                        Topic::parse(&format!("/rack{rack:02}/node{node:02}/{sensor}")).unwrap(),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let a = ShardMap::build(&agents(4), 64, 2);
        let mut shuffled = agents(4);
        shuffled.reverse();
        let b = ShardMap::build(&shuffled, 64, 2);
        for t in topics() {
            assert_eq!(a.assign_id(&t), b.assign_id(&t), "{t}");
        }
    }

    #[test]
    fn all_sensors_of_one_component_colocate() {
        let map = ShardMap::build(&agents(8), 64, 2);
        for node in 0..16 {
            let owner = map
                .assign_id(&Topic::parse(&format!("/rack00/node{node:02}/power")).unwrap())
                .unwrap()
                .to_string();
            for sensor in ["temp", "memfree", "cpu03/cache-misses"] {
                let t = Topic::parse(&format!("/rack00/node{node:02}/{sensor}")).unwrap();
                assert_eq!(map.assign_id(&t), Some(owner.as_str()), "{t}");
            }
        }
    }

    #[test]
    fn load_spreads_across_agents() {
        let map = ShardMap::build(&agents(4), 64, 2);
        let mut counts = [0usize; 4];
        for t in topics() {
            counts[map.assign(&t).unwrap()] += 1;
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, topics().len());
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "agent {i} owns nothing: {counts:?}");
        }
        // With 64 vnodes the imbalance stays moderate.
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 4.0, "{counts:?}");
    }

    #[test]
    fn removing_one_agent_moves_only_its_keys() {
        let before = ShardMap::build(&agents(4), 64, 2);
        let after = before.rebalanced(&agents(4)[..3]);
        assert_eq!(after.epoch, 1);
        let ts = topics();
        for t in &ts {
            let old = before.assign_id(t).unwrap();
            let new = after.assign_id(t).unwrap();
            if old != "agent-03" {
                assert_eq!(old, new, "{t} moved although its owner stayed");
            } else {
                assert_ne!(new, "agent-03");
            }
        }
        // Churn ≈ 1/N, certainly nowhere near a full reshuffle.
        let moved = before.moved_fraction(&after, &ts);
        assert!(moved > 0.0 && moved < 0.5, "moved {moved}");
    }

    #[test]
    fn rejoin_restores_previous_placement() {
        let before = ShardMap::build(&agents(4), 64, 2);
        let shrunk = before.rebalanced(&agents(4)[..3]);
        let rejoined = shrunk.rebalanced(&agents(4));
        assert_eq!(rejoined.epoch, 2);
        for t in topics() {
            assert_eq!(before.assign_id(&t), rejoined.assign_id(&t), "{t}");
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_identical_ring() {
        let map = ShardMap::build_at(7, &agents(5), 32, 2);
        let json = serde_json::to_string(&map).unwrap();
        // Only the generators travel.
        assert!(!json.contains("points"), "{json}");
        let back: ShardMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
        for t in topics() {
            assert_eq!(back.assign_id(&t), map.assign_id(&t));
        }
    }

    #[test]
    fn empty_map_assigns_nothing() {
        let map = ShardMap::build(&[], 64, 2);
        assert!(map.is_empty());
        assert_eq!(map.assign(&Topic::parse("/a/b").unwrap()), None);
    }

    #[test]
    fn single_agent_owns_everything() {
        let map = ShardMap::build(&agents(1), 64, 2);
        for t in topics() {
            assert_eq!(map.assign_id(&t), Some("agent-00"));
        }
    }
}
