//! `ablate_unit_parallelism` — sequential vs parallel unit management
//! (paper §IV-B c): sequential packs every unit into one operator;
//! parallel creates one operator per unit, which the manager fans out
//! over rayon. On multicore hosts parallel wins at scale; on one core
//! they should tie (the fan-out must not cost anything) — both halves
//! of that claim are measurable here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use std::hint::black_box;
use std::sync::Arc;
use wintermute::prelude::*;
use wintermute_plugins::AggregatorPlugin;

fn manager_with_nodes(nodes: usize) -> Arc<OperatorManager> {
    let qe = Arc::new(QueryEngine::new(128));
    for n in 0..nodes {
        let topic = Topic::parse(&format!("/rack0/n{n}/power")).unwrap();
        for s in 1..=60u64 {
            qe.insert(
                &topic,
                SensorReading::new(100 + s as i64, Timestamp::from_secs(s)),
            );
        }
    }
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    mgr.register_plugin(Box::new(AggregatorPlugin));
    mgr
}

fn ablate_unit_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_unit_parallelism");
    group.sample_size(20);
    for nodes in [16usize, 128] {
        for (label, unit_mode) in [
            ("sequential", UnitMode::Sequential),
            ("parallel", UnitMode::Parallel),
        ] {
            let mgr = manager_with_nodes(nodes);
            mgr.load(
                PluginConfig::online("agg", "aggregator", 1)
                    .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
                    .with_unit_mode(unit_mode)
                    .with_option("window_ms", 30_000u64),
            )
            .unwrap();
            let mut now = Timestamp::from_secs(61);
            group.bench_with_input(BenchmarkId::new(label, nodes), &nodes, |b, _| {
                b.iter(|| {
                    now = now.saturating_add_ns(1_000_000);
                    black_box(mgr.tick(now))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablate_unit_parallelism);
criterion_main!(benches);
