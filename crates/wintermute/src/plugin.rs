//! Operator plugins and their configurators (paper §V-C.2).
//!
//! A plugin bundles an operator implementation with a *configurator*
//! that reads the plugin's configuration block and instantiates
//! operators together with their units. The [`UnitMode`] decides the
//! instantiation shape: sequential configs yield one operator holding
//! every unit; parallel configs yield one operator per unit.

use crate::operator::{Operator, OperatorMode, UnitMode};
use crate::tree::SensorNavigator;
use crate::unit::{resolve_units, Resolution, Unit, UnitTemplate};
use dcdb_common::config::{KvConfig, SamplingConfig};
use dcdb_common::error::{DcdbError, Result};
use serde::{Deserialize, Serialize};

/// Configuration of one plugin instance, as read from a Wintermute
/// configuration file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PluginConfig {
    /// Instance name (unique per manager).
    pub name: String,
    /// Plugin kind, resolved against the plugin registry
    /// (e.g. `"regressor"`, `"perfmetrics"`).
    pub kind: String,
    /// Online vs on-demand operation.
    #[serde(flatten)]
    pub mode: OperatorMode,
    /// Sequential vs parallel unit management.
    #[serde(default)]
    pub unit_mode: UnitMode,
    /// Sampling/caching parameters (interval reused as the online
    /// computation interval when `mode` carries none).
    #[serde(default)]
    pub sampling: SamplingConfig,
    /// Input pattern expressions (paper §III-C syntax).
    #[serde(default)]
    pub inputs: Vec<String>,
    /// Output pattern expressions; the first defines the unit domain.
    #[serde(default)]
    pub outputs: Vec<String>,
    /// Plugin-specific options.
    #[serde(default)]
    pub options: KvConfig,
}

impl PluginConfig {
    /// A minimal online config (tests and examples).
    pub fn online(name: &str, kind: &str, interval_ms: u64) -> PluginConfig {
        PluginConfig {
            name: name.to_string(),
            kind: kind.to_string(),
            mode: OperatorMode::Online { interval_ms },
            unit_mode: UnitMode::Sequential,
            sampling: SamplingConfig::default(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            options: KvConfig::new(),
        }
    }

    /// Builder: set pattern expressions.
    pub fn with_patterns(mut self, inputs: &[&str], outputs: &[&str]) -> PluginConfig {
        self.inputs = inputs.iter().map(|s| s.to_string()).collect();
        self.outputs = outputs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: set unit mode.
    pub fn with_unit_mode(mut self, unit_mode: UnitMode) -> PluginConfig {
        self.unit_mode = unit_mode;
        self
    }

    /// Builder: set a plugin-specific option.
    pub fn with_option(mut self, key: &str, value: impl Into<serde_json::Value>) -> PluginConfig {
        self.options.0.insert(key.to_string(), value.into());
        self
    }

    /// The computation interval for online instances.
    pub fn interval_ms(&self) -> Option<u64> {
        match self.mode {
            OperatorMode::Online { interval_ms } => Some(interval_ms),
            OperatorMode::OnDemand => None,
        }
    }

    /// Parses the unit template from the pattern strings.
    pub fn template(&self) -> Result<UnitTemplate> {
        let inputs: Vec<&str> = self.inputs.iter().map(String::as_str).collect();
        let outputs: Vec<&str> = self.outputs.iter().map(String::as_str).collect();
        UnitTemplate::parse(&inputs, &outputs)
    }

    /// Resolves the template against a navigator.
    pub fn resolve(&self, nav: &SensorNavigator) -> Result<Resolution> {
        resolve_units(&self.template()?, nav)
    }
}

/// A whole Wintermute configuration file: the plugin instances one
/// Pusher or Collect Agent loads at startup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WintermuteConfig {
    /// Plugin instances to load, in order.
    pub plugins: Vec<PluginConfig>,
}

impl WintermuteConfig {
    /// Parses a JSON configuration document.
    pub fn from_json(s: &str) -> Result<WintermuteConfig> {
        serde_json::from_str(s)
            .map_err(|e| DcdbError::Config(format!("bad Wintermute config: {e}")))
    }
}

/// The plugin interface the Operator Manager loads: a factory producing
/// configured operators.
pub trait OperatorPlugin: Send + Sync {
    /// The plugin kind this factory builds (matches
    /// [`PluginConfig::kind`]).
    fn kind(&self) -> &str;

    /// Reads the config, resolves units against the sensor tree and
    /// instantiates operators.
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>>;
}

/// Splits resolved units across operator instances according to the
/// unit mode and invokes `make` for each instance — the shared
/// scaffolding every concrete configurator uses.
///
/// `make(instance_name, units)` builds one operator.
pub fn instantiate<F>(
    config: &PluginConfig,
    units: Vec<Unit>,
    mut make: F,
) -> Result<Vec<Box<dyn Operator>>>
where
    F: FnMut(String, Vec<Unit>) -> Result<Box<dyn Operator>>,
{
    if units.is_empty() {
        return Err(DcdbError::Config(format!(
            "plugin {:?}: no units could be resolved",
            config.name
        )));
    }
    match config.unit_mode {
        UnitMode::Sequential => Ok(vec![make(config.name.clone(), units)?]),
        UnitMode::Parallel => units
            .into_iter()
            .enumerate()
            .map(|(i, u)| make(format!("{}#{}", config.name, i), vec![u]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{ComputeContext, Output};
    use dcdb_common::topic::Topic;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    struct NullOperator {
        name: String,
        units: Vec<Unit>,
    }
    impl Operator for NullOperator {
        fn name(&self) -> &str {
            &self.name
        }
        fn units(&self) -> &[Unit] {
            &self.units
        }
        fn compute(&mut self, _i: usize, _ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
            Ok(Vec::new())
        }
    }

    fn units(n: usize) -> Vec<Unit> {
        (0..n)
            .map(|i| Unit {
                name: t(&format!("/n{i}")),
                inputs: vec![t(&format!("/n{i}/in"))],
                outputs: vec![t(&format!("/n{i}/out"))],
            })
            .collect()
    }

    #[test]
    fn sequential_yields_one_operator() {
        let cfg = PluginConfig::online("p", "null", 1000);
        let ops = instantiate(&cfg, units(5), |name, us| {
            Ok(Box::new(NullOperator { name, units: us }) as Box<dyn Operator>)
        })
        .unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].units().len(), 5);
        assert_eq!(ops[0].name(), "p");
    }

    #[test]
    fn parallel_yields_one_operator_per_unit() {
        let cfg = PluginConfig::online("p", "null", 1000).with_unit_mode(UnitMode::Parallel);
        let ops = instantiate(&cfg, units(4), |name, us| {
            Ok(Box::new(NullOperator { name, units: us }) as Box<dyn Operator>)
        })
        .unwrap();
        assert_eq!(ops.len(), 4);
        assert!(ops.iter().all(|o| o.units().len() == 1));
        assert_eq!(ops[3].name(), "p#3");
    }

    #[test]
    fn zero_units_is_an_error() {
        let cfg = PluginConfig::online("p", "null", 1000);
        let err = match instantiate(&cfg, vec![], |name, us| {
            Ok(Box::new(NullOperator { name, units: us }) as Box<dyn Operator>)
        }) {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert!(err.to_string().contains("no units"));
    }

    #[test]
    fn config_serde_round_trip() {
        let json = r#"{
            "name": "power-regressor",
            "kind": "regressor",
            "mode": "online",
            "interval_ms": 250,
            "unit_mode": "parallel",
            "inputs": ["<bottomup, filter cpu>cycles"],
            "outputs": ["<bottomup-1>power-pred"],
            "options": {"window_ms": 5000}
        }"#;
        let cfg: PluginConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.name, "power-regressor");
        assert_eq!(cfg.interval_ms(), Some(250));
        assert_eq!(cfg.unit_mode, UnitMode::Parallel);
        assert_eq!(cfg.options.u64("window_ms").unwrap(), 5000);
        let template = cfg.template().unwrap();
        assert_eq!(template.inputs.len(), 1);
        // Round-trip through serde.
        let back: PluginConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(back.name, cfg.name);
        assert_eq!(back.interval_ms(), cfg.interval_ms());
    }

    #[test]
    fn on_demand_has_no_interval() {
        let json = r#"{"name": "x", "kind": "y", "mode": "on_demand"}"#;
        let cfg: PluginConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.interval_ms(), None);
    }

    #[test]
    fn builder_helpers() {
        let cfg = PluginConfig::online("a", "b", 100)
            .with_patterns(&["<topdown>in"], &["<topdown>out"])
            .with_option("k", 3);
        assert_eq!(cfg.inputs, vec!["<topdown>in"]);
        assert_eq!(cfg.options.u64("k").unwrap(), 3);
        assert!(cfg.template().is_ok());
    }
}
