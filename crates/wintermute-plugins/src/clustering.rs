//! Bayesian gaussian mixture clustering plugin (paper §VI-D, Case
//! Study 3).
//!
//! "This plugin is configured to have one operator with as many units
//! as compute nodes, each having as input a node's power, temperature
//! and CPU idle time sensors, and as output a label of the cluster to
//! which it belongs. At every computation interval the operator computes
//! [window] averages for the input sensors of each unit. Then, each unit
//! is treated as a data point ... and clustering is applied."
//!
//! The model is shared by all units, so the plugin runs in sequential
//! unit mode: the first unit's computation performs the clustering over
//! every unit's feature vector and caches the labels; each unit then
//! emits its own label (`-1` = outlier, as in the paper's
//! probability-threshold outlier rule).
//!
//! Options:
//! * `window_ms` — averaging window (the paper uses 2 weeks; the
//!   simulation uses shorter windows, default 60 000);
//! * `max_components` — BGMM component cap (default 8);
//! * `outlier_threshold` — density threshold (default 0.001, the
//!   paper's value);
//! * `rates` — input sensor names that are monotonic counters and must
//!   be differenced instead of averaged (default `["cpu-idle"]`);
//! * `fixed_point` — input names carrying ×1000 fixed-point values
//!   (default `["temp"]`).

use dcdb_common::error::Result;
use dcdb_common::reading::{decode_f64, SensorReading};
use dcdb_common::time::NS_PER_MS;
use dcdb_common::topic::Topic;
use oda_ml::bgmm::{fit_bgmm, BgmmConfig};
use oda_ml::stats::standardize;
use wintermute::prelude::*;

/// The clustering operator.
pub struct ClusteringOperator {
    name: String,
    units: Vec<Unit>,
    window_ns: u64,
    bgmm: BgmmConfig,
    rates: Vec<String>,
    fixed_point: Vec<String>,
    /// Labels from the last clustering pass; `i64::MIN` = no data.
    labels: Vec<i64>,
    /// Number of effective clusters in the last pass.
    last_k: usize,
}

impl ClusteringOperator {
    /// Builds the feature vector of one unit: windowed average per
    /// gauge input, windowed rate per counter input.
    fn features(&self, unit: &Unit, ctx: &ComputeContext<'_>) -> Option<Vec<f64>> {
        let mut out = Vec::with_capacity(unit.inputs.len());
        for input in &unit.inputs {
            let readings = ctx.query.query(
                input,
                QueryMode::Relative {
                    offset_ns: self.window_ns,
                },
            );
            if readings.is_empty() {
                return None;
            }
            let name = input.name();
            let is_rate = self.rates.iter().any(|r| r == name);
            let is_fp = self.fixed_point.iter().any(|r| r == name);
            let value = if is_rate {
                if readings.len() < 2 {
                    return None;
                }
                let first = readings.first().unwrap();
                let last = readings.last().unwrap();
                let dt = last.ts.elapsed_since(first.ts) as f64 / 1e9;
                if dt <= 0.0 {
                    return None;
                }
                (last.value - first.value) as f64 / dt
            } else {
                let vals: Vec<f64> = readings
                    .iter()
                    .map(|r| {
                        if is_fp {
                            decode_f64(r.value)
                        } else {
                            r.value as f64
                        }
                    })
                    .collect();
                oda_ml::stats::mean(&vals)
            };
            out.push(value);
        }
        Some(out)
    }

    fn recluster(&mut self, ctx: &ComputeContext<'_>) {
        let features: Vec<Option<Vec<f64>>> =
            self.units.iter().map(|u| self.features(u, ctx)).collect();
        let present: Vec<(usize, &Vec<f64>)> = features
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|v| (i, v)))
            .collect();
        self.labels = vec![i64::MIN; self.units.len()];
        self.last_k = 0;
        if present.len() < 3 {
            return; // too few points to cluster meaningfully
        }
        let data: Vec<Vec<f64>> = present.iter().map(|(_, v)| (*v).clone()).collect();
        let (_, _, scaled) = standardize(&data);
        let model = fit_bgmm(&scaled, &self.bgmm);
        self.last_k = model.n_effective();
        for ((unit_idx, _), label) in present.iter().zip(model.labels.iter()) {
            self.labels[*unit_idx] = match label {
                Some(k) => *k as i64,
                None => -1,
            };
        }
    }

    /// The effective cluster count of the last pass (diagnostics).
    pub fn effective_clusters(&self) -> usize {
        self.last_k
    }
}

impl Operator for ClusteringOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn units(&self) -> &[Unit] {
        &self.units
    }

    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
        if i == 0 {
            self.recluster(ctx);
        }
        let label = self.labels.get(i).copied().unwrap_or(i64::MIN);
        if label == i64::MIN {
            return Ok(Vec::new()); // node had no data this window
        }
        let unit = &self.units[i];
        Ok(unit
            .outputs
            .iter()
            .map(|o| (o.clone(), SensorReading::new(label, ctx.now)))
            .collect())
    }

    fn operator_outputs(&mut self, ctx: &ComputeContext<'_>) -> Vec<Output> {
        if self.last_k == 0 {
            return Vec::new();
        }
        let topic = match Topic::parse(&format!("/analytics/{}/num-clusters", self.name)) {
            Ok(t) => t,
            Err(_) => return Vec::new(),
        };
        vec![(topic, SensorReading::new(self.last_k as i64, ctx.now))]
    }
}

/// The plugin factory.
pub struct ClusteringPlugin;

impl OperatorPlugin for ClusteringPlugin {
    fn kind(&self) -> &str {
        "clustering"
    }

    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>> {
        let window_ns = config.options.u64_or("window_ms", 60_000) * NS_PER_MS;
        let bgmm = BgmmConfig {
            max_components: config.options.u64_or("max_components", 8) as usize,
            outlier_pdf_threshold: config.options.f64_or("outlier_threshold", 1e-3),
            seed: config.options.u64_or("seed", 0xDCDB),
            ..BgmmConfig::default()
        };
        let rates = config
            .options
            .str_list("rates")
            .unwrap_or_else(|_| vec!["cpu-idle".to_string()]);
        let fixed_point = config
            .options
            .str_list("fixed_point")
            .unwrap_or_else(|_| vec!["temp".to_string()]);
        let resolution = config.resolve(nav)?;
        // The model is shared: always one operator over all units (the
        // paper's clustering case study runs sequentially by design).
        let units = resolution.units;
        if units.is_empty() {
            return Err(dcdb_common::DcdbError::Config(format!(
                "plugin {:?}: no units could be resolved",
                config.name
            )));
        }
        let labels = vec![i64::MIN; units.len()];
        Ok(vec![Box::new(ClusteringOperator {
            name: config.name.clone(),
            units,
            window_ns,
            bgmm,
            rates,
            fixed_point,
            labels,
            last_k: 0,
        })])
    }
}

/// The standard clustering configuration of the paper's case study:
/// one unit per compute node over (power, temp, cpu-idle).
pub fn node_clustering_config(name: &str, interval_ms: u64) -> PluginConfig {
    PluginConfig::online(name, "clustering", interval_ms).with_patterns(
        &["<bottomup>power", "<bottomup>temp", "<bottomup>cpu-idle"],
        &["<bottomup>cluster-label"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::reading::encode_f64;
    use dcdb_common::Timestamp;
    use std::sync::Arc;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// Three groups of nodes with distinct (power, temp, idle-rate)
    /// signatures plus one anomalous node.
    fn engine() -> Arc<QueryEngine> {
        let qe = Arc::new(QueryEngine::new(256));
        // (base power, base temp, idle ms per s)
        let groups: [(i64, f64, i64); 3] = [(60, 41.0, 950), (150, 46.0, 400), (220, 50.0, 50)];
        let mut node = 0;
        for (g, &(p, temp, idle_rate)) in groups.iter().enumerate() {
            for k in 0..8 {
                let base = t(&format!("/r0/n{node:02}"));
                let mut idle = 0i64;
                for sec in 1..=60u64 {
                    let jitter = ((sec * 7 + k * 13 + g as u64) % 5) as i64 - 2;
                    qe.insert(
                        &base.child("power").unwrap(),
                        SensorReading::new(p + jitter, Timestamp::from_secs(sec)),
                    );
                    qe.insert(
                        &base.child("temp").unwrap(),
                        SensorReading::new(
                            encode_f64(temp + jitter as f64 * 0.1),
                            Timestamp::from_secs(sec),
                        ),
                    );
                    idle += idle_rate + jitter;
                    qe.insert(
                        &base.child("cpu-idle").unwrap(),
                        SensorReading::new(idle, Timestamp::from_secs(sec)),
                    );
                }
                node += 1;
            }
        }
        // Anomalous node: very high power at high idle rate.
        let base = t("/r0/n99");
        let mut idle = 0i64;
        for sec in 1..=60u64 {
            qe.insert(
                &base.child("power").unwrap(),
                SensorReading::new(230, Timestamp::from_secs(sec)),
            );
            qe.insert(
                &base.child("temp").unwrap(),
                SensorReading::new(encode_f64(51.0), Timestamp::from_secs(sec)),
            );
            idle += 900;
            qe.insert(
                &base.child("cpu-idle").unwrap(),
                SensorReading::new(idle, Timestamp::from_secs(sec)),
            );
        }
        qe.rebuild_navigator();
        qe
    }

    fn manager() -> Arc<OperatorManager> {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(ClusteringPlugin));
        mgr.load(node_clustering_config("bgmm", 1000).with_option("window_ms", 60_000u64))
            .unwrap();
        mgr
    }

    fn label_of(mgr: &OperatorManager, node: &str) -> i64 {
        mgr.query_engine()
            .query(&t(&format!("{node}/cluster-label")), QueryMode::Latest)
            .first()
            .map(|r| r.value)
            .unwrap_or(i64::MIN)
    }

    #[test]
    fn groups_get_distinct_labels_and_anomaly_is_outlier() {
        let mgr = manager();
        let report = mgr.tick(Timestamp::from_secs(61));
        assert!(report.errors.is_empty(), "{:?}", report.errors);

        // Every group is internally consistent.
        let mut group_labels = Vec::new();
        for g in 0..3 {
            let first = label_of(&mgr, &format!("/r0/n{:02}", g * 8));
            assert!(first >= 0, "group {g} labelled {first}");
            for k in 0..8 {
                let l = label_of(&mgr, &format!("/r0/n{:02}", g * 8 + k));
                assert_eq!(l, first, "node {} of group {g}", g * 8 + k);
            }
            group_labels.push(first);
        }
        // Groups are mutually distinct.
        group_labels.sort();
        group_labels.dedup();
        assert_eq!(group_labels.len(), 3, "groups merged: {group_labels:?}");
        // The anomalous node is an outlier (-1).
        assert_eq!(label_of(&mgr, "/r0/n99"), -1);
    }

    #[test]
    fn num_clusters_operator_output() {
        let mgr = manager();
        mgr.tick(Timestamp::from_secs(61));
        let k = mgr
            .query_engine()
            .query(&t("/analytics/bgmm/num-clusters"), QueryMode::Latest);
        assert_eq!(k[0].value, 3);
    }

    #[test]
    fn cold_start_produces_no_labels() {
        let qe = Arc::new(QueryEngine::new(16));
        // Sensors known but with single readings (rates undefined).
        for n in 0..4 {
            let base = t(&format!("/r0/n{n}"));
            qe.insert(
                &base.child("power").unwrap(),
                SensorReading::new(100, Timestamp::from_secs(1)),
            );
            qe.insert(
                &base.child("temp").unwrap(),
                SensorReading::new(encode_f64(40.0), Timestamp::from_secs(1)),
            );
            qe.insert(
                &base.child("cpu-idle").unwrap(),
                SensorReading::new(10, Timestamp::from_secs(1)),
            );
        }
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(ClusteringPlugin));
        mgr.load(node_clustering_config("bgmm", 1000)).unwrap();
        let report = mgr.tick(Timestamp::from_secs(2));
        assert!(report.errors.is_empty());
        assert_eq!(report.outputs_published, 0);
    }

    #[test]
    fn on_demand_unit_query_returns_label() {
        let mgr = manager();
        mgr.tick(Timestamp::from_secs(61));
        // On-demand: recluster (unit 0) — other units return their
        // cached label without reclustering.
        let out = mgr
            .on_demand("bgmm", &t("/r0/n00"), Timestamp::from_secs(62))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].1.value >= 0);
    }
}
