//! Storage-fault benchmark: the durable engine through injected I/O
//! faults.
//!
//! Not a figure of the paper — DCDB delegates storage fault handling to
//! Cassandra (paper §IV-A) — but the property the embedded engine is
//! judged by when the disk misbehaves: a simulated (virtual-time) run
//! drives acknowledged inserts through a seeded [`FaultIo`] window of
//! ENOSPC / EIO / fsync-failure / torn-write faults and measures, per
//! fault class:
//!
//! * **state machine** — when the engine demoted to Degraded /
//!   ReadOnly, and how long after the fault window lifted until it was
//!   Healthy again (recovery time);
//! * **time in state** — virtual milliseconds spent Healthy / Degraded /
//!   ReadOnly;
//! * **accounting** — the conservation identity
//!   `ingested == durable + buffered + shed` over the whole run;
//! * **durability** — the process "crashes" (the engine is leaked so
//!   its final fsync never runs), the directory is reopened on the real
//!   filesystem, and every reading that was *acknowledged durable* must
//!   be recovered: `lost_acked` is required to be zero.
//!
//! Everything is clocked on virtual time with fixed seeds, so runs are
//! bit-for-bit reproducible. Results land in
//! `bench-results/storage_faults.json`.

use dcdb_common::reading::SensorReading;
use dcdb_common::sim::derive_seed;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_storage::{
    DurableBackend, DurableConfig, FaultConfig, FaultIo, FsyncPolicy, HealthConfig, HealthState,
    InsertAck, StorageIo,
};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

/// One fault class under test.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Short name used in the report ("enospc", "eio", ...).
    pub name: String,
    /// Write/create budget in bytes before `ENOSPC`, while the window
    /// is active.
    pub enospc_after_bytes: Option<u64>,
    /// Per-op `EIO` probability inside the window.
    pub eio_prob: f64,
    /// Per-fsync failure probability inside the window.
    pub fsync_fail_prob: f64,
    /// Per-write torn-write probability inside the window.
    pub torn_write_prob: f64,
}

/// Workload shape.
#[derive(Debug, Clone)]
pub struct StorageFaultsConfig {
    /// Simulated run length, seconds.
    pub duration_s: u64,
    /// Virtual tick / insert interval, milliseconds.
    pub interval_ms: u64,
    /// Distinct sensor topics, one acked batch each per tick.
    pub topics: usize,
    /// Readings per topic per tick.
    pub batch: usize,
    /// The fault window, `(from_ms, until_ms)` into the run.
    pub fault_window_ms: (u64, u64),
    /// Fault RNG seed (each scenario derives its own from it).
    pub seed: u64,
    /// Memtable seal threshold, readings.
    pub memtable_max_readings: usize,
    /// The fault grid.
    pub scenarios: Vec<FaultScenario>,
}

fn scenario_grid() -> Vec<FaultScenario> {
    let quiet = FaultScenario {
        name: String::new(),
        enospc_after_bytes: None,
        eio_prob: 0.0,
        fsync_fail_prob: 0.0,
        torn_write_prob: 0.0,
    };
    vec![
        FaultScenario {
            name: "enospc".into(),
            enospc_after_bytes: Some(4 * 1024),
            ..quiet.clone()
        },
        FaultScenario {
            name: "eio".into(),
            eio_prob: 0.6,
            ..quiet.clone()
        },
        FaultScenario {
            name: "fsync".into(),
            fsync_fail_prob: 0.6,
            ..quiet.clone()
        },
        FaultScenario {
            name: "torn".into(),
            torn_write_prob: 0.6,
            ..quiet
        },
    ]
}

impl StorageFaultsConfig {
    /// Full run: 30 s simulated, faults active from 5 s to 15 s.
    pub fn paper() -> StorageFaultsConfig {
        StorageFaultsConfig {
            duration_s: 30,
            interval_ms: 250,
            topics: 8,
            batch: 4,
            fault_window_ms: (5_000, 15_000),
            seed: 0x5707_FA17,
            memtable_max_readings: 2_000,
            scenarios: scenario_grid(),
        }
    }

    /// Smoke run for CI: same grid, shorter horizon.
    pub fn quick() -> StorageFaultsConfig {
        StorageFaultsConfig {
            duration_s: 12,
            fault_window_ms: (2_000, 6_000),
            topics: 4,
            ..StorageFaultsConfig::paper()
        }
    }
}

/// One scenario's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct StorageFaultCell {
    /// Fault class name.
    pub scenario: String,
    /// Seed the scenario's injector ran with.
    pub seed: u64,
    /// Readings offered to the engine.
    pub ingested: u64,
    /// Readings acknowledged durable at insert time.
    pub acked_durable: u64,
    /// Readings acknowledged memtable-only (`InsertAck::Buffered`).
    pub acked_buffered: u64,
    /// Insert calls refused outright (readings shed).
    pub shed: u64,
    /// Injected faults: ENOSPC / EIO / fsync / torn-write counts.
    pub injected_enospc: u64,
    /// Injected EIO failures.
    pub injected_eio: u64,
    /// Injected fsync failures.
    pub injected_fsync_failures: u64,
    /// Injected torn writes.
    pub injected_torn_writes: u64,
    /// Engine-side error counters at the end of the run.
    pub write_errors: u64,
    /// Append retries performed.
    pub write_retries: u64,
    /// WAL writers poisoned by failed fsyncs.
    pub fsync_poisonings: u64,
    /// WAL rotations (poison recovery + probes).
    pub wal_rotations: u64,
    /// ReadOnly probes attempted.
    pub probes: u64,
    /// Milliseconds into the run when Degraded was first observed.
    pub degraded_at_ms: Option<u64>,
    /// Milliseconds into the run when ReadOnly was first observed.
    pub readonly_at_ms: Option<u64>,
    /// Milliseconds from the fault window lifting until the engine was
    /// observed Healthy again (`None` if it never demoted — nothing to
    /// recover from — or never healed, which the tests reject).
    pub recovery_ms: Option<u64>,
    /// Virtual time spent Healthy, milliseconds.
    pub time_healthy_ms: u64,
    /// Virtual time spent Degraded, milliseconds.
    pub time_degraded_ms: u64,
    /// Virtual time spent ReadOnly, milliseconds.
    pub time_readonly_ms: u64,
    /// The conservation identity `ingested == durable + buffered +
    /// shed` held at the end of the run.
    pub conserved: bool,
    /// Final health state.
    pub final_state: String,
    /// Readings visible after the crash + reopen on the real
    /// filesystem.
    pub reopen_readings: usize,
    /// Torn WAL tails the reopen had to discard.
    pub reopen_torn_tails: usize,
    /// Corrupt files the reopen quarantined.
    pub reopen_quarantined: usize,
    /// Acknowledged-durable readings missing after the reopen. The
    /// engine's journal-before-ack contract makes this **zero** by
    /// definition; anything else is a bug.
    pub lost_acked: u64,
}

/// Full result grid.
#[derive(Debug, Clone, Serialize)]
pub struct StorageFaultsResult {
    /// Simulated run length, seconds.
    pub duration_s: u64,
    /// Virtual tick, milliseconds.
    pub interval_ms: u64,
    /// Topics written per tick.
    pub topics: usize,
    /// Readings per topic per tick.
    pub batch: usize,
    /// Fault window, milliseconds into the run.
    pub fault_window_ms: (u64, u64),
    /// Base seed.
    pub seed: u64,
    /// One entry per fault class.
    pub cells: Vec<StorageFaultCell>,
}

fn topic_list(n: usize) -> Vec<Topic> {
    (0..n)
        .map(|i| Topic::parse(&format!("/bench/node{i:02}/power")).unwrap())
        .collect()
}

fn run_cell(
    config: &StorageFaultsConfig,
    scenario: &FaultScenario,
    index: usize,
    dir: &Path,
) -> StorageFaultCell {
    std::fs::remove_dir_all(dir).ok();
    let seed = derive_seed(config.seed, index as u64);
    let (from_ms, until_ms) = config.fault_window_ms;
    let fault_cfg = FaultConfig {
        enospc_after_bytes: scenario.enospc_after_bytes,
        eio_prob: scenario.eio_prob,
        fsync_fail_prob: scenario.fsync_fail_prob,
        torn_write_prob: scenario.torn_write_prob,
        ..FaultConfig::quiet(seed)
    }
    .with_window_ms(from_ms, until_ms);
    let io = Arc::new(FaultIo::std(fault_cfg));

    let durable_config = DurableConfig {
        fsync: FsyncPolicy::Always,
        memtable_max_readings: config.memtable_max_readings,
        health: HealthConfig {
            // Virtual-time run: retries must not sleep the wall clock,
            // and probes must come due within a few ticks.
            retry_backoff_base_ms: 0,
            readonly_after: 4,
            probe_base_ms: config.interval_ms,
            probe_cap_ms: config.interval_ms * 8,
            ..HealthConfig::default()
        },
        ..DurableConfig::default()
    };
    let db = DurableBackend::open_with(
        Arc::clone(&io) as Arc<dyn StorageIo>,
        dir,
        durable_config.clone(),
    )
    .expect("open fault bench dir");

    let topics = topic_list(config.topics);
    // Every reading acknowledged `Durable`, keyed by (topic, ts): the
    // set the post-crash reopen must fully recover.
    let mut acked: Vec<Vec<u64>> = vec![Vec::new(); topics.len()];
    let mut ingested = 0u64;
    let mut acked_durable = 0u64;
    let mut acked_buffered = 0u64;
    let mut shed = 0u64;
    let mut degraded_at_ms = None;
    let mut readonly_at_ms = None;
    let mut healed_at_ms = None;

    let total_ticks = config.duration_s * 1000 / config.interval_ms;
    for tick in 1..=total_ticks {
        let now_ms = tick * config.interval_ms;
        let now = Timestamp::from_millis(now_ms);
        io.advance(now);
        for (i, topic) in topics.iter().enumerate() {
            let batch: Vec<SensorReading> = (0..config.batch)
                .map(|j| {
                    let ts = now_ms * 1_000_000 + i as u64 * 1000 + j as u64;
                    SensorReading::new((tick * 100 + j as u64) as i64, Timestamp(ts))
                })
                .collect();
            ingested += batch.len() as u64;
            match db.insert_batch_acked(topic, &batch) {
                Ok(InsertAck::Durable) => {
                    acked_durable += batch.len() as u64;
                    acked[i].extend(batch.iter().map(|r| r.ts.as_nanos()));
                }
                Ok(InsertAck::Buffered) => acked_buffered += batch.len() as u64,
                Err(_) => shed += batch.len() as u64,
            }
        }
        let _ = db.maintain(now);
        let state = db.health_report().state;
        if state != HealthState::Healthy && degraded_at_ms.is_none() {
            degraded_at_ms = Some(now_ms);
        }
        if state == HealthState::ReadOnly && readonly_at_ms.is_none() {
            readonly_at_ms = Some(now_ms);
        }
        if now_ms > until_ms && healed_at_ms.is_none() && state == HealthState::Healthy {
            healed_at_ms = Some(now_ms);
        }
    }

    let report = db.health_report();
    let stats = io.stats();
    let cell_base = StorageFaultCell {
        scenario: scenario.name.clone(),
        seed,
        ingested,
        acked_durable,
        acked_buffered,
        shed,
        injected_enospc: stats.injected_enospc,
        injected_eio: stats.injected_eio,
        injected_fsync_failures: stats.injected_fsync_failures,
        injected_torn_writes: stats.injected_torn_writes,
        write_errors: report.write_errors,
        write_retries: report.write_retries,
        fsync_poisonings: report.fsync_poisonings,
        wal_rotations: report.wal_rotations,
        probes: report.probes,
        degraded_at_ms,
        readonly_at_ms,
        recovery_ms: match (degraded_at_ms, healed_at_ms) {
            (Some(_), Some(healed)) => Some(healed.saturating_sub(until_ms)),
            _ => None,
        },
        time_healthy_ms: report.healthy_ns / 1_000_000,
        time_degraded_ms: report.degraded_ns / 1_000_000,
        time_readonly_ms: report.readonly_ns / 1_000_000,
        conserved: report.conserved(),
        final_state: report.state.as_str().to_string(),
        reopen_readings: 0,
        reopen_torn_tails: 0,
        reopen_quarantined: 0,
        lost_acked: 0,
    };

    // "Crash": leak the engine so its final flush/fsync never runs,
    // then reopen the directory on the real filesystem and check that
    // every acknowledged-durable reading survived.
    std::mem::forget(db);
    let reopened = DurableBackend::open(dir, durable_config).expect("reopen after simulated crash");
    let rec = reopened.recovery();
    let mut lost_acked = 0u64;
    let mut reopen_readings = 0usize;
    for (i, topic) in topics.iter().enumerate() {
        let got = reopened.query(topic, Timestamp::ZERO, Timestamp::MAX);
        reopen_readings += got.len();
        let have: std::collections::HashSet<u64> = got.iter().map(|r| r.ts.as_nanos()).collect();
        lost_acked += acked[i].iter().filter(|ts| !have.contains(ts)).count() as u64;
    }
    drop(reopened);
    std::fs::remove_dir_all(dir).ok();

    StorageFaultCell {
        reopen_readings,
        reopen_torn_tails: rec.torn_tails,
        reopen_quarantined: rec.quarantined,
        lost_acked,
        ..cell_base
    }
}

/// Runs the full fault grid.
pub fn run(config: &StorageFaultsConfig, dir: &Path) -> StorageFaultsResult {
    let cells = config
        .scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| run_cell(config, s, i, dir))
        .collect();
    StorageFaultsResult {
        duration_s: config.duration_s,
        interval_ms: config.interval_ms,
        topics: config.topics,
        batch: config.batch,
        fault_window_ms: config.fault_window_ms,
        seed: config.seed,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Capped CI run (virtual time, so wall-clock cheap): every fault
    /// class demotes the engine, the engine heals once the window
    /// lifts, accounting is exact, and no acknowledged-durable reading
    /// is lost across the simulated crash.
    #[test]
    fn fault_grid_invariants_hold_on_quick_run() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("oda-bench-storage-faults-{}", std::process::id()));
        let config = StorageFaultsConfig::quick();
        let result = run(&config, &dir);
        assert_eq!(result.cells.len(), 4);
        for cell in &result.cells {
            assert!(
                cell.conserved,
                "{}: accounting leak: {cell:?}",
                cell.scenario
            );
            assert_eq!(
                cell.lost_acked, 0,
                "{}: acked-durable readings lost: {cell:?}",
                cell.scenario
            );
            assert!(
                cell.degraded_at_ms.is_some(),
                "{}: the fault window must demote the engine: {cell:?}",
                cell.scenario
            );
            assert_eq!(
                cell.final_state, "healthy",
                "{}: the engine must heal after the window: {cell:?}",
                cell.scenario
            );
            assert!(
                cell.recovery_ms.is_some(),
                "{}: recovery time must be measured: {cell:?}",
                cell.scenario
            );
            assert!(
                cell.write_errors > 0,
                "{}: faults must surface as write errors: {cell:?}",
                cell.scenario
            );
            assert!(
                cell.time_healthy_ms > 0,
                "{}: time-in-state accounting ran: {cell:?}",
                cell.scenario
            );
        }
    }

    /// Identical seeds replay identical fault sequences and counters.
    #[test]
    fn runs_are_deterministic() {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "oda-bench-storage-faults-det-{}",
            std::process::id()
        ));
        let config = StorageFaultsConfig {
            duration_s: 6,
            fault_window_ms: (1_000, 3_000),
            topics: 2,
            scenarios: scenario_grid().into_iter().take(2).collect(),
            ..StorageFaultsConfig::quick()
        };
        let a = run(&config, &dir);
        let b = run(&config, &dir);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.injected_enospc, cb.injected_enospc);
            assert_eq!(ca.injected_eio, cb.injected_eio);
            assert_eq!(ca.injected_fsync_failures, cb.injected_fsync_failures);
            assert_eq!(ca.injected_torn_writes, cb.injected_torn_writes);
            assert_eq!(ca.acked_durable, cb.acked_durable);
            assert_eq!(ca.shed, cb.shed);
            assert_eq!(ca.write_errors, cb.write_errors);
        }
    }
}
