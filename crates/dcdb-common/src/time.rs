//! Timestamp primitives shared by all DCDB components.
//!
//! DCDB identifies every sensor reading by a nanosecond-resolution
//! timestamp. Monitored components may produce data at wildly different
//! rates (sub-second performance counters vs. minute-scale facility data),
//! so a single fixed-point representation with nanosecond resolution is
//! used everywhere: [`Timestamp`] is a number of nanoseconds since the
//! UNIX epoch.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Nanoseconds in one second.
pub const NS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds in one millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds in one microsecond.
pub const NS_PER_US: u64 = 1_000;

/// A point in time, in nanoseconds since the UNIX epoch.
///
/// `Timestamp` is `Copy`, totally ordered and cheap to compare; it is the
/// sort key of every sensor cache and storage partition in the system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (UNIX epoch).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Current wall-clock time.
    pub fn now() -> Self {
        let d = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO);
        Timestamp(d.as_nanos() as u64)
    }

    /// Builds a timestamp from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * NS_PER_SEC)
    }

    /// Builds a timestamp from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * NS_PER_MS)
    }

    /// Builds a timestamp from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us * NS_PER_US)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NS_PER_SEC
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NS_PER_MS
    }

    /// Saturating subtraction of a duration in nanoseconds.
    pub const fn saturating_sub_ns(self, ns: u64) -> Self {
        Timestamp(self.0.saturating_sub(ns))
    }

    /// Saturating addition of a duration in nanoseconds.
    pub const fn saturating_add_ns(self, ns: u64) -> Self {
        Timestamp(self.0.saturating_add(ns))
    }

    /// Nanoseconds elapsed from `earlier` to `self`; zero if `earlier` is
    /// in the future.
    pub const fn elapsed_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, ns: u64) -> Timestamp {
        Timestamp(self.0 + ns)
    }
}

impl AddAssign<u64> for Timestamp {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / NS_PER_SEC;
        let frac = self.0 % NS_PER_SEC;
        write!(f, "{secs}.{frac:09}")
    }
}

/// A monotonically increasing virtual clock for simulation and testing.
///
/// The production Pusher and Collect Agent sample on wall-clock time; the
/// simulator and tests instead advance a `VirtualClock` deterministically
/// so every experiment is reproducible. Components accept any
/// `Fn() -> Timestamp` time source, so both interoperate.
#[derive(Debug)]
pub struct VirtualClock {
    now: std::sync::atomic::AtomicU64,
}

impl VirtualClock {
    /// Creates a clock starting at `start`.
    pub fn new(start: Timestamp) -> Self {
        VirtualClock {
            now: std::sync::atomic::AtomicU64::new(start.0),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(std::sync::atomic::Ordering::Acquire))
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    pub fn advance(&self, ns: u64) -> Timestamp {
        let new = self.now.fetch_add(ns, std::sync::atomic::Ordering::AcqRel) + ns;
        Timestamp(new)
    }

    /// Sets the clock to an absolute time. Panics if time would go
    /// backwards, which would violate the monotonicity every cache
    /// assumes.
    pub fn set(&self, t: Timestamp) {
        let prev = self.now.swap(t.0, std::sync::atomic::Ordering::AcqRel);
        assert!(
            prev <= t.0,
            "VirtualClock moved backwards: {prev} -> {}",
            t.0
        );
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new(Timestamp::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = Timestamp::from_secs(12);
        assert_eq!(t.as_secs(), 12);
        assert_eq!(t.as_millis(), 12_000);
        assert_eq!(t.as_nanos(), 12 * NS_PER_SEC);
        assert_eq!(Timestamp::from_millis(1500).as_secs(), 1);
        assert_eq!(Timestamp::from_micros(2_000_000).as_secs(), 2);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = Timestamp::from_secs(1);
        assert_eq!(t.saturating_sub_ns(2 * NS_PER_SEC), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.saturating_add_ns(1), Timestamp::MAX);
        assert_eq!(t - Timestamp::from_secs(2), 0);
        assert_eq!(Timestamp::from_secs(2) - t, NS_PER_SEC);
    }

    #[test]
    fn elapsed_since_is_directional() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(13);
        assert_eq!(b.elapsed_since(a), 3 * NS_PER_SEC);
        assert_eq!(a.elapsed_since(b), 0);
    }

    #[test]
    fn now_is_monotonic_enough() {
        let a = Timestamp::now();
        let b = Timestamp::now();
        assert!(b >= a);
        assert!(a.as_secs() > 1_600_000_000, "now() should be after 2020");
    }

    #[test]
    fn display_formats_fraction() {
        let t = Timestamp(1_500_000_000);
        assert_eq!(t.to_string(), "1.500000000");
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new(Timestamp::from_secs(5));
        assert_eq!(c.now(), Timestamp::from_secs(5));
        let t = c.advance(NS_PER_SEC);
        assert_eq!(t, Timestamp::from_secs(6));
        assert_eq!(c.now(), Timestamp::from_secs(6));
        c.set(Timestamp::from_secs(10));
        assert_eq!(c.now(), Timestamp::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_time_travel() {
        let c = VirtualClock::new(Timestamp::from_secs(5));
        c.set(Timestamp::from_secs(4));
    }
}
