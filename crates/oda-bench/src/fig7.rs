//! Figure 7 — per-job CPI decile analysis (paper §VI-C).
//!
//! The full two-stage pipeline across components: perfmetrics operators
//! in every node's Pusher derive per-core CPI from counters and publish
//! it over the bus; a persyst operator in the Collect Agent instantiates
//! one unit per running job and publishes the deciles of each job's
//! per-core CPI distribution each second. The figure plots deciles
//! {0, 2, 5, 8, 10} over time for jobs running Kripke, AMG, Nekbone and
//! LAMMPS, whose distinct signatures (tight/low for LAMMPS, spiky upper
//! tail for AMG, sawtooth for Kripke, late spread blow-up for Nekbone)
//! must reproduce.

use dcdb_bus::Broker;
use dcdb_collectagent::{CollectAgent, CollectAgentConfig, SimJobSource};
use dcdb_common::time::{Timestamp, NS_PER_SEC};
use dcdb_common::topic::Topic;
use dcdb_pusher::{Pusher, PusherConfig, SimMonitoringPlugin};
use dcdb_storage::StorageBackend;
use parking_lot::Mutex;
use serde::Serialize;
use sim_cluster::{AppModel, ClusterConfig, ClusterSimulator, Topology};
use std::sync::Arc;
use wintermute::manager::BusSink;
use wintermute::prelude::*;
use wintermute_plugins::perfmetrics::cpi_config;
use wintermute_plugins::persyst::decode_decile;
use wintermute_plugins::{PerfMetricsPlugin, PersystPlugin};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Nodes per job (paper: 32).
    pub nodes_per_job: usize,
    /// Cores per node (paper: 64 → 2048 samples per decile).
    pub cores_per_node: usize,
    /// Sampling / computation interval, seconds (paper: 1 s).
    pub interval_s: u64,
    /// Run duration per application, seconds (paper: the app's full
    /// runtime; `None` = the model's nominal duration).
    pub duration_s: Option<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl Fig7Config {
    /// Paper-scale configuration (2048 cores per job).
    pub fn paper() -> Fig7Config {
        Fig7Config {
            nodes_per_job: 32,
            cores_per_node: 64,
            interval_s: 1,
            duration_s: None,
            seed: 0xF17,
        }
    }

    /// Scaled-down default preserving the distribution shapes.
    pub fn quick() -> Fig7Config {
        Fig7Config {
            nodes_per_job: 4,
            cores_per_node: 16,
            interval_s: 2,
            duration_s: None, // full nominal runtimes (Nekbone's late
            // memory-limited phase needs them)
            seed: 0xF17,
        }
    }
}

/// One time point of the decile series.
#[derive(Debug, Clone, Serialize)]
pub struct DecilePoint {
    /// Seconds since job start.
    pub t_s: f64,
    /// Deciles 0, 2, 5, 8, 10 of the per-core CPI distribution.
    pub d0: f64,
    /// 2nd decile.
    pub d2: f64,
    /// Median.
    pub d5: f64,
    /// 8th decile.
    pub d8: f64,
    /// Maximum.
    pub d10: f64,
}

/// Result for one application.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// Application name.
    pub app: String,
    /// Decile series over the job's runtime.
    pub series: Vec<DecilePoint>,
    /// Samples aggregated per decile point (cores in the job).
    pub samples_per_point: usize,
}

/// Runs the pipeline for one application and returns its decile series.
pub fn run_app(config: &Fig7Config, app: AppModel) -> Fig7Result {
    let topology = Topology::new(1, config.nodes_per_job, config.cores_per_node);
    let total_nodes = topology.total_nodes;
    let sim = Arc::new(Mutex::new(ClusterSimulator::new(ClusterConfig {
        topology,
        seed: config.seed,
        auto_workload: false,
    })));

    let duration_s = config.duration_s.unwrap_or(app.nominal_duration_s() as u64);
    let job_start = Timestamp::from_secs(2);
    let job_end = job_start.saturating_add_ns(duration_s * NS_PER_SEC);
    sim.lock()
        .submit_job("fig7", app, (0..total_nodes).collect(), job_start, job_end);

    let broker = Broker::new_sync();

    // One Pusher per node, each with a perfmetrics CPI operator whose
    // outputs are forwarded onto the bus (pipeline stage 1).
    let mut pushers = Vec::with_capacity(total_nodes);
    for node in 0..total_nodes {
        let mut pusher = Pusher::new(
            PusherConfig {
                sampling_interval_ms: config.interval_s * 1000,
                cache_secs: 60,
                publish: true,
                ..PusherConfig::default()
            },
            Some(broker.handle()),
        );
        pusher.add_monitoring_plugin(Box::new(SimMonitoringPlugin::new(Arc::clone(&sim), node)));
        pusher.refresh_sensor_tree();
        pusher
            .manager()
            .register_plugin(Box::new(PerfMetricsPlugin));
        pusher
            .manager()
            .add_sink(Arc::new(BusSink::new(broker.handle())));
        pusher
            .manager()
            .load(
                cpi_config("cpi", config.interval_s * 1000)
                    .with_option("window_ms", config.interval_s * 3000),
            )
            .expect("perfmetrics loads");
        pushers.push(pusher);
    }

    // Collect Agent with the persyst job operator (pipeline stage 2).
    let storage = Arc::new(StorageBackend::new());
    let agent =
        CollectAgent::new(CollectAgentConfig::default(), &broker.handle(), storage).expect("agent");
    let job_source: Arc<dyn JobDataSource> = Arc::new(SimJobSource::new(Arc::clone(&sim)));
    agent
        .manager()
        .register_plugin(Box::new(PersystPlugin::new(job_source)));
    agent
        .manager()
        .load(
            PluginConfig::online("persyst", "persyst", config.interval_s * 1000)
                .with_option("window_ms", config.interval_s * 3000),
        )
        .expect("persyst loads");

    // Drive the whole system on the virtual clock.
    let mut now = Timestamp::from_secs(1);
    let end = job_end.saturating_add_ns(2 * NS_PER_SEC);
    while now < end {
        for pusher in &pushers {
            pusher.tick(now).expect("pusher tick");
        }
        agent.tick(now);
        now = now.saturating_add_ns(config.interval_s * NS_PER_SEC);
    }

    // Extract the decile series for the job (id 0).
    let fetch = |name: &str| -> Vec<(Timestamp, f64)> {
        agent
            .query_engine()
            .query(
                &Topic::parse(&format!("/job/0/{name}")).unwrap(),
                QueryMode::Absolute {
                    t0: Timestamp::ZERO,
                    t1: Timestamp::MAX,
                },
            )
            .iter()
            .map(|r| (r.ts, decode_decile(r)))
            .collect()
    };
    let d0 = fetch("d0");
    let d2 = fetch("d2");
    let d5 = fetch("d5");
    let d8 = fetch("d8");
    let d10 = fetch("d10");

    let series = d0
        .iter()
        .zip(&d2)
        .zip(&d5)
        .zip(&d8)
        .zip(&d10)
        .map(
            |(((((ts, v0), (_, v2)), (_, v5)), (_, v8)), (_, v10))| DecilePoint {
                t_s: ts.elapsed_since(job_start) as f64 / 1e9,
                d0: *v0,
                d2: *v2,
                d5: *v5,
                d8: *v8,
                d10: *v10,
            },
        )
        .collect();

    Fig7Result {
        app: app.name().to_string(),
        series,
        samples_per_point: total_nodes * config.cores_per_node,
    }
}

/// Runs all four CORAL-2 applications (the paper's Figure 7).
pub fn run_all(config: &Fig7Config) -> Vec<Fig7Result> {
    AppModel::coral2()
        .into_iter()
        .map(|app| run_app(config, app))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig7Config {
        Fig7Config {
            nodes_per_job: 2,
            cores_per_node: 8,
            interval_s: 2,
            duration_s: Some(60),
            seed: 5,
        }
    }

    #[test]
    fn lammps_series_is_low_and_tight() {
        let result = run_app(&tiny(), AppModel::Lammps);
        assert!(result.series.len() >= 20, "{} points", result.series.len());
        let med: Vec<f64> = result.series.iter().map(|p| p.d5).collect();
        let avg = oda_ml::stats::mean(&med);
        assert!((1.2..2.2).contains(&avg), "LAMMPS median CPI {avg}");
        // Spread stays small.
        let spreads: Vec<f64> = result.series.iter().map(|p| p.d10 - p.d0).collect();
        assert!(oda_ml::stats::mean(&spreads) < 2.0);
    }

    #[test]
    fn amg_has_tail_spikes() {
        let result = run_app(&tiny(), AppModel::Amg);
        let max_d10 = result.series.iter().map(|p| p.d10).fold(0.0, f64::max);
        let avg_d5 = oda_ml::stats::mean(&result.series.iter().map(|p| p.d5).collect::<Vec<_>>());
        assert!(avg_d5 < 5.0, "AMG median {avg_d5}");
        assert!(max_d10 > 10.0, "AMG tail {max_d10}");
    }

    #[test]
    fn deciles_are_ordered() {
        let result = run_app(&tiny(), AppModel::Kripke);
        for p in &result.series {
            assert!(
                p.d0 <= p.d2 && p.d2 <= p.d5 && p.d5 <= p.d8 && p.d8 <= p.d10,
                "unordered deciles at t={}",
                p.t_s
            );
        }
    }
}
