//! # wintermute — online and holistic operational data analytics
//!
//! A from-scratch Rust implementation of the Wintermute ODA framework
//! (Netti et al., *DCDB Wintermute: Enabling Online and Holistic
//! Operational Data Analytics on HPC Systems*, HPDC 2020). Wintermute
//! is a plugin-based analytics layer embedded in the DCDB monitoring
//! components (Pushers and Collect Agents) that turns raw monitoring
//! data into actionable knowledge — regression, aggregation, clustering
//! — at any level of an HPC system, online or on demand.
//!
//! The crate mirrors the paper's architecture (Fig. 4):
//!
//! * [`tree`] — the **sensor tree** abstraction over MQTT-style topics
//!   (§III-A) with level-indexed navigation;
//! * [`unit`] — the **Unit System**: pattern expressions, pattern units
//!   and their resolution into concrete units (§III-B/C, §V-C.2);
//! * [`query`] — the **Query Engine**: cache-first sensor access with
//!   relative (O(1)) and absolute (O(log N)) query modes (§V-B);
//! * [`operator`] — the **operator** abstraction: online/on-demand
//!   modes, sequential/parallel unit management, operator-level outputs
//!   (§IV-B, §V-C.1);
//! * [`plugin`] — plugin configurators and configuration files (§V-C.2);
//! * [`job`] — **job operators** with dynamic per-job units (§VI-C);
//! * [`manager`] — the **Operator Manager**: lifecycle, scheduling,
//!   sinks and the RESTful management API (§V-A).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use wintermute::prelude::*;
//! use dcdb_common::{SensorReading, Timestamp, Topic};
//!
//! // A query engine holding one sensor.
//! let qe = Arc::new(QueryEngine::new(64));
//! let power = Topic::parse("/node0/power").unwrap();
//! for s in 1..=10 {
//!     qe.insert(&power, SensorReading::new(100 + s as i64, Timestamp::from_secs(s)));
//! }
//! qe.rebuild_navigator();
//!
//! // The most recent reading, then an absolute range.
//! let latest = qe.query(&power, QueryMode::Latest);
//! assert_eq!(latest[0].value, 110);
//! let range = qe.query(&power, QueryMode::Absolute {
//!     t0: Timestamp::from_secs(3),
//!     t1: Timestamp::from_secs(5),
//! });
//! assert_eq!(range.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod job;
pub mod manager;
pub mod operator;
pub mod plugin;
pub mod query;
pub mod tree;
pub mod unit;

/// The commonly-used API surface in one import.
pub mod prelude {
    pub use crate::job::{JobDataSource, JobInfo, JobUnitBuilder, StaticJobSource};
    pub use crate::manager::{
        BusSink, FaultPolicy, OperatorManager, OperatorMetricsSnapshot, OperatorTotals,
        PluginMetricsSnapshot, SensorSink, TickReport,
    };
    pub use crate::operator::{
        compute_all_units, finite_output, ComputeContext, Operator, OperatorMode, Output, UnitMode,
    };
    pub use crate::plugin::{instantiate, OperatorPlugin, PluginConfig, WintermuteConfig};
    pub use crate::query::{AggFunc, AggPlan, AggSeries, QueryEngine, QueryMode, QueryStats};
    pub use crate::tree::{LevelSpec, SensorNavigator};
    pub use crate::unit::{resolve_units, PatternExpr, Resolution, Unit, UnitTemplate};
}

pub use prelude::*;
