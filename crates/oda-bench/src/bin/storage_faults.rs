//! Storage faults: the durable engine through injected I/O faults.
//!
//! ```text
//! cargo run --release -p oda-bench --bin storage_faults            # full run
//! cargo run --release -p oda-bench --bin storage_faults -- --quick # smoke run
//! ```

use oda_bench::storage_faults::{run, StorageFaultsConfig};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        StorageFaultsConfig::quick()
    } else {
        StorageFaultsConfig::paper()
    };

    println!(
        "storage fault bench: {} topics x {} readings, {} s simulated @ {} ms ticks, \
         fault window {:?} ms\n",
        config.topics, config.batch, config.duration_s, config.interval_ms, config.fault_window_ms
    );
    let mut dir = std::env::temp_dir();
    dir.push(format!("oda-bench-storage-faults-{}", std::process::id()));
    let started = std::time::Instant::now();
    let result = run(&config, &dir);

    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>8} {:>10} {:>11} {:>10} {:>10} {:>5} {:>5}",
        "fault",
        "ingested",
        "durable",
        "buffered",
        "shed",
        "errs",
        "rotations",
        "readonly@ms",
        "recovery_ms",
        "t_degr_ms",
        "t_ro_ms",
        "lost",
        "ok"
    );
    for c in &result.cells {
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>8} {:>10} {:>11} {:>10} {:>10} {:>5} {:>5}",
            c.scenario,
            c.ingested,
            c.acked_durable,
            c.acked_buffered,
            c.shed,
            c.write_errors,
            c.wal_rotations,
            c.readonly_at_ms.map_or("-".into(), |v| v.to_string()),
            c.recovery_ms.map_or("-".into(), |v| v.to_string()),
            c.time_degraded_ms,
            c.time_readonly_ms,
            c.lost_acked,
            if c.conserved && c.lost_acked == 0 {
                "yes"
            } else {
                "NO"
            }
        );
    }

    let meta = BenchMeta::new("storage_faults", Some(config.seed), &config, started);
    match write_json_report(&meta, &result) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write results: {e}"),
    }
}
