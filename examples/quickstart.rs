//! Quickstart: monitor a simulated node and aggregate its power.
//!
//! The smallest end-to-end Wintermute deployment: one Pusher samples a
//! simulated compute node every second, and an aggregator operator
//! publishes a 10-second moving average of the node's power — the
//! production-style metric aggregation Wintermute is deployed for on
//! CooLMUC-3 (paper §VII).
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use dcdb_common::time::{Timestamp, NS_PER_SEC};
use dcdb_common::topic::Topic;
use dcdb_pusher::{Pusher, PusherConfig, SimMonitoringPlugin};
use parking_lot::Mutex;
use sim_cluster::{AppModel, ClusterConfig, ClusterSimulator};
use std::sync::Arc;
use wintermute::prelude::*;
use wintermute_plugins::AggregatorPlugin;

fn main() {
    // --- A tiny simulated cluster with one busy node. ---
    let mut sim = ClusterSimulator::new(ClusterConfig::small_manual(42));
    sim.submit_job(
        "alice",
        AppModel::Lammps,
        vec![0],
        Timestamp::from_secs(5),
        Timestamp::from_secs(60),
    );
    let sim = Arc::new(Mutex::new(sim));

    // --- A Pusher sampling that node every second. ---
    let mut pusher = Pusher::new(
        PusherConfig {
            sampling_interval_ms: 1000,
            cache_secs: 180,
            publish: false,
            ..PusherConfig::default()
        },
        None,
    );
    pusher.add_monitoring_plugin(Box::new(SimMonitoringPlugin::new(sim, 0)));
    pusher.refresh_sensor_tree();

    // --- A Wintermute aggregator: 10 s moving average of power. ---
    pusher.manager().register_plugin(Box::new(AggregatorPlugin));
    pusher
        .manager()
        .load(
            PluginConfig::online("power-avg", "aggregator", 1000)
                .with_patterns(&["<bottomup-1>power"], &["<bottomup-1>power-avg"])
                .with_option("op", "mean")
                .with_option("window_ms", 10_000u64),
        )
        .expect("aggregator should load");

    // --- Drive 30 virtual seconds and print the pipeline's view. ---
    println!("{:>4} | {:>9} | {:>13}", "t[s]", "power[W]", "10s-avg[W]");
    println!("-----+-----------+--------------");
    let power = Topic::parse("/rack00/node00/power").unwrap();
    let avg = Topic::parse("/rack00/node00/power-avg").unwrap();
    let mut now = Timestamp::from_secs(1);
    for s in 1..=30u64 {
        pusher.tick(now).expect("tick");
        let p = pusher.query_engine().query(&power, QueryMode::Latest);
        let a = pusher.query_engine().query(&avg, QueryMode::Latest);
        println!(
            "{:>4} | {:>9} | {:>13}",
            s,
            p.first().map(|r| r.value.to_string()).unwrap_or_default(),
            a.first().map(|r| r.value.to_string()).unwrap_or_default(),
        );
        now = now.saturating_add_ns(NS_PER_SEC);
    }

    let stats = pusher.query_engine().stats();
    println!(
        "\nquery engine: {} inserts, {} cache hits, cache memory ≈ {} KiB",
        stats.inserts,
        stats.cache_hits,
        pusher.query_engine().cache_memory_bytes() / 1024
    );
}
