//! Variational Bayesian gaussian mixture model.
//!
//! The paper's third case study clusters compute nodes with a *Bayesian*
//! gaussian mixture because, unlike ordinary GMMs, it determines the
//! effective number of clusters autonomously (§VI-D, citing Roberts et
//! al.): components the data does not support collapse to near-zero
//! weight and are pruned. Points whose density under **every** surviving
//! component falls below a threshold (0.001 in the paper) are flagged as
//! outliers.
//!
//! The implementation follows Bishop, *Pattern Recognition and Machine
//! Learning*, §10.2: a Dirichlet prior over mixing weights and
//! Gauss–Wishart priors over component parameters, optimized with
//! coordinate-ascent variational inference.

use crate::gmm::{log_sum_exp, GaussianComponent};
use crate::kmeans::kmeans;
use crate::linalg::{Cholesky, SquareMatrix};
use crate::special::digamma;

/// Configuration for variational fitting.
#[derive(Debug, Clone)]
pub struct BgmmConfig {
    /// Upper bound on the number of components; the fit prunes unused
    /// ones (the paper's "determine the optimal number of clusters").
    pub max_components: usize,
    /// Dirichlet concentration α₀. Values ≪ 1 favour sparse solutions
    /// (fewer effective components).
    pub weight_concentration: f64,
    /// Maximum variational iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the mean absolute responsibility change.
    pub tol: f64,
    /// Components with weight below this are pruned after fitting.
    pub prune_weight: f64,
    /// Density threshold below which (under all surviving components) a
    /// point is an outlier. The paper uses 0.001.
    pub outlier_pdf_threshold: f64,
    /// Mean-precision prior β₀. Small values decouple component means
    /// from the global mean, which keeps tight, well-separated clusters
    /// from being merged by the (x̄−m₀)(x̄−m₀)ᵀ covariance term.
    pub mean_precision: f64,
    /// RNG seed for the k-means initialization.
    pub seed: u64,
}

impl Default for BgmmConfig {
    fn default() -> Self {
        BgmmConfig {
            max_components: 8,
            weight_concentration: 1e-2,
            max_iters: 200,
            tol: 1e-5,
            prune_weight: 0.02,
            outlier_pdf_threshold: 1e-3,
            mean_precision: 0.05,
            seed: 0xDCDB,
        }
    }
}

/// The fitted model.
#[derive(Debug, Clone)]
pub struct BgmmModel {
    /// Surviving components with expected weights, means, covariances.
    pub components: Vec<GaussianComponent>,
    /// Per-point assignment: `Some(component index)` or `None` when the
    /// point is an outlier under every component.
    pub labels: Vec<Option<usize>>,
    /// Number of components before pruning (== `max_components`).
    pub initial_components: usize,
    /// Variational iterations executed.
    pub iterations: usize,
    /// True if the responsibility change fell below tolerance.
    pub converged: bool,
}

impl BgmmModel {
    /// Number of effective (surviving) components.
    pub fn n_effective(&self) -> usize {
        self.components.len()
    }

    /// Density of `x` under component `k` (expected-parameter plug-in).
    pub fn component_pdf(&self, k: usize, x: &[f64]) -> f64 {
        self.components[k].pdf(x)
    }

    /// Classifies a new point: the best component, or `None` if the
    /// density under every component is below `threshold`.
    pub fn classify(&self, x: &[f64], threshold: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (k, c) in self.components.iter().enumerate() {
            let p = c.pdf(x);
            if best.map(|(_, bp)| p > bp).unwrap_or(true) {
                best = Some((k, p));
            }
        }
        match best {
            Some((k, p)) if p >= threshold => Some(k),
            _ => None,
        }
    }

    /// Log mixture density at `x`.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-300).ln() + c.log_pdf(x))
            .collect();
        log_sum_exp(&logs)
    }
}

/// Per-component variational parameters (Bishop's notation).
struct VarParams {
    alpha: f64,          // Dirichlet posterior
    beta: f64,           // mean precision scaling
    m: Vec<f64>,         // mean of the gaussian posterior over μ
    w_inv: SquareMatrix, // inverse of the Wishart scale W
    w_inv_chol: Cholesky,
    nu: f64,        // Wishart degrees of freedom
    log_det_w: f64, // ln |W| = −ln |W⁻¹|
}

/// Fits the variational GMM.
///
/// Panics on empty data; the clustering operator guards against that.
pub fn fit_bgmm(data: &[Vec<f64>], config: &BgmmConfig) -> BgmmModel {
    assert!(!data.is_empty(), "bgmm on empty data");
    let n = data.len();
    let d = data[0].len();
    let k = config.max_components.clamp(1, n);

    // Priors.
    let alpha0 = config.weight_concentration;
    let beta0 = config.mean_precision;
    let m0: Vec<f64> = {
        let mut m = vec![0.0; d];
        for x in data {
            for (mi, &xi) in m.iter_mut().zip(x.iter()) {
                *mi += xi;
            }
        }
        m.iter_mut().for_each(|v| *v /= n as f64);
        m
    };
    let nu0 = d as f64 + 2.0;
    let w0_inv = SquareMatrix::identity(d); // W₀ = I

    // Responsibilities initialized from k-means (soft-smoothed so no
    // component starts empty).
    let km = kmeans(data, k, 50, config.seed);
    let smooth = 1e-3;
    let mut resp = vec![vec![smooth / k as f64; k]; n];
    for (i, &l) in km.labels.iter().enumerate() {
        resp[i][l] += 1.0 - smooth;
    }

    let mut iterations = 0;
    let mut converged = false;
    let mut params: Vec<VarParams> = Vec::new();

    for iter in 0..config.max_iters {
        iterations = iter + 1;

        // ---- M-step: update variational posteriors. ----
        params.clear();
        for c in 0..k {
            let nk: f64 = resp.iter().map(|r| r[c]).sum::<f64>().max(1e-10);
            let mut xbar = vec![0.0; d];
            for (i, x) in data.iter().enumerate() {
                for (b, &xi) in xbar.iter_mut().zip(x.iter()) {
                    *b += resp[i][c] * xi;
                }
            }
            xbar.iter_mut().for_each(|v| *v /= nk);

            let mut sk = SquareMatrix::zeros(d);
            let mut diff = vec![0.0; d];
            for (i, x) in data.iter().enumerate() {
                for (j, (&xi, &bj)) in x.iter().zip(xbar.iter()).enumerate() {
                    diff[j] = xi - bj;
                }
                sk.rank1_update(&diff, resp[i][c] / nk);
            }

            let alpha = alpha0 + nk;
            let beta = beta0 + nk;
            let m: Vec<f64> = m0
                .iter()
                .zip(xbar.iter())
                .map(|(&m0i, &xb)| (beta0 * m0i + nk * xb) / beta)
                .collect();
            let nu = nu0 + nk;

            // W⁻¹ = W₀⁻¹ + N_k S_k + (β₀ N_k / (β₀+N_k))(x̄−m₀)(x̄−m₀)ᵀ
            let mut w_inv = w0_inv.clone();
            w_inv.add_scaled(&sk, nk);
            let dm: Vec<f64> = xbar.iter().zip(m0.iter()).map(|(a, b)| a - b).collect();
            w_inv.rank1_update(&dm, beta0 * nk / (beta0 + nk));
            // Numerical guard: tiny diagonal jitter keeps W⁻¹ SPD.
            for j in 0..d {
                w_inv[(j, j)] += 1e-9;
            }
            let chol = w_inv
                .cholesky()
                .expect("W-inverse must be SPD by construction");
            let log_det_w = -chol.logdet();
            params.push(VarParams {
                alpha,
                beta,
                m,
                w_inv,
                w_inv_chol: chol,
                nu,
                log_det_w,
            });
        }

        // ---- E-step: update responsibilities. ----
        let alpha_sum: f64 = params.iter().map(|p| p.alpha).sum();
        let psi_alpha_sum = digamma(alpha_sum);
        let e_ln_pi: Vec<f64> = params
            .iter()
            .map(|p| digamma(p.alpha) - psi_alpha_sum)
            .collect();
        let e_ln_det: Vec<f64> = params
            .iter()
            .map(|p| {
                let mut s = d as f64 * (2.0f64).ln() + p.log_det_w;
                for i in 0..d {
                    s += digamma((p.nu - i as f64) / 2.0);
                }
                s
            })
            .collect();

        let mut max_delta = 0.0f64;
        let mut logs = vec![0.0f64; k];
        let mut diff = vec![0.0f64; d];
        for (i, x) in data.iter().enumerate() {
            for (c, p) in params.iter().enumerate() {
                for (j, (&xi, &mj)) in x.iter().zip(p.m.iter()).enumerate() {
                    diff[j] = xi - mj;
                }
                // (x−m)ᵀ W (x−m) computed as a solve against W⁻¹.
                let maha = p.w_inv_chol.inv_quadratic_form(&diff);
                logs[c] = e_ln_pi[c] + 0.5 * e_ln_det[c]
                    - 0.5 * (d as f64 / p.beta + p.nu * maha)
                    - 0.5 * d as f64 * (2.0 * std::f64::consts::PI).ln();
            }
            let norm = log_sum_exp(&logs);
            for (c, &lg) in logs.iter().enumerate() {
                let r = if norm.is_finite() {
                    (lg - norm).exp()
                } else {
                    1.0 / k as f64
                };
                max_delta = max_delta.max((r - resp[i][c]).abs());
                resp[i][c] = r;
            }
        }

        if max_delta < config.tol {
            converged = true;
            break;
        }
    }

    // ---- Extract expected parameters and prune weak components. ----
    let alpha_sum: f64 = params.iter().map(|p| p.alpha).sum();
    // Components supported by fewer than ~1.5 points are degenerate
    // singletons (an outlier grabbing its own component); prune them so
    // the density-threshold outlier rule can see such points.
    let prune = config.prune_weight.max(1.5 / n as f64);
    let mut kept: Vec<usize> = Vec::new();
    let mut components = Vec::new();
    for (c, p) in params.iter().enumerate() {
        let weight = p.alpha / alpha_sum;
        if weight < prune {
            continue;
        }
        // E[Σ] = W⁻¹ / (ν − D − 1) when ν > D + 1, else W⁻¹/ν.
        let denom = if p.nu > d as f64 + 1.0 {
            p.nu - d as f64 - 1.0
        } else {
            p.nu
        };
        let mut cov = p.w_inv.clone();
        cov.scale(1.0 / denom);
        kept.push(c);
        components.push(GaussianComponent {
            weight,
            mean: p.m.clone(),
            cov,
        });
    }
    // Renormalize surviving weights.
    let wsum: f64 = components.iter().map(|c| c.weight).sum();
    if wsum > 0.0 {
        for c in &mut components {
            c.weight /= wsum;
        }
    }

    // ---- Label points; detect outliers by density threshold. ----
    let labels = data
        .iter()
        .map(|x| {
            let mut best: Option<(usize, f64)> = None;
            for (idx, comp) in components.iter().enumerate() {
                let p = comp.pdf(x);
                if best.map(|(_, bp)| p > bp).unwrap_or(true) {
                    best = Some((idx, p));
                }
            }
            match best {
                Some((idx, p)) if p >= config.outlier_pdf_threshold => Some(idx),
                _ => None,
            }
        })
        .collect();

    BgmmModel {
        components,
        labels,
        initial_components: k,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Three well-separated standardized-ish blobs plus two extreme
    /// outliers, mimicking the node-behaviour data of Fig. 8.
    fn blobs_with_outliers(seed: u64) -> (Vec<Vec<f64>>, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let centers = [[-2.0, -2.0, 0.0], [0.0, 0.0, 0.5], [2.5, 2.5, -0.5]];
        for (ci, c) in centers.iter().enumerate() {
            let count = [40, 120, 40][ci];
            for _ in 0..count {
                data.push(vec![
                    c[0] + rng.gen_range(-0.35..0.35),
                    c[1] + rng.gen_range(-0.35..0.35),
                    c[2] + rng.gen_range(-0.35..0.35),
                ]);
            }
        }
        let n_inliers = data.len();
        data.push(vec![8.0, -8.0, 8.0]);
        data.push(vec![-8.0, 8.0, -8.0]);
        (data, n_inliers)
    }

    #[test]
    fn discovers_three_clusters_from_eight() {
        let (data, _) = blobs_with_outliers(1);
        let model = fit_bgmm(&data, &BgmmConfig::default());
        assert_eq!(model.initial_components, 8);
        assert_eq!(
            model.n_effective(),
            3,
            "weights: {:?}",
            model
                .components
                .iter()
                .map(|c| c.weight)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn flags_extreme_outliers() {
        let (data, n_inliers) = blobs_with_outliers(2);
        let model = fit_bgmm(&data, &BgmmConfig::default());
        assert!(model.labels[n_inliers].is_none(), "outlier 1 not flagged");
        assert!(
            model.labels[n_inliers + 1].is_none(),
            "outlier 2 not flagged"
        );
        let flagged = model.labels.iter().filter(|l| l.is_none()).count();
        assert!(flagged <= 6, "too many outliers: {flagged}");
    }

    #[test]
    fn inliers_of_same_blob_share_label() {
        let (data, _) = blobs_with_outliers(3);
        let model = fit_bgmm(&data, &BgmmConfig::default());
        // First blob: indices 0..40.
        let l = model.labels[0];
        assert!(l.is_some());
        let same = model.labels[..40].iter().filter(|&&x| x == l).count();
        assert!(same >= 38, "blob coherence {same}/40");
    }

    #[test]
    fn weights_sum_to_one() {
        let (data, _) = blobs_with_outliers(4);
        let model = fit_bgmm(&data, &BgmmConfig::default());
        let sum: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_blob_collapses_to_one_component() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<Vec<f64>> = (0..150)
            .map(|_| vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)])
            .collect();
        let model = fit_bgmm(&data, &BgmmConfig::default());
        assert_eq!(
            model.n_effective(),
            1,
            "weights: {:?}",
            model
                .components
                .iter()
                .map(|c| c.weight)
                .collect::<Vec<_>>()
        );
        let c = &model.components[0];
        assert!(c.mean[0].abs() < 0.2 && c.mean[1].abs() < 0.2);
    }

    #[test]
    fn classify_new_points() {
        let (data, _) = blobs_with_outliers(6);
        let model = fit_bgmm(&data, &BgmmConfig::default());
        let near_blob = model.classify(&[0.0, 0.0, 0.5], 1e-3);
        assert!(near_blob.is_some());
        let far = model.classify(&[50.0, 50.0, 50.0], 1e-3);
        assert!(far.is_none());
    }

    #[test]
    fn correlated_elongated_cluster_is_captured() {
        // Nodes in Fig. 8 lie on a linear power/temperature trend; full
        // covariance must capture it with one component.
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let t = rng.gen_range(-2.0..2.0);
                vec![t, 0.9 * t + rng.gen_range(-0.1..0.1)]
            })
            .collect();
        let model = fit_bgmm(&data, &BgmmConfig::default());
        assert!(
            model.n_effective() <= 2,
            "effective: {}",
            model.n_effective()
        );
        // Covariance of the dominant component reflects the correlation.
        let dominant = model
            .components
            .iter()
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())
            .unwrap();
        let corr =
            dominant.cov[(0, 1)] / (dominant.cov[(0, 0)].sqrt() * dominant.cov[(1, 1)].sqrt());
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, _) = blobs_with_outliers(8);
        let a = fit_bgmm(&data, &BgmmConfig::default());
        let b = fit_bgmm(&data, &BgmmConfig::default());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.n_effective(), b.n_effective());
    }

    #[test]
    fn log_pdf_finite_on_fitted_data() {
        let (data, _) = blobs_with_outliers(9);
        let model = fit_bgmm(&data, &BgmmConfig::default());
        for x in data.iter().take(20) {
            assert!(model.log_pdf(x).is_finite());
        }
    }
}
