//! The in-process message broker.
//!
//! DCDB runs an MQTT broker inside every Collect Agent; Pushers publish
//! sensor frames to it and any component may subscribe with topic
//! filters. This module reproduces those semantics in-process:
//!
//! * QoS 0 (fire-and-forget) delivery, like DCDB's data path;
//! * wildcard subscriptions backed by a topic trie, so routing cost is
//!   proportional to topic depth rather than subscriber count;
//! * an asynchronous router thread decoupling publishers from slow
//!   subscribers (publishers never block on delivery), with an optional
//!   synchronous mode for deterministic tests.

use crate::filter::{FilterSegment, TopicFilter};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use dcdb_common::error::DcdbError;
use dcdb_common::topic::Topic;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A routed message: topic plus opaque payload.
///
/// `Topic` and [`Bytes`] are both reference-counted, so cloning a message
/// for fan-out is two atomic increments.
#[derive(Debug, Clone)]
pub struct Message {
    /// The topic the message was published to.
    pub topic: Topic,
    /// Opaque payload (sensor frames use [`crate::codec`]).
    pub payload: Bytes,
}

/// Unique id of one subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SubId(u64);

/// Counters exposed by the broker for footprint accounting.
#[derive(Debug, Default)]
pub struct BusStats {
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// A point-in-time snapshot of [`BusStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusStatsSnapshot {
    /// Messages accepted from publishers.
    pub published: u64,
    /// Message copies enqueued to subscribers.
    pub delivered: u64,
    /// Copies dropped because the subscriber had disconnected.
    pub dropped: u64,
}

/// Subscription trie: one node per filter path prefix.
#[derive(Default)]
struct TrieNode {
    literal: HashMap<String, TrieNode>,
    single: Option<Box<TrieNode>>,
    /// Subscriptions whose filter ends with `#` here.
    multi: Vec<SubId>,
    /// Subscriptions whose filter ends exactly here.
    terminal: Vec<SubId>,
}

impl TrieNode {
    fn insert(&mut self, segs: &[FilterSegment], id: SubId) {
        match segs.first() {
            None => self.terminal.push(id),
            Some(FilterSegment::MultiLevel) => self.multi.push(id),
            Some(FilterSegment::Literal(l)) => self
                .literal
                .entry(l.clone())
                .or_default()
                .insert(&segs[1..], id),
            Some(FilterSegment::SingleLevel) => self
                .single
                .get_or_insert_with(Default::default)
                .insert(&segs[1..], id),
        }
    }

    fn remove(&mut self, segs: &[FilterSegment], id: SubId) {
        match segs.first() {
            None => self.terminal.retain(|&x| x != id),
            Some(FilterSegment::MultiLevel) => self.multi.retain(|&x| x != id),
            Some(FilterSegment::Literal(l)) => {
                if let Some(child) = self.literal.get_mut(l) {
                    child.remove(&segs[1..], id);
                }
            }
            Some(FilterSegment::SingleLevel) => {
                if let Some(child) = self.single.as_mut() {
                    child.remove(&segs[1..], id);
                }
            }
        }
    }

    fn collect(&self, segs: &[&str], out: &mut Vec<SubId>) {
        out.extend_from_slice(&self.multi);
        match segs.first() {
            None => out.extend_from_slice(&self.terminal),
            Some(&seg) => {
                if let Some(child) = self.literal.get(seg) {
                    child.collect(&segs[1..], out);
                }
                if let Some(child) = self.single.as_deref() {
                    child.collect(&segs[1..], out);
                }
            }
        }
    }
}

enum RouterMsg {
    Data(Message),
    /// Barrier: acknowledged once every message before it was routed.
    Flush(Sender<()>),
}

struct Inner {
    trie: RwLock<TrieNode>,
    sinks: RwLock<HashMap<SubId, Sender<Message>>>,
    input: RwLock<Option<Sender<RouterMsg>>>,
    next_id: AtomicU64,
    stats: BusStats,
}

impl Inner {
    fn route(&self, msg: Message) {
        let mut ids = Vec::new();
        self.trie.read().collect(
            &msg.topic.segments().collect::<Vec<_>>(),
            &mut ids,
        );
        if ids.is_empty() {
            return;
        }
        let sinks = self.sinks.read();
        let mut dead: Vec<SubId> = Vec::new();
        for id in ids {
            if let Some(tx) = sinks.get(&id) {
                if tx.send(msg.clone()).is_ok() {
                    self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    dead.push(id);
                }
            }
        }
        drop(sinks);
        if !dead.is_empty() {
            let mut sinks = self.sinks.write();
            for id in dead {
                sinks.remove(&id);
            }
        }
    }

    fn publish(&self, topic: Topic, payload: Bytes) -> Result<(), DcdbError> {
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        let msg = Message { topic, payload };
        let guard = self.input.read();
        match guard.as_ref() {
            Some(tx) => tx
                .send(RouterMsg::Data(msg))
                .map_err(|_| DcdbError::Disconnected("broker router stopped".into())),
            None => {
                // Synchronous mode (or broker shut down and drained).
                self.route(msg);
                Ok(())
            }
        }
    }

    fn subscribe(self: &Arc<Self>, filter: TopicFilter) -> Subscription {
        let id = SubId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = channel::unbounded();
        self.trie.write().insert(filter.segments(), id);
        self.sinks.write().insert(id, tx);
        Subscription {
            id,
            filter,
            rx,
            inner: Arc::clone(self),
        }
    }

    fn unsubscribe(&self, filter: &TopicFilter, id: SubId) {
        self.trie.write().remove(filter.segments(), id);
        self.sinks.write().remove(&id);
    }
}

/// The broker. Owns the router thread; dropped last-in-line it drains
/// and stops the router. Cheap [`BusHandle`]s are handed to every
/// component that needs to publish or subscribe.
pub struct Broker {
    inner: Arc<Inner>,
    router: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Broker {
    /// Creates a broker with an asynchronous router thread (the
    /// production configuration).
    pub fn new() -> Broker {
        let inner = Arc::new(Inner {
            trie: RwLock::new(TrieNode::default()),
            sinks: RwLock::new(HashMap::new()),
            input: RwLock::new(None),
            next_id: AtomicU64::new(0),
            stats: BusStats::default(),
        });
        let (tx, rx): (Sender<RouterMsg>, Receiver<RouterMsg>) = channel::unbounded();
        *inner.input.write() = Some(tx);
        let router_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("dcdb-bus-router".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        RouterMsg::Data(m) => router_inner.route(m),
                        RouterMsg::Flush(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })
            .expect("failed to spawn bus router");
        Broker {
            inner,
            router: Mutex::new(Some(handle)),
        }
    }

    /// Creates a broker that routes inline inside `publish` — fully
    /// deterministic, for tests and single-threaded simulation.
    pub fn new_sync() -> Broker {
        let inner = Arc::new(Inner {
            trie: RwLock::new(TrieNode::default()),
            sinks: RwLock::new(HashMap::new()),
            input: RwLock::new(None),
            next_id: AtomicU64::new(0),
            stats: BusStats::default(),
        });
        Broker {
            inner,
            router: Mutex::new(None),
        }
    }

    /// A cloneable handle for publishing and subscribing.
    pub fn handle(&self) -> BusHandle {
        BusHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks until every message published before this call has been
    /// routed. No-op in synchronous mode.
    pub fn flush(&self) {
        let guard = self.inner.input.read();
        if let Some(tx) = guard.as_ref() {
            let (ack_tx, ack_rx) = channel::bounded(1);
            if tx.send(RouterMsg::Flush(ack_tx)).is_ok() {
                drop(guard);
                let _ = ack_rx.recv();
            }
        }
    }

    /// Snapshot of the broker counters.
    pub fn stats(&self) -> BusStatsSnapshot {
        BusStatsSnapshot {
            published: self.inner.stats.published.load(Ordering::Relaxed),
            delivered: self.inner.stats.delivered.load(Ordering::Relaxed),
            dropped: self.inner.stats.dropped.load(Ordering::Relaxed),
        }
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.inner.sinks.read().len()
    }
}

impl Default for Broker {
    fn default() -> Self {
        Broker::new()
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        // Close the router input so the thread drains and exits.
        *self.inner.input.write() = None;
        if let Some(handle) = self.router.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Cloneable publish/subscribe handle onto a [`Broker`].
#[derive(Clone)]
pub struct BusHandle {
    inner: Arc<Inner>,
}

impl BusHandle {
    /// Publishes a payload to `topic` (QoS 0).
    pub fn publish(&self, topic: Topic, payload: Bytes) -> Result<(), DcdbError> {
        self.inner.publish(topic, payload)
    }

    /// Publishes a batch of readings using the standard frame codec.
    pub fn publish_readings(
        &self,
        topic: Topic,
        readings: &[dcdb_common::reading::SensorReading],
    ) -> Result<(), DcdbError> {
        self.publish(topic, crate::codec::encode_readings(readings))
    }

    /// Subscribes with a topic filter; messages matching the filter are
    /// queued on the returned [`Subscription`].
    pub fn subscribe(&self, filter: TopicFilter) -> Subscription {
        self.inner.subscribe(filter)
    }

    /// Convenience: subscribe to a filter string, parsing it first.
    pub fn subscribe_str(&self, filter: &str) -> Result<Subscription, DcdbError> {
        Ok(self.subscribe(TopicFilter::parse(filter)?))
    }
}

/// A live subscription; unsubscribes on drop.
pub struct Subscription {
    id: SubId,
    filter: TopicFilter,
    rx: Receiver<Message>,
    inner: Arc<Inner>,
}

impl Subscription {
    /// The filter this subscription was created with.
    pub fn filter(&self) -> &TopicFilter {
        &self.filter
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Message, DcdbError> {
        self.rx
            .recv()
            .map_err(|_| DcdbError::Disconnected("broker closed".into()))
    }

    /// Non-blocking receive; `Ok(None)` when the queue is empty.
    pub fn try_recv(&self) -> Result<Option<Message>, DcdbError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(DcdbError::Disconnected("broker closed".into()))
            }
        }
    }

    /// Receive with a timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, DcdbError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(channel::RecvTimeoutError::Disconnected) => {
                Err(DcdbError::Disconnected("broker closed".into()))
            }
        }
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Ok(Some(m)) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Number of messages currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.inner.unsubscribe(&self.filter, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::reading::SensorReading;
    use dcdb_common::time::Timestamp;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    #[test]
    fn sync_publish_routes_to_matching_subscribers() {
        let broker = Broker::new_sync();
        let bus = broker.handle();
        let power = bus.subscribe_str("/+/power").unwrap();
        let all = bus.subscribe_str("/#").unwrap();
        let temps = bus.subscribe_str("/+/temp").unwrap();

        bus.publish(t("/n1/power"), Bytes::from_static(b"x")).unwrap();
        assert_eq!(power.queued(), 1);
        assert_eq!(all.queued(), 1);
        assert_eq!(temps.queued(), 0);
        let m = power.try_recv().unwrap().unwrap();
        assert_eq!(m.topic.as_str(), "/n1/power");
        assert_eq!(&m.payload[..], b"x");
    }

    #[test]
    fn async_router_delivers_after_flush() {
        let broker = Broker::new();
        let bus = broker.handle();
        let sub = bus.subscribe_str("/a/#").unwrap();
        for i in 0..100 {
            bus.publish(t(&format!("/a/s{i}")), Bytes::new()).unwrap();
        }
        broker.flush();
        assert_eq!(sub.queued(), 100);
        let stats = broker.stats();
        assert_eq!(stats.published, 100);
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn unsubscribe_on_drop() {
        let broker = Broker::new_sync();
        let bus = broker.handle();
        {
            let _sub = bus.subscribe_str("/x/#").unwrap();
            assert_eq!(broker.subscriber_count(), 1);
        }
        assert_eq!(broker.subscriber_count(), 0);
        bus.publish(t("/x/y"), Bytes::new()).unwrap();
        assert_eq!(broker.stats().delivered, 0);
    }

    #[test]
    fn overlapping_filters_each_get_a_copy() {
        let broker = Broker::new_sync();
        let bus = broker.handle();
        let a = bus.subscribe_str("/r1/#").unwrap();
        let b = bus.subscribe_str("/r1/+/power").unwrap();
        let c = bus.subscribe_str("/r1/n1/power").unwrap();
        bus.publish(t("/r1/n1/power"), Bytes::new()).unwrap();
        assert_eq!(a.queued() + b.queued() + c.queued(), 3);
    }

    #[test]
    fn readings_round_trip_over_bus() {
        let broker = Broker::new_sync();
        let bus = broker.handle();
        let sub = bus.subscribe_str("/n1/power").unwrap();
        let batch = vec![
            SensorReading::new(100, Timestamp::from_secs(1)),
            SensorReading::new(105, Timestamp::from_secs(2)),
        ];
        bus.publish_readings(t("/n1/power"), &batch).unwrap();
        let msg = sub.try_recv().unwrap().unwrap();
        assert_eq!(crate::codec::decode_readings(msg.payload).unwrap(), batch);
    }

    #[test]
    fn no_subscribers_is_fine() {
        let broker = Broker::new_sync();
        let bus = broker.handle();
        bus.publish(t("/lonely"), Bytes::new()).unwrap();
        assert_eq!(broker.stats().published, 1);
        assert_eq!(broker.stats().delivered, 0);
    }

    #[test]
    fn publish_after_broker_drop_fails_or_routes_sync() {
        let broker = Broker::new();
        let bus = broker.handle();
        drop(broker);
        // Router gone: inline routing still works (no subscribers).
        bus.publish(t("/a/b"), Bytes::new()).unwrap();
    }

    #[test]
    fn multithreaded_publishers() {
        let broker = Broker::new();
        let bus = broker.handle();
        let sub = bus.subscribe_str("/#").unwrap();
        let mut handles = vec![];
        for p in 0..4 {
            let bus = bus.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    bus.publish(t(&format!("/p{p}/s{i}")), Bytes::new()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        broker.flush();
        assert_eq!(sub.queued(), 1000);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let broker = Broker::new();
        let bus = broker.handle();
        let sub = bus.subscribe_str("/quiet/#").unwrap();
        let got = sub.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn drain_empties_queue() {
        let broker = Broker::new_sync();
        let bus = broker.handle();
        let sub = bus.subscribe_str("/d/#").unwrap();
        for i in 0..5 {
            bus.publish(t(&format!("/d/{i}")), Bytes::new()).unwrap();
        }
        assert_eq!(sub.drain().len(), 5);
        assert_eq!(sub.queued(), 0);
    }
}
