//! Event-loop query serving under thousands of simultaneous clients.
//!
//! ```text
//! cargo run --release -p oda-bench --bin query_concurrency            # 10k clients
//! cargo run --release -p oda-bench --bin query_concurrency -- --quick # smoke run
//! cargo run --release -p oda-bench --bin query_concurrency -- --clients 2000
//! ```

use oda_bench::query_concurrency::{client_driver_main, run, QueryConcurrencyConfig};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Hidden re-exec mode: run() spawns this when the fd limit cannot
    // hold both ends of every connection in one process.
    if args.get(1).map(String::as_str) == Some("--client-driver") {
        client_driver_main(&args[2..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut config = if quick {
        QueryConcurrencyConfig::quick()
    } else {
        QueryConcurrencyConfig::paper()
    };
    if let Some(i) = args.iter().position(|a| a == "--clients") {
        config.clients = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--clients must be a number");
    }

    println!(
        "query concurrency bench: {} clients over {} client threads, {} server workers\n",
        config.clients, config.client_threads, config.server_workers
    );
    let started = std::time::Instant::now();
    let result = run(&config);

    println!(
        "clients            : {:>8} opened, {} completed, {} dropped",
        result.clients, result.completed, result.dropped
    );
    println!("connect phase      : {:>10.1} ms", result.connect_ms);
    println!(
        "serve phase        : {:>10.1} ms  ({:.0} responses/s)",
        result.serve_ms, result.requests_per_sec
    );
    println!(
        "completion latency : p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        result.p50_ms, result.p90_ms, result.p99_ms, result.max_ms
    );
    println!(
        "server metrics     : {} responses, {} accept errors, {} idle reaps",
        result.server_responses, result.accept_errors, result.reaped_idle
    );
    assert_eq!(
        result.dropped, 0,
        "server dropped {} of {} clients",
        result.dropped, result.clients
    );

    let meta = BenchMeta::new("query_concurrency", Some(config.seed), &config, started);
    let path = write_json_report(&meta, &result).expect("write json");
    println!("\nraw data -> {}", path.display());
}
