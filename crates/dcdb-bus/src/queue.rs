//! Bounded delivery queues with explicit overflow policies.
//!
//! DCDB's data path is QoS 0: under sustained overload the broker is
//! allowed to drop messages, but the drops must be *bounded, chosen by
//! policy, and observable* — never silent memory growth (DCDB paper
//! §IV-A; the ODA-in-practice follow-up calls sustained overload the
//! main gap between prototype and production). Every queue in the bus —
//! the router input and each subscriber queue — is an instance of
//! [`BoundedQueue`] carrying an [`OverflowPolicy`] and a lock-free
//! readable [`QueueMetrics`] block (depth, high-water mark, drop
//! counters) that feeds the `/metrics` endpoint.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a full queue does with the next message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// The producer blocks until space frees up (lossless backpressure;
    /// publishers slow to the consumer's pace).
    Block,
    /// The incoming message is discarded; queued messages are kept.
    DropNewest,
    /// The oldest queued message is evicted to admit the incoming one
    /// (QoS-0 default: survivors are always the freshest data).
    #[default]
    DropOldest,
}

impl OverflowPolicy {
    /// Parses `block` / `drop-newest` / `drop-oldest`.
    pub fn parse(s: &str) -> Option<OverflowPolicy> {
        match s {
            "block" => Some(OverflowPolicy::Block),
            "drop-newest" | "dropnewest" => Some(OverflowPolicy::DropNewest),
            "drop-oldest" | "dropoldest" => Some(OverflowPolicy::DropOldest),
            _ => None,
        }
    }

    /// Canonical config-file / JSON spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::DropNewest => "drop-newest",
            OverflowPolicy::DropOldest => "drop-oldest",
        }
    }
}

/// Pop error: the sending side closed and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// Outcome of one [`BoundedQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Message admitted; nothing was displaced.
    Enqueued,
    /// Message admitted; the oldest queued message was evicted
    /// (`DropOldest`).
    Evicted,
    /// Message discarded because the queue was full (`DropNewest`).
    DroppedNewest,
    /// The receiving side is gone; message discarded.
    Closed,
}

/// Shared counters for one queue, updated under the queue lock but
/// readable without it.
#[derive(Debug, Default)]
pub struct QueueMetrics {
    depth: AtomicUsize,
    high_water: AtomicUsize,
    offered: AtomicU64,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    dropped_newest: AtomicU64,
    dropped_oldest: AtomicU64,
    dropped_closed: AtomicU64,
}

/// Point-in-time copy of [`QueueMetrics`], plus the queue's static
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueMetricsSnapshot {
    /// Configured capacity bound.
    pub capacity: usize,
    /// Overflow policy.
    pub policy: OverflowPolicy,
    /// Messages queued right now.
    pub depth: usize,
    /// Highest depth ever observed.
    pub high_water: usize,
    /// Push attempts (admitted + dropped).
    pub offered: u64,
    /// Messages admitted to the queue.
    pub enqueued: u64,
    /// Messages consumed by the receiver.
    pub dequeued: u64,
    /// Incoming messages discarded by `DropNewest`.
    pub dropped_newest: u64,
    /// Queued messages evicted by `DropOldest`.
    pub dropped_oldest: u64,
    /// Messages discarded because the receiver was gone.
    pub dropped_closed: u64,
}

impl QueueMetricsSnapshot {
    /// Total messages lost at this queue.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_newest + self.dropped_oldest + self.dropped_closed
    }

    /// Conservation check: every offered message is accounted for as
    /// consumed, still queued, or dropped.
    pub fn conserved(&self) -> bool {
        self.offered == self.dequeued + self.depth as u64 + self.dropped_total()
    }
}

struct QueueState<T> {
    q: VecDeque<T>,
    rx_closed: bool,
    tx_closed: bool,
}

/// A bounded MPMC queue with a configurable full-queue policy.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    readable: Condvar,
    writable: Condvar,
    cap: usize,
    policy: OverflowPolicy,
    metrics: QueueMetrics,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded at `cap` messages.
    pub fn new(cap: usize, policy: OverflowPolicy) -> Arc<BoundedQueue<T>> {
        assert!(cap > 0, "queue capacity must be positive");
        Arc::new(BoundedQueue {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                rx_closed: false,
                tx_closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
            policy,
            metrics: QueueMetrics::default(),
        })
    }

    /// Configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Messages queued right now (lock-free).
    pub fn len(&self) -> usize {
        self.metrics.depth.load(Ordering::Relaxed)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (lock-free).
    pub fn metrics(&self) -> QueueMetricsSnapshot {
        QueueMetricsSnapshot {
            capacity: self.cap,
            policy: self.policy,
            depth: self.metrics.depth.load(Ordering::Relaxed),
            high_water: self.metrics.high_water.load(Ordering::Relaxed),
            offered: self.metrics.offered.load(Ordering::Relaxed),
            enqueued: self.metrics.enqueued.load(Ordering::Relaxed),
            dequeued: self.metrics.dequeued.load(Ordering::Relaxed),
            dropped_newest: self.metrics.dropped_newest.load(Ordering::Relaxed),
            dropped_oldest: self.metrics.dropped_oldest.load(Ordering::Relaxed),
            dropped_closed: self.metrics.dropped_closed.load(Ordering::Relaxed),
        }
    }

    /// Offers a message, applying the overflow policy when full.
    pub fn push(&self, msg: T) -> PushOutcome {
        let mut state = self.state.lock().unwrap();
        self.metrics.offered.fetch_add(1, Ordering::Relaxed);
        loop {
            if state.rx_closed {
                self.metrics.dropped_closed.fetch_add(1, Ordering::Relaxed);
                return PushOutcome::Closed;
            }
            if state.q.len() < self.cap {
                state.q.push_back(msg);
                let depth = state.q.len();
                self.note_depth(depth);
                self.metrics.enqueued.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.readable.notify_one();
                return PushOutcome::Enqueued;
            }
            match self.policy {
                OverflowPolicy::Block => {
                    state = self.writable.wait(state).unwrap();
                }
                OverflowPolicy::DropNewest => {
                    self.metrics.dropped_newest.fetch_add(1, Ordering::Relaxed);
                    return PushOutcome::DroppedNewest;
                }
                OverflowPolicy::DropOldest => {
                    state.q.pop_front();
                    state.q.push_back(msg);
                    let depth = state.q.len();
                    self.note_depth(depth);
                    self.metrics.enqueued.fetch_add(1, Ordering::Relaxed);
                    self.metrics.dropped_oldest.fetch_add(1, Ordering::Relaxed);
                    drop(state);
                    self.readable.notify_one();
                    return PushOutcome::Evicted;
                }
            }
        }
    }

    #[inline]
    fn note_depth(&self, depth: usize) {
        self.metrics.depth.store(depth, Ordering::Relaxed);
        if depth > self.metrics.high_water.load(Ordering::Relaxed) {
            self.metrics.high_water.store(depth, Ordering::Relaxed);
        }
    }

    fn take(&self, state: &mut QueueState<T>) -> Option<T> {
        let msg = state.q.pop_front()?;
        self.metrics.depth.store(state.q.len(), Ordering::Relaxed);
        self.metrics.dequeued.fetch_add(1, Ordering::Relaxed);
        Some(msg)
    }

    /// Non-blocking pop; `Ok(None)` when empty; [`Disconnected`] when
    /// the sending side closed and the queue is drained.
    pub fn try_pop(&self) -> Result<Option<T>, Disconnected> {
        let mut state = self.state.lock().unwrap();
        if let Some(msg) = self.take(&mut state) {
            drop(state);
            self.writable.notify_one();
            return Ok(Some(msg));
        }
        if state.tx_closed {
            Err(Disconnected)
        } else {
            Ok(None)
        }
    }

    /// Blocking pop; [`Disconnected`] when the sending side closed and
    /// the queue is drained.
    pub fn pop(&self) -> Result<T, Disconnected> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(msg) = self.take(&mut state) {
                drop(state);
                self.writable.notify_one();
                return Ok(msg);
            }
            if state.tx_closed {
                return Err(Disconnected);
            }
            state = self.readable.wait(state).unwrap();
        }
    }

    /// Pop with a deadline; `Ok(None)` on timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<Option<T>, Disconnected> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(msg) = self.take(&mut state) {
                drop(state);
                self.writable.notify_one();
                return Ok(Some(msg));
            }
            if state.tx_closed {
                return Err(Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _res) = self.readable.wait_timeout(state, deadline - now).unwrap();
            state = guard;
        }
    }

    /// Closes the receiving side: subsequent pushes fail with
    /// [`PushOutcome::Closed`] and blocked `Block`-policy producers wake.
    pub fn close_rx(&self) {
        let mut state = self.state.lock().unwrap();
        state.rx_closed = true;
        state.q.clear();
        self.metrics.depth.store(0, Ordering::Relaxed);
        drop(state);
        self.writable.notify_all();
        self.readable.notify_all();
    }

    /// Closes the sending side: consumers drain what is queued, then
    /// see disconnect.
    pub fn close_tx(&self) {
        let mut state = self.state.lock().unwrap();
        state.tx_closed = true;
        drop(state);
        self.readable.notify_all();
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.cap)
            .field("policy", &self.policy)
            .field("depth", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_trip() {
        let q = BoundedQueue::new(4, OverflowPolicy::DropOldest);
        assert_eq!(q.push(1), PushOutcome::Enqueued);
        assert_eq!(q.push(2), PushOutcome::Enqueued);
        assert_eq!(q.try_pop(), Ok(Some(1)));
        assert_eq!(q.pop(), Ok(2));
        assert_eq!(q.try_pop(), Ok(None));
    }

    #[test]
    fn drop_oldest_keeps_freshest() {
        let q = BoundedQueue::new(3, OverflowPolicy::DropOldest);
        for i in 0..10 {
            q.push(i);
        }
        let m = q.metrics();
        assert_eq!(m.depth, 3);
        assert_eq!(m.high_water, 3);
        assert_eq!(m.dropped_oldest, 7);
        assert_eq!(q.pop(), Ok(7));
        assert_eq!(q.pop(), Ok(8));
        assert_eq!(q.pop(), Ok(9));
        assert!(q.metrics().conserved());
    }

    #[test]
    fn drop_newest_keeps_earliest() {
        let q = BoundedQueue::new(3, OverflowPolicy::DropNewest);
        for i in 0..10 {
            q.push(i);
        }
        let m = q.metrics();
        assert_eq!(m.dropped_newest, 7);
        assert_eq!(q.pop(), Ok(0));
        assert!(q.metrics().conserved());
    }

    #[test]
    fn block_policy_waits_for_space() {
        let q = BoundedQueue::new(1, OverflowPolicy::Block);
        q.push(1);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1); // producer is blocked
        assert_eq!(q.pop(), Ok(1));
        assert_eq!(h.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(q.pop(), Ok(2));
        assert_eq!(q.metrics().dropped_newest + q.metrics().dropped_oldest, 0);
    }

    #[test]
    fn close_rx_rejects_and_unblocks() {
        let q = BoundedQueue::new(1, OverflowPolicy::Block);
        q.push(1);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(10));
        q.close_rx();
        assert_eq!(h.join().unwrap(), PushOutcome::Closed);
        assert_eq!(q.push(3), PushOutcome::Closed);
    }

    #[test]
    fn close_tx_drains_then_disconnects() {
        let q = BoundedQueue::new(4, OverflowPolicy::DropOldest);
        q.push(1);
        q.close_tx();
        assert_eq!(q.pop(), Ok(1));
        assert_eq!(q.pop(), Err(Disconnected));
        assert_eq!(q.try_pop(), Err(Disconnected));
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Err(Disconnected));
    }

    #[test]
    fn pop_timeout_times_out() {
        let q: Arc<BoundedQueue<u32>> = BoundedQueue::new(2, OverflowPolicy::DropOldest);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Ok(None));
    }

    #[test]
    fn policy_parse_round_trip() {
        for p in [
            OverflowPolicy::Block,
            OverflowPolicy::DropNewest,
            OverflowPolicy::DropOldest,
        ] {
            assert_eq!(OverflowPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("nope"), None);
    }
}
