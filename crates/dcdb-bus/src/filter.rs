//! MQTT topic filters.
//!
//! DCDB transports all sensor data over MQTT; subscribers select topics
//! with the standard MQTT wildcards:
//!
//! * `+` matches exactly one path segment,
//! * `#` matches any number of trailing segments (including zero), and
//!   may only appear as the last segment.
//!
//! `/rack1/+/power` matches `/rack1/chassis2/power` but not
//! `/rack1/chassis2/server3/power`; `/rack1/#` matches everything below
//! `/rack1` and `/rack1` itself.

use dcdb_common::error::DcdbError;
use dcdb_common::topic::Topic;
use std::fmt;

/// One segment of a parsed topic filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FilterSegment {
    /// Literal segment that must match exactly.
    Literal(String),
    /// `+`: any single segment.
    SingleLevel,
    /// `#`: the rest of the topic (terminal).
    MultiLevel,
}

/// A parsed, validated MQTT topic filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopicFilter {
    segments: Vec<FilterSegment>,
    raw: String,
}

impl TopicFilter {
    /// Parses a filter string such as `/rack1/+/power` or `/#`.
    pub fn parse(raw: &str) -> Result<TopicFilter, DcdbError> {
        let trimmed = raw.trim();
        let body = trimmed.trim_start_matches('/').trim_end_matches('/');
        if body.is_empty() {
            // "/" or "#" alone: treat bare "#" below; bare "/" is invalid.
            if trimmed == "#" || trimmed == "/#" {
                return Ok(TopicFilter {
                    segments: vec![FilterSegment::MultiLevel],
                    raw: "/#".to_string(),
                });
            }
            return Err(DcdbError::Topic(format!("empty filter: {raw:?}")));
        }
        let mut segments = Vec::new();
        let parts: Vec<&str> = body.split('/').collect();
        for (i, seg) in parts.iter().enumerate() {
            match *seg {
                "" => return Err(DcdbError::Topic(format!("empty segment in filter {raw:?}"))),
                "+" => segments.push(FilterSegment::SingleLevel),
                "#" => {
                    if i + 1 != parts.len() {
                        return Err(DcdbError::Topic(format!(
                            "'#' must be the last segment in {raw:?}"
                        )));
                    }
                    segments.push(FilterSegment::MultiLevel);
                }
                s => {
                    if s.contains(['+', '#']) {
                        return Err(DcdbError::Topic(format!(
                            "wildcard inside segment {s:?} in {raw:?}"
                        )));
                    }
                    segments.push(FilterSegment::Literal(s.to_string()));
                }
            }
        }
        let mut norm = String::new();
        for s in &segments {
            norm.push('/');
            match s {
                FilterSegment::Literal(l) => norm.push_str(l),
                FilterSegment::SingleLevel => norm.push('+'),
                FilterSegment::MultiLevel => norm.push('#'),
            }
        }
        Ok(TopicFilter {
            segments,
            raw: norm,
        })
    }

    /// Builds a filter matching exactly one topic.
    pub fn exact(topic: &Topic) -> TopicFilter {
        TopicFilter {
            segments: topic
                .segments()
                .map(|s| FilterSegment::Literal(s.to_string()))
                .collect(),
            raw: topic.as_str().to_string(),
        }
    }

    /// The normalized filter string.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The parsed segments.
    pub fn segments(&self) -> &[FilterSegment] {
        &self.segments
    }

    /// True if this filter matches `topic` under MQTT semantics.
    pub fn matches(&self, topic: &Topic) -> bool {
        let topic_segs: Vec<&str> = topic.segments().collect();
        Self::match_rec(&self.segments, &topic_segs)
    }

    fn match_rec(filter: &[FilterSegment], topic: &[&str]) -> bool {
        match (filter.first(), topic.first()) {
            (None, None) => true,
            (Some(FilterSegment::MultiLevel), _) => true, // matches rest, even empty
            (None, Some(_)) => false,
            (Some(_), None) => false,
            (Some(FilterSegment::Literal(l)), Some(t)) => {
                l == t && Self::match_rec(&filter[1..], &topic[1..])
            }
            (Some(FilterSegment::SingleLevel), Some(_)) => {
                Self::match_rec(&filter[1..], &topic[1..])
            }
        }
    }

    /// True if the filter contains no wildcards (matches one topic).
    pub fn is_exact(&self) -> bool {
        self.segments
            .iter()
            .all(|s| matches!(s, FilterSegment::Literal(_)))
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl std::str::FromStr for TopicFilter {
    type Err = DcdbError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicFilter::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }
    fn f(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    #[test]
    fn literal_filters() {
        let filt = f("/rack1/node2/power");
        assert!(filt.matches(&t("/rack1/node2/power")));
        assert!(!filt.matches(&t("/rack1/node2/temp")));
        assert!(!filt.matches(&t("/rack1/node2")));
        assert!(!filt.matches(&t("/rack1/node2/power/extra")));
        assert!(filt.is_exact());
    }

    #[test]
    fn single_level_wildcard() {
        let filt = f("/rack1/+/power");
        assert!(filt.matches(&t("/rack1/node2/power")));
        assert!(filt.matches(&t("/rack1/node9/power")));
        assert!(!filt.matches(&t("/rack1/power")));
        assert!(!filt.matches(&t("/rack1/a/b/power")));
        assert!(!filt.is_exact());
    }

    #[test]
    fn multi_level_wildcard() {
        let filt = f("/rack1/#");
        assert!(filt.matches(&t("/rack1/node2/power")));
        assert!(filt.matches(&t("/rack1/x")));
        assert!(filt.matches(&t("/rack1")));
        assert!(!filt.matches(&t("/rack2/x")));
    }

    #[test]
    fn root_multi_level_matches_all() {
        let filt = f("/#");
        assert!(filt.matches(&t("/a")));
        assert!(filt.matches(&t("/a/b/c/d")));
        let bare = f("#");
        assert!(bare.matches(&t("/anything")));
    }

    #[test]
    fn leading_plus_combinations() {
        let filt = f("/+/+/power");
        assert!(filt.matches(&t("/r1/n1/power")));
        assert!(!filt.matches(&t("/r1/power")));
        let tail = f("/+/#");
        assert!(tail.matches(&t("/r1")));
        assert!(tail.matches(&t("/r1/n1/s1")));
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "/", "/a/#/b", "/a/b#", "/a/+x/b", "/a//b"] {
            assert!(TopicFilter::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn exact_from_topic() {
        let topic = t("/r1/n1/power");
        let filt = TopicFilter::exact(&topic);
        assert!(filt.is_exact());
        assert!(filt.matches(&topic));
        assert_eq!(filt.as_str(), "/r1/n1/power");
    }

    #[test]
    fn normalization() {
        assert_eq!(f("rack1/+/power").as_str(), "/rack1/+/power");
        assert_eq!(f("/rack1/#/").as_str(), "/rack1/#");
    }

    #[test]
    fn trailing_separators_normalize_and_empty_segments_reject() {
        // Leading/trailing separator runs are tolerated and normalized
        // away on otherwise-valid filters…
        assert_eq!(f("/a/+/").as_str(), "/a/+");
        assert!(f("/a/+/").matches(&t("/a/x")));
        assert_eq!(f("/a/b/").as_str(), "/a/b");
        assert_eq!(f("/+//").as_str(), "/+");
        assert_eq!(f("//#").as_str(), "/#");
        // …but empty *interior* segments are malformed, not wildcards.
        for bad in ["//", "/a//+", "/a//b/#"] {
            assert!(TopicFilter::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn overlapping_segment_prefixes_do_not_match() {
        // Segment names that are byte-prefixes of each other must stay
        // distinct under every wildcard shape — the federation router
        // relies on this when fanning subscriptions across shards.
        let exact = f("/r1/n1/power");
        assert!(!exact.matches(&t("/r1/n11/power")));
        assert!(!f("/r1/n1/#").matches(&t("/r1/n11/power")));
        assert!(f("/r1/n1/#").matches(&t("/r1/n1/power")));
        assert!(f("/r1/+/power").matches(&t("/r1/n11/power")));
        assert!(!f("/r1/n1").matches(&t("/r1/n11")));
    }

    #[test]
    fn multi_level_matches_exact_parent_but_not_siblings() {
        let filt = f("/r1/n1/#");
        // `#` matches the parent itself (zero trailing segments)…
        assert!(filt.matches(&t("/r1/n1")));
        // …and arbitrarily deep children…
        assert!(filt.matches(&t("/r1/n1/cpu0/cycles")));
        // …but never a sibling or an ancestor.
        assert!(!filt.matches(&t("/r1/n2")));
        assert!(!filt.matches(&t("/r1")));
    }

    #[test]
    fn plus_never_spans_segments() {
        let filt = f("/+/power");
        assert!(filt.matches(&t("/n1/power")));
        assert!(!filt.matches(&t("/n1/x/power")));
        // `+` must also not match "nothing".
        assert!(!filt.matches(&t("/power")));
    }

    #[test]
    fn exact_filter_and_ring_keyspace_agree() {
        // A filter built from a topic matches exactly that topic and
        // nothing that merely shares a byte prefix.
        let topic = t("/rack00/node03/power");
        let filt = TopicFilter::exact(&topic);
        assert!(filt.matches(&topic));
        assert!(!filt.matches(&t("/rack00/node030/power")));
        assert!(!filt.matches(&t("/rack00/node03/power2")));
        assert!(!filt.matches(&t("/rack00/node03")));
    }
}
