//! On-demand operators and plugin management over the RESTful API
//! (paper §IV-B b, §V-A).
//!
//! Starts a Collect-Agent-style deployment with a real HTTP server and
//! drives it like an external tool would: list plugins, query a unit
//! on demand, read raw sensor data, and stop/start a plugin.
//!
//! Run with:
//! ```text
//! cargo run --example rest_control
//! ```

use dcdb_bus::Broker;
use dcdb_collectagent::{CollectAgent, CollectAgentConfig};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_rest::{http_request, Method, RestServer, Router};
use dcdb_storage::StorageBackend;
use std::sync::Arc;
use wintermute::prelude::*;
use wintermute_plugins::AggregatorPlugin;

fn main() {
    // --- A Collect Agent with some sensor data and an aggregator. ---
    let broker = Broker::new_sync();
    let storage = Arc::new(StorageBackend::new());
    let agent = Arc::new(
        CollectAgent::new(CollectAgentConfig::default(), &broker.handle(), storage).unwrap(),
    );
    let bus = broker.handle();
    for node in 0..3 {
        for sec in 1..=30u64 {
            bus.publish_readings(
                Topic::parse(&format!("/rack0/node{node}/power")).unwrap(),
                &[SensorReading::new(
                    100 + node as i64 * 40 + (sec % 7) as i64,
                    Timestamp::from_secs(sec),
                )],
            )
            .unwrap();
        }
    }
    agent.process_pending();

    agent.manager().register_plugin(Box::new(AggregatorPlugin));
    agent
        .manager()
        .load(
            PluginConfig::online("node-power-avg", "aggregator", 1000)
                .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
                .with_option("window_ms", 30_000u64),
        )
        .unwrap();
    agent.tick(Timestamp::from_secs(31));

    // --- Serve the REST API on an ephemeral port. ---
    let mut router = Router::new();
    agent.mount_routes(&mut router);
    let server = RestServer::serve("127.0.0.1:0", router).expect("bind");
    let addr = server.addr();
    println!("REST control API listening on http://{addr}\n");

    let get = |path: &str| {
        let (code, body) = http_request(addr, Method::Get, path, b"").expect("request");
        println!("GET {path}\n  -> {code}: {body}\n");
        body
    };
    let put = |path: &str| {
        let (code, body) = http_request(addr, Method::Put, path, b"").expect("request");
        println!("PUT {path}\n  -> {code}: {body}\n");
    };

    // List loaded analytics plugins.
    get("/analytics/plugins");
    // The units the aggregator resolved (one per node).
    get("/analytics/plugins/node-power-avg/units");
    // On-demand computation of one unit — output returned, not stored.
    get("/analytics/compute/node-power-avg?unit=/rack0/node2");
    // Raw sensor readings straight from caches/storage.
    get("/sensors/rack0/node1/power?from_s=28&to_s=30");
    // Lifecycle management.
    put("/analytics/plugins/node-power-avg/stop");
    get("/analytics/plugins");
    put("/analytics/plugins/node-power-avg/start");

    println!("done; shutting the server down.");
}
