//! Derived performance metrics plugin (paper §VI-C, first pipeline
//! stage — a re-implementation of PerSyst's node-level transport).
//!
//! "The first perfmetrics plugin, instantiated in the Pushers, takes as
//! input CPU and node-level data and computes as output a series of
//! derived performance metrics, such as cycles per instruction (CPI),
//! floating point operations per second (FLOPS) or vectorization ratio."
//!
//! Derived metrics are computed from **deltas of monotonic counters**
//! over the recent window, which is how perfevent data must be consumed.
//! Each unit (typically one CPU core) reads its counters and emits the
//! metrics named in the unit's outputs:
//!
//! * `cpi` — Δcycles / Δinstructions (fixed-point ×1000);
//! * `flops-rate` — Δflops per second;
//! * `miss-ratio` — Δcache-misses / Δinstructions (fixed-point ×1000);
//! * `opa-rate` — Δ(opa-xmit-bytes + opa-rcv-bytes) per second, the
//!   node-level interconnect bandwidth derived from the OPA plugin's
//!   counters.
//!
//! Which metric an output computes is inferred from the output sensor's
//! name, so one plugin instance can emit any subset.

use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::{encode_f64, SensorReading};
use dcdb_common::time::NS_PER_MS;
use wintermute::prelude::*;

/// Counter deltas extracted from one unit's window.
#[derive(Debug, Default, Clone, Copy)]
struct Deltas {
    cycles: f64,
    instructions: f64,
    cache_misses: f64,
    flops: f64,
    opa_bytes: f64,
    span_s: f64,
}

/// The perfmetrics operator.
pub struct PerfMetricsOperator {
    name: String,
    units: Vec<Unit>,
    window_ns: u64,
}

impl PerfMetricsOperator {
    fn deltas(&self, unit: &Unit, ctx: &ComputeContext<'_>) -> Deltas {
        let mut d = Deltas::default();
        for input in &unit.inputs {
            let readings = ctx.query.query(
                input,
                QueryMode::Relative {
                    offset_ns: self.window_ns,
                },
            );
            if readings.len() < 2 {
                continue;
            }
            let first = readings.first().unwrap();
            let last = readings.last().unwrap();
            let delta = (last.value - first.value) as f64;
            let span = last.ts.elapsed_since(first.ts) as f64 / 1e9;
            match input.name() {
                "cycles" => {
                    d.cycles = delta;
                    d.span_s = span;
                }
                "instructions" => d.instructions = delta,
                "cache-misses" => d.cache_misses = delta,
                "flops" => d.flops = delta,
                "opa-xmit-bytes" | "opa-rcv-bytes" => {
                    d.opa_bytes += delta;
                    if d.span_s <= 0.0 {
                        d.span_s = span;
                    }
                }
                _ => {}
            }
        }
        d
    }
}

impl Operator for PerfMetricsOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn units(&self) -> &[Unit] {
        &self.units
    }

    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
        let unit = &self.units[i];
        let d = self.deltas(unit, ctx);
        let mut out = Vec::new();
        for output in &unit.outputs {
            let value = match output.name() {
                "cpi" => {
                    if d.instructions <= 0.0 {
                        continue; // idle core this window: no metric
                    }
                    encode_f64(d.cycles / d.instructions)
                }
                "flops-rate" => {
                    if d.span_s <= 0.0 {
                        continue;
                    }
                    finite_output("perfmetrics flops-rate", d.flops / d.span_s)?
                }
                "miss-ratio" => {
                    if d.instructions <= 0.0 {
                        continue;
                    }
                    encode_f64(d.cache_misses / d.instructions)
                }
                "opa-rate" => {
                    if d.span_s <= 0.0 {
                        continue;
                    }
                    finite_output("perfmetrics opa-rate", d.opa_bytes / d.span_s)?
                }
                other => {
                    return Err(DcdbError::Config(format!(
                        "perfmetrics: unknown derived metric {other:?}"
                    )))
                }
            };
            out.push((output.clone(), SensorReading::new(value, ctx.now)));
        }
        Ok(out)
    }
}

/// The plugin factory.
pub struct PerfMetricsPlugin;

impl OperatorPlugin for PerfMetricsPlugin {
    fn kind(&self) -> &str {
        "perfmetrics"
    }

    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>> {
        let window_ns = config.options.u64_or("window_ms", 2500) * NS_PER_MS;
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |name, units| {
            Ok(Box::new(PerfMetricsOperator {
                name,
                units,
                window_ns,
            }) as Box<dyn Operator>)
        })
    }
}

/// Decodes a fixed-point CPI reading back to a float (helper shared
/// with the persyst stage and the figure harnesses).
pub fn decode_cpi(reading: &SensorReading) -> f64 {
    dcdb_common::reading::decode_f64(reading.value)
}

/// Convenience: the standard perfmetrics configuration used by the
/// paper's job-analysis pipeline — one unit per CPU core, CPI output.
pub fn cpi_config(name: &str, interval_ms: u64) -> PluginConfig {
    PluginConfig::online(name, "perfmetrics", interval_ms).with_patterns(
        &[
            "<bottomup, filter cpu>cycles",
            "<bottomup, filter cpu>instructions",
        ],
        &["<bottomup, filter cpu>cpi"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::{Timestamp, Topic};
    use std::sync::Arc;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// Seeds two cores with counters implying CPI 2.0 and 4.0.
    fn engine() -> Arc<QueryEngine> {
        let qe = Arc::new(QueryEngine::new(64));
        for sec in 0..=10u64 {
            // Core 0: 2e9 cycles/s, 1e9 instr/s -> CPI 2.
            qe.insert(
                &t("/n0/cpu0/cycles"),
                SensorReading::new((sec * 2_000_000_000) as i64, Timestamp::from_secs(sec)),
            );
            qe.insert(
                &t("/n0/cpu0/instructions"),
                SensorReading::new((sec * 1_000_000_000) as i64, Timestamp::from_secs(sec)),
            );
            qe.insert(
                &t("/n0/cpu0/flops"),
                SensorReading::new((sec * 500_000_000) as i64, Timestamp::from_secs(sec)),
            );
            qe.insert(
                &t("/n0/cpu0/cache-misses"),
                SensorReading::new((sec * 10_000_000) as i64, Timestamp::from_secs(sec)),
            );
            // Core 1: CPI 4.
            qe.insert(
                &t("/n0/cpu1/cycles"),
                SensorReading::new((sec * 2_000_000_000) as i64, Timestamp::from_secs(sec)),
            );
            qe.insert(
                &t("/n0/cpu1/instructions"),
                SensorReading::new((sec * 500_000_000) as i64, Timestamp::from_secs(sec)),
            );
        }
        qe.rebuild_navigator();
        qe
    }

    fn manager() -> Arc<OperatorManager> {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(PerfMetricsPlugin));
        mgr
    }

    #[test]
    fn cpi_from_counter_deltas() {
        let mgr = manager();
        mgr.load(cpi_config("pm", 1000).with_option("window_ms", 3000u64))
            .unwrap();
        let report = mgr.tick(Timestamp::from_secs(11));
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let cpi0 = mgr
            .query_engine()
            .query(&t("/n0/cpu0/cpi"), QueryMode::Latest);
        assert!(
            (decode_cpi(&cpi0[0]) - 2.0).abs() < 0.05,
            "{}",
            decode_cpi(&cpi0[0])
        );
        let cpi1 = mgr
            .query_engine()
            .query(&t("/n0/cpu1/cpi"), QueryMode::Latest);
        assert!((decode_cpi(&cpi1[0]) - 4.0).abs() < 0.1);
    }

    #[test]
    fn flops_rate_and_miss_ratio() {
        let mgr = manager();
        let cfg = PluginConfig::online("pm", "perfmetrics", 1000)
            .with_patterns(
                &[
                    "<bottomup, filter ^cpu0$>cycles",
                    "<bottomup, filter ^cpu0$>instructions",
                    "<bottomup, filter ^cpu0$>flops",
                    "<bottomup, filter ^cpu0$>cache-misses",
                ],
                &[
                    "<bottomup, filter ^cpu0$>flops-rate",
                    "<bottomup, filter ^cpu0$>miss-ratio",
                ],
            )
            .with_option("window_ms", 4000u64);
        mgr.load(cfg).unwrap();
        mgr.tick(Timestamp::from_secs(11));
        let fr = mgr
            .query_engine()
            .query(&t("/n0/cpu0/flops-rate"), QueryMode::Latest);
        assert!(
            (fr[0].value - 500_000_000).abs() < 10_000_000,
            "{}",
            fr[0].value
        );
        let mr = mgr
            .query_engine()
            .query(&t("/n0/cpu0/miss-ratio"), QueryMode::Latest);
        assert!((decode_cpi(&mr[0]) - 0.01).abs() < 0.001);
    }

    #[test]
    fn opa_rate_from_byte_counters() {
        let qe = Arc::new(QueryEngine::new(16));
        for sec in 0..=5u64 {
            qe.insert(
                &t("/n0/opa-xmit-bytes"),
                SensorReading::new((sec * 1_000_000) as i64, Timestamp::from_secs(sec)),
            );
            qe.insert(
                &t("/n0/opa-rcv-bytes"),
                SensorReading::new((sec * 500_000) as i64, Timestamp::from_secs(sec)),
            );
        }
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(PerfMetricsPlugin));
        mgr.load(
            PluginConfig::online("net", "perfmetrics", 1000)
                .with_patterns(
                    &["<bottomup>opa-xmit-bytes", "<bottomup>opa-rcv-bytes"],
                    &["<bottomup>opa-rate"],
                )
                .with_option("window_ms", 4000u64),
        )
        .unwrap();
        let report = mgr.tick(Timestamp::from_secs(6));
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let rate = mgr
            .query_engine()
            .query(&t("/n0/opa-rate"), QueryMode::Latest);
        // 1.5 MB/s aggregate.
        assert!(
            (rate[0].value - 1_500_000).abs() < 100_000,
            "{}",
            rate[0].value
        );
    }

    #[test]
    fn idle_core_emits_nothing() {
        // Constant counters: no instructions retired this window.
        let qe = Arc::new(QueryEngine::new(16));
        qe.insert(
            &t("/n0/cpu0/cycles"),
            SensorReading::new(1000, Timestamp::from_secs(1)),
        );
        qe.insert(
            &t("/n0/cpu0/cycles"),
            SensorReading::new(1000, Timestamp::from_secs(2)),
        );
        qe.insert(
            &t("/n0/cpu0/instructions"),
            SensorReading::new(500, Timestamp::from_secs(1)),
        );
        qe.insert(
            &t("/n0/cpu0/instructions"),
            SensorReading::new(500, Timestamp::from_secs(2)),
        );
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(PerfMetricsPlugin));
        mgr.load(cpi_config("pm", 1000)).unwrap();
        let report = mgr.tick(Timestamp::from_secs(3));
        assert!(report.errors.is_empty());
        assert_eq!(report.outputs_published, 0);
    }

    #[test]
    fn unknown_metric_name_errors() {
        let mgr = manager();
        let cfg = PluginConfig::online("pm", "perfmetrics", 1000).with_patterns(
            &[
                "<bottomup, filter cpu>cycles",
                "<bottomup, filter cpu>instructions",
            ],
            &["<bottomup, filter cpu>bogus-metric"],
        );
        mgr.load(cfg).unwrap();
        let report = mgr.tick(Timestamp::from_secs(11));
        assert!(!report.errors.is_empty());
    }

    #[test]
    fn parallel_unit_mode_works() {
        let mgr = manager();
        mgr.load(
            cpi_config("pm", 1000)
                .with_unit_mode(UnitMode::Parallel)
                .with_option("window_ms", 3000u64),
        )
        .unwrap();
        let report = mgr.tick(Timestamp::from_secs(11));
        assert_eq!(report.operators_run, 2); // one per core
        assert_eq!(report.outputs_published, 2);
    }
}
