//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! [`Bytes`] is a cheaply-cloneable shared byte buffer (an `Arc<[u8]>`
//! plus a window), [`BytesMut`] a growable builder that freezes into
//! one. The [`Buf`]/[`BufMut`] traits cover the little-endian accessors
//! the workspace's frame codecs use.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable, immutable, shared slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Copies an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }

    /// Number of bytes in the (remaining) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", &**self)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read-side cursor over a byte buffer (little- and big-endian).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_array())
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write-side builder operations (little- and big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, n: i64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, n: i64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-5);
        b.put_u64_le(u64::MAX);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 21);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_i64_le(), -5);
        assert_eq!(frozen.get_u64_le(), u64::MAX);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slicing_shares_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }
}
