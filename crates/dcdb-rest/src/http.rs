//! Minimal HTTP/1.1 request/response types and codec.
//!
//! Every DCDB component exposes a RESTful control API (paper §IV-A);
//! Wintermute routes its management and on-demand-operator requests
//! through it (paper §V-A). The control plane is low-rate, so this
//! implementation favours clarity: blocking reads, no keep-alive
//! pipelining, no chunked encoding (bodies carry `Content-Length`).

use dcdb_common::error::DcdbError;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Invoke an action / submit data.
    Put,
    /// Invoke an action / submit data (treated like PUT by DCDB).
    Post,
    /// Remove a resource.
    Delete,
}

impl Method {
    /// Parses the method token.
    pub fn parse(s: &str) -> Result<Method, DcdbError> {
        match s {
            "GET" => Ok(Method::Get),
            "PUT" => Ok(Method::Put),
            "POST" => Ok(Method::Post),
            "DELETE" => Ok(Method::Delete),
            other => Err(DcdbError::Parse(format!("unsupported method {other:?}"))),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Put => "PUT",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        })
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path, without the query string.
    pub path: String,
    /// Query parameters in order-independent form.
    pub query: BTreeMap<String, String>,
    /// Header map, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
    /// Path parameters filled in by the router (`:name` segments).
    pub params: BTreeMap<String, String>,
}

impl Request {
    /// Builds a request programmatically (used by in-process dispatch
    /// and tests).
    pub fn new(method: Method, path_and_query: &str) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
            params: BTreeMap::new(),
        }
    }

    /// Builder-style body attachment.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// A query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// A router path parameter by name.
    pub fn path_param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Reads and parses one request from a stream.
    pub fn read_from<R: Read>(stream: R) -> Result<Request, DcdbError> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let target = parts
            .next()
            .ok_or_else(|| DcdbError::Parse("missing request target".into()))?;
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(DcdbError::Parse(format!("bad HTTP version {version:?}")));
        }
        let (path, query) = split_query(target);

        let mut headers = BTreeMap::new();
        loop {
            let mut hline = String::new();
            reader.read_line(&mut hline)?;
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            } else {
                return Err(DcdbError::Parse(format!("malformed header {trimmed:?}")));
            }
        }

        let len: usize = headers
            .get("content-length")
            .map(|v| {
                v.parse()
                    .map_err(|_| DcdbError::Parse("bad Content-Length".into()))
            })
            .transpose()?
            .unwrap_or(0);
        const MAX_BODY: usize = 16 * 1024 * 1024;
        if len > MAX_BODY {
            return Err(DcdbError::Parse(format!("body too large: {len} bytes")));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            params: BTreeMap::new(),
        })
    }
}

fn split_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (percent_decode(target), BTreeMap::new()),
        Some((p, q)) => {
            let mut map = BTreeMap::new();
            for pair in q.split('&').filter(|s| !s.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => map.insert(percent_decode(k), percent_decode(v)),
                    None => map.insert(percent_decode(pair), String::new()),
                };
            }
            (percent_decode(p), map)
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// HTTP status codes used by the DCDB control APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200
    Ok,
    /// 201
    Created,
    /// 204
    NoContent,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 409
    Conflict,
    /// 500
    InternalError,
    /// 503
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::NoContent => 204,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::Conflict => 409,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::NoContent => "No Content",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::Conflict => "Conflict",
            Status::InternalError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line code.
    pub status: Status,
    /// Content type header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// 200 with a JSON body.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
        }
    }

    /// An error response with a plain-text message.
    pub fn error(status: Status, msg: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: msg.into().into_bytes(),
        }
    }

    /// 204 without a body.
    pub fn no_content() -> Response {
        Response {
            status: Status::NoContent,
            content_type: String::new(),
            body: Vec::new(),
        }
    }

    /// Changes the status keeping body/type.
    pub fn with_status(mut self, status: Status) -> Response {
        self.status = status;
        self
    }

    /// Body interpreted as UTF-8 (tests / in-process callers).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// Serializes the response to a stream.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        )?;
        if !self.content_type.is_empty() {
            write!(w, "Content-Type: {}\r\n", self.content_type)?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_get() {
        let raw = b"GET /analytics/plugins?detail=full HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::read_from(&raw[..]).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/analytics/plugins");
        assert_eq!(req.query_param("detail"), Some("full"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parse_put_with_body() {
        let raw = b"PUT /analytics/start HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = Request::read_from(&raw[..]).unwrap();
        assert_eq!(req.method, Method::Put);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Request::read_from(&b"NOPE / HTTP/1.1\r\n\r\n"[..]).is_err());
        assert!(Request::read_from(&b"GET /\r\n\r\n"[..]).is_err());
        assert!(Request::read_from(&b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n"[..]).is_err());
        assert!(Request::read_from(&b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn parse_truncated_body_errors() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(Request::read_from(&raw[..]).is_err());
    }

    #[test]
    fn query_decoding() {
        let req = Request::new(Method::Get, "/q?a=1&b=two%20words&flag&c=x+y");
        assert_eq!(req.query_param("a"), Some("1"));
        assert_eq!(req.query_param("b"), Some("two words"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("c"), Some("x y"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("%2Fpath"), "/path");
        assert_eq!(percent_decode("a%"), "a%");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zz"), "a%zz");
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json("{\"ok\":true}");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Type: application/json"));
        assert!(s.contains("Content-Length: 11"));
        assert!(s.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn response_constructors() {
        assert_eq!(Response::no_content().status.code(), 204);
        assert_eq!(Response::error(Status::NotFound, "x").status.code(), 404);
        assert_eq!(
            Response::text("t")
                .with_status(Status::Created)
                .status
                .code(),
            201
        );
        assert_eq!(Status::InternalError.reason(), "Internal Server Error");
    }
}
