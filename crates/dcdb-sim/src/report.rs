//! The result of one simulated scenario run: the determinism witness,
//! the conservation-identity verdicts, and the SLO numbers.
//!
//! Everything in here is a pure function of `(scenario, seed, scale)`:
//! [`CounterSummary`] and the trace witness are compared byte-for-byte
//! by the determinism property test, so nothing wall-clock-derived may
//! appear in them (wall durations live in the surrounding bench meta,
//! never in the report).

use serde::Serialize;

/// Verdicts of the conservation identities the run asserted. Each
/// identity is a per-layer accounting law that must hold *under*
/// injected faults — faults move readings between the terms, they never
/// make the books stop balancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IdentityReport {
    /// Broker tier: `published == delivered + dropped + router_dropped`
    /// across the federation's internal brokers.
    pub bus: bool,
    /// Supervised-connection tier, summed over every connection:
    /// `offered == published + spool_dropped + spool_depth_end +
    /// final_errors`.
    pub delivery: bool,
    /// Chaos layer → federation chain: every publish the chaos layer
    /// forwarded (`passed + released`) is accounted by the federation
    /// as accepted or refused.
    pub chaos_chain: bool,
    /// Durable-engine health books on every faulted shard:
    /// `ingested == durable + buffered + shed`. Vacuously true when the
    /// scenario runs volatile storage.
    pub storage: bool,
    /// Operator runtime: `runs == successes + errors + panics +
    /// overruns + quarantined_skips`. Vacuously true when the operator
    /// lane is off.
    pub operators: bool,
    /// Every query envelope satisfied `shards_total == shards_ok +
    /// shards_timed_out + shards_down`.
    pub envelopes: bool,
}

impl IdentityReport {
    /// True when every identity held.
    pub fn all(&self) -> bool {
        self.bus
            && self.delivery
            && self.chaos_chain
            && self.storage
            && self.operators
            && self.envelopes
    }
}

/// Deterministic end-of-run counters. Two runs of the same
/// `(scenario, seed, scale)` must produce an identical summary — the
/// determinism test compares this struct with `==` alongside the trace
/// witness.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CounterSummary {
    /// Readings handed to the delivery tier as fresh batches.
    pub offered: u64,
    /// Readings the delivery tier published (fresh + drained re-sends).
    pub published: u64,
    /// Readings evicted from spools (overflow policy).
    pub spool_dropped: u64,
    /// Readings still parked in spools at the end of the run.
    pub spool_depth_end: u64,
    /// Readings that could neither be published nor spooled.
    pub delivery_final_errors: u64,
    /// Publishes refused by chaos outage windows or partitions.
    pub chaos_refused: u64,
    /// Publishes accepted by the chaos layer but silently dropped.
    pub chaos_dropped: u64,
    /// Publishes forwarded to the federation inline.
    pub chaos_passed: u64,
    /// Delayed publishes released to the federation.
    pub chaos_released: u64,
    /// Publishes the federation accepted.
    pub fed_publishes: u64,
    /// Publishes the federation refused (owning shard down).
    pub fed_refused: u64,
    /// Sum of `ingested` over faulted durable engines (0 if volatile).
    pub storage_ingested: u64,
    /// Sum of `durable` over faulted durable engines.
    pub storage_durable: u64,
    /// Sum of `buffered` over faulted durable engines.
    pub storage_buffered: u64,
    /// Sum of `shed` over faulted durable engines.
    pub storage_shed: u64,
    /// Operator computations due (all outcomes).
    pub operator_runs: u64,
    /// Contained operator panics.
    pub operator_panics: u64,
    /// Operator errors.
    pub operator_errors: u64,
    /// Operators currently quarantined at the end of the run.
    pub operator_quarantined: u64,
    /// Standby promotions across all shards.
    pub promotions: u64,
    /// Shards degraded out of the ring (no standby to promote).
    pub degraded_removals: u64,
    /// Kill actions the scheduler applied.
    pub kills: u64,
    /// Rejoin actions the scheduler applied.
    pub rejoins: u64,
    /// Scatter-gather queries issued (routine probes + storms).
    pub queries: u64,
    /// Queries whose envelope was not complete.
    pub partial_queries: u64,
    /// Queries issued by flash-crowd storm bursts alone.
    pub storm_queries: u64,
}

/// Service-level numbers the harness grades, scenario-independent.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    /// Fraction of queries whose envelope was complete.
    pub complete_query_ratio: f64,
    /// Chaos-layer silent losses over readings offered.
    pub drop_ratio: f64,
    /// Readings shed by storage over publishes the federation accepted.
    pub shed_ratio: f64,
    /// Every kill of a replicated shard was answered by a promotion or
    /// an explicit degraded removal (no silent zombie shards).
    pub failovers_resolved: bool,
    /// The SLO gates held: a majority of queries complete, silent loss
    /// bounded by the injected drop schedule, failovers resolved.
    pub ok: bool,
}

/// The full, serializable outcome of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Scenario name (registry key).
    pub scenario: String,
    /// The single seed every fault lane derived from.
    pub seed: u64,
    /// Scale label (`tiny` / `small` / `large`).
    pub scale: String,
    /// Simulated nodes in the topology.
    pub nodes: usize,
    /// Islands in the topology.
    pub islands: usize,
    /// Collect Agents in the federation.
    pub agents: usize,
    /// Ingest rounds driven.
    pub rounds: u64,
    /// Events appended to the canonical trace.
    pub trace_events: u64,
    /// The determinism witness: `"{events}:{fnv1a64:016x}"` over the
    /// canonical trace. Two runs of the same `(scenario, seed, scale)`
    /// must produce identical witnesses.
    pub trace_hash: String,
    /// The last few trace lines, for diagnosing a witness mismatch.
    pub trace_tail: Vec<String>,
    /// Per-layer conservation verdicts.
    pub identities: IdentityReport,
    /// Deterministic end-of-run counters.
    pub counters: CounterSummary,
    /// Graded service levels.
    pub slo: SloReport,
    /// Identities all held and the SLO gates passed.
    pub ok: bool,
}
