//! Property tests for the ML kernels: structural invariants that must
//! hold for arbitrary data, not just the happy paths of the unit tests.

use oda_ml::forest::{ForestConfig, RandomForest};
use oda_ml::kmeans::kmeans;
use oda_ml::stats::{deciles, mean, quantile, standardize, std_dev};
use oda_ml::tree::{RegressionTree, TreeConfig};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (2usize..40, 1usize..4).prop_flat_map(|(n, d)| {
        (
            prop::collection::vec(prop::collection::vec(-100.0f64..100.0, d..=d), n..=n),
            prop::collection::vec(-100.0f64..100.0, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_predictions_stay_within_target_range((x, y) in dataset()) {
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), 7);
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for xi in &x {
            let p = tree.predict(xi);
            // Leaf values are means of training targets: always inside
            // the convex hull of y.
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn forest_predictions_stay_within_target_range((x, y) in dataset()) {
        let cfg = ForestConfig { n_trees: 5, parallel: false, ..Default::default() };
        let forest = RandomForest::fit(&x, &y, &cfg);
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for xi in x.iter().take(5) {
            let p = forest.predict(xi);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn tree_is_exact_on_training_data_with_unlimited_depth(
        xs in prop::collection::vec(-50f64..50.0, 2..20),
    ) {
        // Distinct single-feature inputs, zero-noise targets: a deep
        // tree with min leaf 1 must memorize exactly.
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        prop_assume!(xs.len() >= 2);
        let x: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let y: Vec<f64> = xs.iter().map(|&v| v * 3.0 + 1.0).collect();
        let cfg = TreeConfig {
            max_depth: 64,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, 0);
        for (xi, yi) in x.iter().zip(y.iter()) {
            prop_assert!((tree.predict(xi) - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn kmeans_labels_are_valid_and_exhaustive(
        data in prop::collection::vec(
            prop::collection::vec(-10f64..10.0, 2..=2), 1..50),
        k in 1usize..6,
    ) {
        let result = kmeans(&data, k, 30, 5);
        let k_eff = k.min(data.len());
        prop_assert_eq!(result.labels.len(), data.len());
        prop_assert!(result.labels.iter().all(|&l| l < k_eff));
        prop_assert!(result.inertia >= 0.0);
        prop_assert_eq!(result.centroids.len(), k_eff);
    }

    #[test]
    fn quantiles_are_order_statistics(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        q in 0.0f64..1.0,
    ) {
        let v = quantile(&xs, q);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        // Monotone in q.
        let v2 = quantile(&xs, (q + 0.1).min(1.0));
        prop_assert!(v2 >= v - 1e-9);
    }

    #[test]
    fn deciles_partition_consistently(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let d = deciles(&xs);
        // At most i/10 of the data lies strictly below decile i.
        for (i, &di) in d.iter().enumerate() {
            let below = xs.iter().filter(|&&x| x < di - 1e-9).count();
            prop_assert!(
                below as f64 <= (i as f64 / 10.0) * xs.len() as f64 + 1.0,
                "decile {i}: {below} of {} strictly below", xs.len()
            );
        }
    }

    #[test]
    fn standardize_preserves_shape(
        data in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3..=3), 2..40),
    ) {
        let (means, stds, scaled) = standardize(&data);
        prop_assert_eq!(means.len(), 3);
        prop_assert_eq!(scaled.len(), data.len());
        for j in 0..3 {
            let col: Vec<f64> = scaled.iter().map(|r| r[j]).collect();
            prop_assert!(mean(&col).abs() < 1e-6);
            let s = std_dev(&col);
            // Either unit variance or a constant column passed through.
            prop_assert!((s - 1.0).abs() < 1e-6 || s < 1e-6, "std {s}");
            prop_assert!(stds[j] > 0.0);
        }
    }
}
