//! Figure 8 — identification of performance anomalies via Bayesian
//! gaussian mixture clustering (paper §VI-D).
//!
//! A clustering operator in the Collect Agent holds one unit per
//! compute node with inputs (power, temperature, CPU idle time). At
//! each (hourly, in production) computation it averages each input over
//! a long window (2 weeks in the paper), treats each node as a 3-D
//! point, and fits a Bayesian GMM. The paper finds three clusters —
//! under-utilized, normal, heavily loaded — plus outliers below the
//! 0.001 probability threshold, among them one node drawing ~20 % more
//! power than its idle time predicts.
//!
//! The simulated cluster plants exactly that structure through node
//! behavioural profiles, so the reproduction must recover the three
//! groups and flag the planted anomalous nodes.

use dcdb_common::reading::decode_f64;
use dcdb_common::time::{Timestamp, NS_PER_SEC};
use dcdb_common::topic::Topic;
use serde::Serialize;
use sim_cluster::{ClusterConfig, ClusterSimulator, ProfileClass};
use std::collections::HashMap;
use std::sync::Arc;
use wintermute::prelude::*;
use wintermute_plugins::clustering::node_clustering_config;
use wintermute_plugins::ClusteringPlugin;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Virtual duration of the monitoring window, seconds (paper: two
    /// weeks; the simulation compresses the same behavioural contrast
    /// into less virtual time).
    pub duration_s: u64,
    /// Sampling interval, seconds (paper: 10 s).
    pub sample_interval_s: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Fig8Config {
    /// Default: one virtual hour at 10 s sampling on 148 nodes.
    pub fn default_run() -> Fig8Config {
        Fig8Config {
            duration_s: 3600,
            sample_interval_s: 10,
            seed: 0xF18,
        }
    }
}

/// One node's averaged metrics and assigned cluster.
#[derive(Debug, Clone, Serialize)]
pub struct NodePoint {
    /// Global node index.
    pub node: usize,
    /// Window-average power, watts.
    pub power_w: f64,
    /// Window-average temperature, °C.
    pub temp_c: f64,
    /// Window-average idle time, ms of idle per second.
    pub idle_ms_per_s: f64,
    /// Cluster label; `-1` = outlier.
    pub label: i64,
    /// Ground-truth behavioural profile.
    pub profile: String,
}

/// Summary of one discovered cluster.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterSummary {
    /// Cluster label.
    pub label: i64,
    /// Member count.
    pub nodes: usize,
    /// Mean power of members, watts.
    pub mean_power_w: f64,
    /// Mean temperature, °C.
    pub mean_temp_c: f64,
    /// Mean idle, ms/s.
    pub mean_idle_ms_per_s: f64,
}

/// The experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// Per-node points (the scatter of Fig. 8).
    pub points: Vec<NodePoint>,
    /// Discovered clusters.
    pub clusters: Vec<ClusterSummary>,
    /// Nodes flagged as outliers.
    pub outliers: Vec<usize>,
    /// Fraction of non-anomalous nodes whose cluster is the majority
    /// cluster of their ground-truth profile (label purity).
    pub profile_agreement: f64,
    /// True if both planted anomalous nodes were flagged.
    pub anomalies_flagged: bool,
}

/// Runs the clustering case study on the 148-node simulated system.
pub fn run(config: &Fig8Config) -> Fig8Result {
    let mut sim = ClusterSimulator::new(ClusterConfig::coolmuc3(config.seed));
    // Short, frequent jobs: every node's realized utilization converges
    // tightly to its profile's duty cycle within the window, giving the
    // clustering the same modal structure the production system shows.
    if let Some(w) = sim.workload_mut() {
        w.mean_interarrival_s = 2.0;
        w.duration_range_s = (60.0, 180.0);
        w.size_range = (1, 4);
    }
    let profiles = sim.profiles().to_vec();
    let total_nodes = sim.topology().total_nodes;

    // Collect-Agent-style engine: big enough caches to hold the window.
    let slots = (config.duration_s / config.sample_interval_s) as usize + 2;
    let query = Arc::new(QueryEngine::new(slots));
    let manager = OperatorManager::new(Arc::clone(&query));
    manager.register_plugin(Box::new(ClusteringPlugin));

    // Long-horizon monitoring at node granularity.
    let mut now = Timestamp::from_secs(1);
    let end = now.saturating_add_ns(config.duration_s * NS_PER_SEC);
    while now < end {
        for (topic, reading) in sim.tick_node_level(now) {
            query.insert(&topic, reading);
        }
        now = now.saturating_add_ns(config.sample_interval_s * NS_PER_SEC);
    }
    query.rebuild_navigator();

    manager
        .load(
            node_clustering_config("bgmm", 1000)
                .with_option("window_ms", config.duration_s * 1000)
                .with_option("seed", config.seed),
        )
        .expect("clustering loads");
    let report = manager.tick(now);
    assert!(
        report.errors.is_empty(),
        "clustering errors: {:?}",
        report.errors
    );

    // Gather per-node averages + labels.
    let window_ns = config.duration_s * NS_PER_SEC;
    let mut points = Vec::with_capacity(total_nodes);
    let topology = sim.topology().clone();
    for (node, node_profile) in profiles.iter().enumerate().take(total_nodes) {
        let base = topology.node_topic(node);
        let avg_of = |name: &str, fixed: bool| -> f64 {
            let vals: Vec<f64> = query
                .query(
                    &base.child(name).unwrap(),
                    QueryMode::Relative {
                        offset_ns: window_ns,
                    },
                )
                .iter()
                .map(|r| {
                    if fixed {
                        decode_f64(r.value)
                    } else {
                        r.value as f64
                    }
                })
                .collect();
            oda_ml::stats::mean(&vals)
        };
        let idle_series = query.query(
            &base.child("cpu-idle").unwrap(),
            QueryMode::Relative {
                offset_ns: window_ns,
            },
        );
        let idle_rate = match (idle_series.first(), idle_series.last()) {
            (Some(a), Some(b)) if b.ts > a.ts => {
                (b.value - a.value) as f64 / (b.ts.elapsed_since(a.ts) as f64 / 1e9)
            }
            _ => 0.0,
        };
        let label = query
            .query(&base.child("cluster-label").unwrap(), QueryMode::Latest)
            .first()
            .map(|r| r.value)
            .unwrap_or(i64::MIN);
        points.push(NodePoint {
            node,
            power_w: avg_of("power", false),
            temp_c: avg_of("temp", true),
            idle_ms_per_s: idle_rate,
            label,
            profile: format!("{node_profile:?}"),
        });
    }

    // Cluster summaries.
    let mut by_label: HashMap<i64, Vec<&NodePoint>> = HashMap::new();
    for p in &points {
        if p.label >= 0 {
            by_label.entry(p.label).or_default().push(p);
        }
    }
    let mut clusters: Vec<ClusterSummary> = by_label
        .iter()
        .map(|(&label, members)| ClusterSummary {
            label,
            nodes: members.len(),
            mean_power_w: oda_ml::stats::mean(
                &members.iter().map(|p| p.power_w).collect::<Vec<_>>(),
            ),
            mean_temp_c: oda_ml::stats::mean(&members.iter().map(|p| p.temp_c).collect::<Vec<_>>()),
            mean_idle_ms_per_s: oda_ml::stats::mean(
                &members.iter().map(|p| p.idle_ms_per_s).collect::<Vec<_>>(),
            ),
        })
        .collect();
    clusters.sort_by(|a, b| a.mean_power_w.partial_cmp(&b.mean_power_w).unwrap());

    let outliers: Vec<usize> = points
        .iter()
        .filter(|p| p.label == -1)
        .map(|p| p.node)
        .collect();

    // Purity: majority label per ground-truth class.
    let classes = [
        ProfileClass::Underutilized,
        ProfileClass::Normal,
        ProfileClass::Heavy,
    ];
    let mut agree = 0usize;
    let mut total = 0usize;
    for class in classes {
        let members: Vec<&NodePoint> = points
            .iter()
            .filter(|p| profiles[p.node] == class && p.label >= 0)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for m in &members {
            *counts.entry(m.label).or_default() += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        agree += majority;
        total += members.len();
    }
    let profile_agreement = if total > 0 {
        agree as f64 / total as f64
    } else {
        0.0
    };

    let anomalies_flagged = points
        .iter()
        .filter(|p| profiles[p.node] == ProfileClass::ExcessPower)
        .all(|p| p.label == -1);

    Fig8Result {
        points,
        clusters,
        outliers,
        profile_agreement,
        anomalies_flagged,
    }
}

/// The topic of one node's cluster label (shared with tests).
pub fn label_topic(node: usize) -> Topic {
    sim_cluster::Topology::coolmuc3()
        .node_topic(node)
        .child("cluster-label")
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_recovers_structure() {
        let result = run(&Fig8Config {
            duration_s: 3600,
            sample_interval_s: 30,
            seed: 11,
        });
        assert_eq!(result.points.len(), 148);
        assert!(
            (2..=4).contains(&result.clusters.len()),
            "clusters: {}",
            result.clusters.len()
        );
        assert!(
            result.profile_agreement > 0.75,
            "agreement {}",
            result.profile_agreement
        );
        // Clusters are ordered by power and separate idle behaviour:
        // lowest-power cluster idles the most.
        let first = result.clusters.first().unwrap();
        let last = result.clusters.last().unwrap();
        assert!(first.mean_power_w < last.mean_power_w);
        assert!(first.mean_idle_ms_per_s > last.mean_idle_ms_per_s);
    }
}
