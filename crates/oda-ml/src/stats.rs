//! Descriptive statistics used across the analysis plugins.
//!
//! The persyst plugin transports *quantiles* of per-core metrics
//! (paper §VI-C reproduces the PerSyst design, which aggregates deciles
//! of CPI distributions); the regressor plugin builds feature vectors of
//! windowed statistics (§VI-B); the evaluation fits an empirical PDF to
//! power values (§VI-B, Fig. 6b). This module supplies those kernels.

/// Arithmetic mean; 0.0 for empty input (documented convention used by
/// aggregation operators on missing data).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for inputs shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum; NaN-free inputs assumed. 0.0 for empty input.
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; 0.0 for empty input.
pub fn max(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolation quantile (the "type 7" estimator NumPy uses) of
/// an **unsorted** slice; `q` in [0, 1]. 0.0 for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted slice (no allocation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The 11 deciles (0th = min .. 10th = max) of an unsorted slice.
/// This is the exact statistic the persyst operator publishes per job.
pub fn deciles(xs: &[f64]) -> [f64; 11] {
    let mut out = [0.0; 11];
    if xs.is_empty() {
        return out;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = quantile_sorted(&sorted, i as f64 / 10.0);
    }
    out
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets;
/// out-of-range samples clamp into the edge buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical probability of each bucket.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The center value of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

/// Univariate normal density.
pub fn normal_pdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return 0.0;
    }
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt())
}

/// Fits a normal distribution (mean, std) to samples: the "fitted PDF"
/// overlay of the paper's Fig. 6b.
pub fn fit_normal(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Z-score standardization: returns per-column (mean, std) and the
/// standardized copy of the data. Columns with zero spread get std 1.0
/// so they pass through centered.
pub fn standardize(data: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    if data.is_empty() {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let d = data[0].len();
    let mut means = vec![0.0; d];
    let mut stds = vec![0.0; d];
    for j in 0..d {
        let col: Vec<f64> = data.iter().map(|row| row[j]).collect();
        means[j] = mean(&col);
        let s = std_dev(&col);
        stds[j] = if s > 1e-12 { s } else { 1.0 };
    }
    let scaled = data
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, &x)| (x - means[j]) / stds[j])
                .collect()
        })
        .collect();
    (means, stds, scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 9.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(deciles(&[]), [0.0; 11]);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
        // Unsorted input works.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert!((quantile(&shuffled, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 2.0);
    }

    #[test]
    fn deciles_of_uniform_ramp() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let d = deciles(&xs);
        for (i, &v) in d.iter().enumerate() {
            assert!((v - (i * 10) as f64).abs() < 1e-9, "decile {i} = {v}");
        }
    }

    #[test]
    fn deciles_are_monotonic() {
        let xs: Vec<f64> = (0..57).map(|i| ((i * 31) % 57) as f64).collect();
        let d = deciles(&xs);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(d[0], 0.0);
        assert_eq!(d[10], 56.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.0, 3.0, 9.9, -5.0, 15.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[3, 1, 0, 0, 2]); // -5 clamps low, 15 clamps high
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn normal_pdf_properties() {
        // Peak at the mean, symmetric, integrates to ~1.
        let p0 = normal_pdf(0.0, 0.0, 1.0);
        assert!((p0 - 0.398_942_280_4).abs() < 1e-9);
        assert!((normal_pdf(1.0, 0.0, 1.0) - normal_pdf(-1.0, 0.0, 1.0)).abs() < 1e-15);
        let integral: f64 = (-600..600)
            .map(|i| normal_pdf(i as f64 / 100.0, 0.0, 1.0) * 0.01)
            .sum();
        assert!((integral - 1.0).abs() < 1e-3);
        assert_eq!(normal_pdf(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn fit_normal_recovers_parameters() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| 5.0 + 2.0 * ((i % 7) as f64 - 3.0))
            .collect();
        let (m, s) = fit_normal(&xs);
        assert!((m - 5.0).abs() < 0.1);
        assert!(s > 0.0);
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let data = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let (means, stds, scaled) = standardize(&data);
        assert!((means[0] - 2.5).abs() < 1e-12);
        assert!((means[1] - 250.0).abs() < 1e-12);
        for j in 0..2 {
            let col: Vec<f64> = scaled.iter().map(|r| r[j]).collect();
            assert!(mean(&col).abs() < 1e-12);
            assert!((std_dev(&col) - 1.0).abs() < 1e-12);
            assert!(stds[j] > 0.0);
        }
    }

    #[test]
    fn standardize_constant_column() {
        let data = vec![vec![7.0], vec![7.0], vec![7.0]];
        let (_, stds, scaled) = standardize(&data);
        assert_eq!(stds[0], 1.0);
        assert!(scaled.iter().all(|r| r[0].abs() < 1e-12));
    }
}
