//! Snapshot persistence for the storage backend.
//!
//! DCDB's Cassandra cluster is durable; the embedded store is
//! in-memory, so long-lived deployments persist periodic snapshots.
//! The format is a simple length-prefixed binary layout (no external
//! serialization dependency on this hot-path crate):
//!
//! ```text
//! [8B magic "DCDBSNAP"] [u32 version = 1] [u32 sensor count]
//! per sensor:
//!   [u32 topic length] [topic utf-8 bytes]
//!   [u64 reading count] count × { [i64 value] [u64 ts] }
//! ```

use crate::backend::StorageBackend;
use crate::io::{StdIo, StorageIo};
use dcdb_common::error::DcdbError;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use std::io::{Cursor, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DCDBSNAP";
const VERSION: u32 = 1;

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_i64<W: Write>(w: &mut W, v: i64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn read_i64<R: Read>(r: &mut R) -> std::io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

impl StorageBackend {
    /// Writes the full contents of the backend to `path` atomically
    /// (write to a temp file, then rename).
    pub fn snapshot_to(&self, path: &Path) -> Result<(), DcdbError> {
        self.snapshot_to_with(&StdIo, path)
    }

    /// [`StorageBackend::snapshot_to`] over an explicit [`StorageIo`].
    pub fn snapshot_to_with(&self, io: &dyn StorageIo, path: &Path) -> Result<(), DcdbError> {
        // Assemble in memory, write as one record: the snapshot either
        // fully lands or the temp file is discarded.
        let mut w: Vec<u8> = Vec::new();
        w.write_all(MAGIC)?;
        write_u32(&mut w, VERSION)?;
        let topics = self.topics();
        write_u32(&mut w, topics.len() as u32)?;
        for topic in &topics {
            let bytes = topic.as_str().as_bytes();
            write_u32(&mut w, bytes.len() as u32)?;
            w.write_all(bytes)?;
            let readings = self.query(topic, Timestamp::ZERO, Timestamp::MAX);
            write_u64(&mut w, readings.len() as u64)?;
            for r in &readings {
                write_i64(&mut w, r.value)?;
                write_u64(&mut w, r.ts.as_nanos())?;
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = io.create(&tmp)?;
            file.write_all(&w)?;
            file.sync()?;
        }
        io.rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a snapshot into this backend (merging with any existing
    /// data; duplicate timestamps overwrite, so restore is idempotent).
    pub fn restore_from(&self, path: &Path) -> Result<usize, DcdbError> {
        self.restore_from_with(&StdIo, path)
    }

    /// [`StorageBackend::restore_from`] over an explicit [`StorageIo`].
    pub fn restore_from_with(&self, io: &dyn StorageIo, path: &Path) -> Result<usize, DcdbError> {
        let data = io.read(path)?;
        let mut r = Cursor::new(data);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(DcdbError::Parse("not a DCDB snapshot".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(DcdbError::Parse(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let sensors = read_u32(&mut r)? as usize;
        let mut restored = 0usize;
        for _ in 0..sensors {
            let len = read_u32(&mut r)? as usize;
            if len > 4096 {
                return Err(DcdbError::Parse(format!("implausible topic length {len}")));
            }
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            let topic = Topic::parse(
                std::str::from_utf8(&buf)
                    .map_err(|_| DcdbError::Parse("non-utf8 topic in snapshot".into()))?,
            )?;
            let count = read_u64(&mut r)? as usize;
            let mut batch = Vec::with_capacity(count.min(65536));
            for _ in 0..count {
                let value = read_i64(&mut r)?;
                let ts = Timestamp(read_u64(&mut r)?);
                batch.push(SensorReading::new(value, ts));
                if batch.len() == batch.capacity() {
                    self.insert_batch(&topic, &batch);
                    restored += batch.len();
                    batch.clear();
                }
            }
            if !batch.is_empty() {
                restored += batch.len();
                self.insert_batch(&topic, &batch);
            }
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dcdb-snap-test-{}-{name}", std::process::id()));
        p
    }

    fn seeded() -> StorageBackend {
        let db = StorageBackend::new();
        for n in 0..3 {
            let topic = t(&format!("/n{n}/power"));
            for i in 1..=100u64 {
                db.insert(
                    &topic,
                    SensorReading::new((n * 1000 + i) as i64, Timestamp::from_secs(i)),
                );
            }
        }
        db
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let db = seeded();
        let path = temp_path("roundtrip");
        db.snapshot_to(&path).unwrap();

        let restored = StorageBackend::new();
        let count = restored.restore_from(&path).unwrap();
        assert_eq!(count, 300);
        for n in 0..3 {
            let topic = t(&format!("/n{n}/power"));
            assert_eq!(
                db.query(&topic, Timestamp::ZERO, Timestamp::MAX),
                restored.query(&topic, Timestamp::ZERO, Timestamp::MAX),
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_is_idempotent() {
        let db = seeded();
        let path = temp_path("idempotent");
        db.snapshot_to(&path).unwrap();
        db.restore_from(&path).unwrap(); // restore over itself
        assert_eq!(db.stats().readings, 300); // duplicates overwrite
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let db = StorageBackend::new();
        assert!(db.restore_from(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(db.restore_from(&temp_path("missing")).is_err());
    }

    #[test]
    fn empty_backend_snapshots_fine() {
        let db = StorageBackend::new();
        let path = temp_path("empty");
        db.snapshot_to(&path).unwrap();
        let restored = StorageBackend::new();
        assert_eq!(restored.restore_from(&path).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }
}
