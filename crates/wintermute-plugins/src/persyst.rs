//! Per-job quantile aggregation plugin (paper §VI-C, Case Study 2 —
//! second pipeline stage; a re-implementation of the PerSyst transport).
//!
//! "A second persyst plugin is instantiated in the main Collect Agent:
//! at each computing interval, it queries the set of running jobs on the
//! HPC system, and for each of them it instantiates a unit ... units
//! have as input one of the perfmetrics derived metrics from all compute
//! nodes on which the job is running. From these, the operator computes
//! a series of job-level statistical indicators."
//!
//! Each job unit gathers the chosen metric (default `cpi`) from every
//! core of every node in the job and publishes the 11 deciles of that
//! distribution under `/job/<id>/d0 .. d10` — exactly the series
//! Figure 7 plots.
//!
//! Options:
//! * `input` — metric sensor name to aggregate (default `"cpi"`);
//! * `fixed_point` — whether input values are ×1000 fixed point
//!   (default true: perfmetrics outputs are);
//! * `window_ms` — how far back to look for each core's latest value
//!   (default 3000).

use dcdb_common::error::Result;
use dcdb_common::reading::{decode_f64, encode_f64, SensorReading};
use dcdb_common::time::NS_PER_MS;
use oda_ml::stats::deciles;
use std::sync::Arc;
use wintermute::prelude::*;

/// The 11 output sensor names.
pub const DECILE_SENSORS: [&str; 11] = [
    "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10",
];

/// The per-job aggregation operator.
pub struct PersystOperator {
    name: String,
    builder: JobUnitBuilder,
    source: Arc<dyn JobDataSource>,
    units: Vec<Unit>,
    window_ns: u64,
    fixed_point: bool,
}

impl Operator for PersystOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn units(&self) -> &[Unit] {
        &self.units
    }

    fn refresh_units(&mut self, ctx: &ComputeContext<'_>) -> Result<()> {
        let nav = ctx.query.navigator();
        self.units = self
            .builder
            .units_for_all(self.source.as_ref(), &nav, ctx.now)
            .into_iter()
            .map(|(_, u)| u)
            .collect();
        Ok(())
    }

    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
        let unit = &self.units[i];
        // Latest value of the metric on every core of the job.
        let mut values = Vec::with_capacity(unit.inputs.len());
        for input in &unit.inputs {
            let recent = ctx.query.query(
                input,
                QueryMode::Relative {
                    offset_ns: self.window_ns,
                },
            );
            if let Some(last) = recent.last() {
                values.push(if self.fixed_point {
                    decode_f64(last.value)
                } else {
                    last.value as f64
                });
            }
        }
        if values.is_empty() {
            return Ok(Vec::new()); // job just started; metrics not flowing yet
        }
        let ds = deciles(&values);
        Ok(unit
            .outputs
            .iter()
            .zip(ds.iter())
            .map(|(o, &d)| (o.clone(), SensorReading::new(encode_f64(d), ctx.now)))
            .collect())
    }
}

/// The plugin factory; carries the job data source it hands to every
/// operator (the Collect Agent wires in the resource manager's view).
pub struct PersystPlugin {
    source: Arc<dyn JobDataSource>,
}

impl PersystPlugin {
    /// Creates the factory around a job data source.
    pub fn new(source: Arc<dyn JobDataSource>) -> Self {
        PersystPlugin { source }
    }
}

impl OperatorPlugin for PersystPlugin {
    fn kind(&self) -> &str {
        "persyst"
    }

    fn configure(
        &self,
        config: &PluginConfig,
        _nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>> {
        let input = config.options.str_opt("input").unwrap_or("cpi").to_string();
        let fixed_point = config.options.bool_or("fixed_point", true);
        let window_ns = config.options.u64_or("window_ms", 3000) * NS_PER_MS;
        let builder = JobUnitBuilder::new(&input, &DECILE_SENSORS)?;
        // Units are dynamic (one per running job), so configuration
        // ignores pattern expressions and starts with no units.
        Ok(vec![Box::new(PersystOperator {
            name: config.name.clone(),
            builder,
            source: Arc::clone(&self.source),
            units: Vec::new(),
            window_ns,
            fixed_point,
        })])
    }
}

/// Decodes a decile output value.
pub fn decode_decile(reading: &SensorReading) -> f64 {
    decode_f64(reading.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::{Timestamp, Topic};

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// Engine with per-core CPI sensors on two nodes (4 cores each).
    fn engine() -> Arc<QueryEngine> {
        let qe = Arc::new(QueryEngine::new(32));
        for node in 0..2 {
            for core in 0..4 {
                let topic = t(&format!("/r0/n{node}/cpu{core}/cpi"));
                // CPI value = node*4+core+1 (1..=8), fixed point.
                let v = encode_f64((node * 4 + core + 1) as f64);
                qe.insert(&topic, SensorReading::new(v, Timestamp::from_secs(5)));
            }
        }
        qe.rebuild_navigator();
        qe
    }

    fn manager_with_jobs(jobs: Vec<JobInfo>) -> Arc<OperatorManager> {
        let source = Arc::new(StaticJobSource::new());
        source.set_jobs(jobs);
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(PersystPlugin::new(source)));
        mgr.load(PluginConfig::online("ps", "persyst", 1000))
            .unwrap();
        mgr
    }

    fn job(id: u64, nodes: &[&str]) -> JobInfo {
        JobInfo {
            id,
            user: "u".into(),
            node_paths: nodes.iter().map(|n| t(n)).collect(),
        }
    }

    #[test]
    fn deciles_across_job_cores() {
        let mgr = manager_with_jobs(vec![job(1, &["/r0/n0", "/r0/n1"])]);
        let report = mgr.tick(Timestamp::from_secs(6));
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.outputs_published, 11);
        // Values 1..=8 across 8 cores: d0 = 1, d10 = 8, d5 = 4.5.
        let d0 = mgr.query_engine().query(&t("/job/1/d0"), QueryMode::Latest);
        let d5 = mgr.query_engine().query(&t("/job/1/d5"), QueryMode::Latest);
        let d10 = mgr
            .query_engine()
            .query(&t("/job/1/d10"), QueryMode::Latest);
        assert!((decode_decile(&d0[0]) - 1.0).abs() < 1e-9);
        assert!((decode_decile(&d5[0]) - 4.5).abs() < 1e-9);
        assert!((decode_decile(&d10[0]) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn one_unit_per_running_job() {
        let mgr = manager_with_jobs(vec![job(1, &["/r0/n0"]), job(2, &["/r0/n1"])]);
        let report = mgr.tick(Timestamp::from_secs(6));
        assert_eq!(report.outputs_published, 22);
        assert!(!mgr
            .query_engine()
            .query(&t("/job/1/d5"), QueryMode::Latest)
            .is_empty());
        assert!(!mgr
            .query_engine()
            .query(&t("/job/2/d5"), QueryMode::Latest)
            .is_empty());
        // Jobs see only their own nodes: job 1 max = 4, job 2 min = 5.
        let d10 = mgr
            .query_engine()
            .query(&t("/job/1/d10"), QueryMode::Latest);
        assert!((decode_decile(&d10[0]) - 4.0).abs() < 1e-9);
        let d0 = mgr.query_engine().query(&t("/job/2/d0"), QueryMode::Latest);
        assert!((decode_decile(&d0[0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn units_follow_job_churn() {
        let source = Arc::new(StaticJobSource::new());
        source.set_jobs(vec![job(1, &["/r0/n0"])]);
        let mgr = OperatorManager::new(engine());
        let src: Arc<dyn JobDataSource> = Arc::clone(&source) as Arc<dyn JobDataSource>;
        mgr.register_plugin(Box::new(PersystPlugin::new(src)));
        mgr.load(PluginConfig::online("ps", "persyst", 1000))
            .unwrap();
        mgr.tick(Timestamp::from_secs(6));
        assert_eq!(mgr.units_of("ps").unwrap().len(), 1);
        // Job 1 ends; jobs 2 and 3 start.
        source.set_jobs(vec![job(2, &["/r0/n0"]), job(3, &["/r0/n1"])]);
        mgr.tick(Timestamp::from_secs(7));
        let units = mgr.units_of("ps").unwrap();
        let names: Vec<&str> = units.iter().map(|u| u.as_str()).collect();
        assert_eq!(names, vec!["/job/2", "/job/3"]);
    }

    #[test]
    fn no_jobs_no_outputs() {
        let mgr = manager_with_jobs(vec![]);
        let report = mgr.tick(Timestamp::from_secs(6));
        assert_eq!(report.outputs_published, 0);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn job_on_unmonitored_nodes_is_skipped() {
        let mgr = manager_with_jobs(vec![job(9, &["/r9/ghost"])]);
        let report = mgr.tick(Timestamp::from_secs(6));
        assert_eq!(report.outputs_published, 0);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn pipeline_from_perfmetrics_to_persyst() {
        // Full two-stage pipeline inside one engine: perfmetrics derives
        // CPI from counters, persyst aggregates it per job.
        let qe = Arc::new(QueryEngine::new(64));
        for sec in 0..=5u64 {
            for core in 0..4 {
                qe.insert(
                    &t(&format!("/r0/n0/cpu{core}/cycles")),
                    SensorReading::new(
                        (sec * 1_000_000 * (core + 2)) as i64,
                        Timestamp::from_secs(sec),
                    ),
                );
                qe.insert(
                    &t(&format!("/r0/n0/cpu{core}/instructions")),
                    SensorReading::new((sec * 1_000_000) as i64, Timestamp::from_secs(sec)),
                );
            }
        }
        qe.rebuild_navigator();
        let source = Arc::new(StaticJobSource::new());
        source.set_jobs(vec![job(7, &["/r0/n0"])]);
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(crate::perfmetrics::PerfMetricsPlugin));
        mgr.register_plugin(Box::new(PersystPlugin::new(source)));
        mgr.load(crate::perfmetrics::cpi_config("pm", 1000).with_option("window_ms", 4000u64))
            .unwrap();
        mgr.load(PluginConfig::online("ps", "persyst", 1000))
            .unwrap();

        // Tick 1: perfmetrics publishes CPI; persyst sees no cpi sensors
        // in the tree yet (navigator predates them).
        mgr.tick(Timestamp::from_secs(6));
        mgr.query_engine().rebuild_navigator();
        // Tick 2: persyst now aggregates the derived metric.
        let report = mgr.tick(Timestamp::from_secs(7));
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let d10 = mgr
            .query_engine()
            .query(&t("/job/7/d10"), QueryMode::Latest);
        assert!(!d10.is_empty(), "pipeline did not produce job deciles");
        // Core CPIs are 2,3,4,5 -> max 5.
        assert!((decode_decile(&d10[0]) - 5.0).abs() < 0.01);
    }
}
