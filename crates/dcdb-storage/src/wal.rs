//! Append-only write-ahead log: the durability point of the engine.
//!
//! Every insert batch is journaled here *before* it is acknowledged, so
//! a crash can lose at most what the configured [`FsyncPolicy`] allows.
//! The format is deliberately boring — self-delimiting records with a
//! per-record CRC-32, so replay can stop cleanly at a torn tail left by
//! a crash mid-append:
//!
//! ```text
//! [8B magic "DCDBWAL1"]
//! record*:
//!   [u32 payload_len] [u32 crc32(payload)] [payload]
//! payload (row-major, count bit 31 clear):
//!   [u16 topic_len] [topic utf-8]
//!   [u32 count] count × { [i64 value] [u64 ts] }
//! payload (columnar, count bit 31 set):
//!   [u16 topic_len] [topic utf-8]
//!   [u32 count | 0x8000_0000] count × [u64 ts] count × [i64 value]
//! ```
//!
//! All integers little-endian. A record whose length field reaches past
//! the end of the file, or whose CRC does not match, terminates replay:
//! everything before it is recovered, everything after is discarded
//! (it was never acknowledged durable).
//!
//! The columnar record is the ingest hot path: the packed timestamp and
//! value columns of a [`ReadingBatch`] land in the record via two bulk
//! little-endian copies instead of a per-reading loop, assembled in a
//! scratch buffer reused across appends. Bit 31 of the count field
//! flags the layout — [`MAX_PAYLOAD`] (1 GiB) caps legitimate counts
//! far below `2^31`, so the bit is never ambiguous. Replay accepts both
//! layouts in any order.
//!
//! Under [`FsyncPolicy::EveryN`] the writer *pipelines* its syncs: the
//! Nth append enqueues an fsync request for a background thread and
//! continues journaling without waiting (group commit, as in
//! PostgreSQL's walwriter). The syncer coalesces every request queued
//! while an fsync was running into the next fsync — one `fdatasync`
//! covers them all — so when syncs are slower than the append windows
//! between them, fsyncs run back-to-back on the background thread and
//! the writer never stalls. The writer blocks only when more than
//! [`MAX_SYNC_LAG`] sync windows are outstanding, which caps the crash
//! window at `(MAX_SYNC_LAG + 1) * N - 1` unacknowledged-durable
//! appends (vs. `N - 1` for in-line `EveryN`) — a wider but still
//! bounded window, of the same kind `EveryN` deployments have already
//! accepted; `Always` never pipelines. A failed background sync is
//! harvested at the next sync point and poisons the writer exactly
//! like an in-line failure.
//!
//! All I/O goes through the [`crate::io::StorageIo`] VFS, so fault
//! injection exercises the exact production code paths. Two failure
//! rules keep acknowledged data safe under injected faults:
//!
//! * **Torn-append rollback** — a failed `write_all` may have landed a
//!   prefix of the record. The writer truncates back to the last good
//!   length before any further append, so a retried record can never be
//!   journaled *after* garbage (where replay would stop and lose it).
//!   If the truncate itself fails, the writer poisons itself.
//! * **Fsync poisoning** — once an fsync fails, the kernel may have
//!   dropped dirty pages and a later fsync on the same fd can report
//!   success without the data being durable. A failed sync therefore
//!   permanently poisons the writer; the engine must rotate to a fresh
//!   WAL file and re-journal.

use crate::crc::crc32;
use crate::io::{IoFile, StdIo, StorageIo};
use dcdb_common::batch::{
    extend_le_i64s, extend_le_u64s, read_le_i64s, read_le_u64s, ReadingBatch,
};
use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// File magic for WAL files.
pub const WAL_MAGIC: &[u8; 8] = b"DCDBWAL1";

/// Largest accepted payload (1 GiB): guards replay against reading a
/// corrupt length field as an allocation size.
const MAX_PAYLOAD: u32 = 1 << 30;

/// Bit 31 of the record count field marks a columnar payload.
const COLUMNAR_FLAG: u32 = 1 << 31;

/// When the WAL calls `fsync` relative to appends.
///
/// `Always` makes every acknowledged batch crash-durable; `EveryN`
/// amortizes the syscall over a batch window and pipelines it on a
/// background thread (at most `2N - 1` batches at risk — see the
/// module docs); `Never` leaves flushing to the OS page cache (data
/// still survives a process kill, but not a machine crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append.
    Always,
    /// `fsync` after every `N` appends (and on explicit [`WalWriter::sync`]).
    EveryN(u32),
    /// Never `fsync` implicitly.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling used by `wintermute-sim` and `oda-bench`
    /// (`always`, `batch`, `never`).
    pub fn parse(s: &str) -> Result<FsyncPolicy> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::EveryN(64)),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(DcdbError::Config(format!(
                "unknown fsync policy {other:?} (expected always|batch|never)"
            ))),
        }
    }
}

/// Appender over one WAL file.
///
/// Appends are single `write_all` calls of a fully assembled record, so
/// nothing acknowledged is ever buffered in user space — a process kill
/// after an append cannot lose the record (only a machine crash can,
/// subject to the fsync policy).
pub struct WalWriter {
    file: Box<dyn IoFile>,
    path: PathBuf,
    policy: FsyncPolicy,
    appends_since_sync: u32,
    bytes: u64,
    poisoned: bool,
    /// Record assembly buffer, reused across appends.
    scratch: Vec<u8>,
    /// Background group-commit syncer (lazily spawned for `EveryN`).
    syncer: Option<PipelinedSync>,
    /// Set once spawning a syncer failed or the file cannot be cloned,
    /// so we stop re-trying on every sync point.
    syncer_unavailable: bool,
}

/// Most sync windows allowed outstanding before the writer blocks on
/// the background syncer; bounds the `EveryN` crash window at
/// `(MAX_SYNC_LAG + 1) * N - 1` appends (see the module docs).
pub const MAX_SYNC_LAG: u64 = 4;

/// Shared state between the writer and the background syncer.
struct SyncShared {
    state: Mutex<SyncState>,
    /// Signals the syncer (new request / shutdown) and the writer
    /// (request completed).
    progress: Condvar,
}

impl SyncShared {
    fn lock(&self) -> MutexGuard<'_, SyncState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Timed condvar wait (so a dead peer cannot strand the waiter);
    /// callers re-check their predicate in a loop.
    fn wait<'a>(&self, guard: MutexGuard<'a, SyncState>) -> MutexGuard<'a, SyncState> {
        match self.progress.wait_timeout(guard, Duration::from_millis(50)) {
            Ok((g, _)) => g,
            Err(p) => p.into_inner().0,
        }
    }
}

#[derive(Default)]
struct SyncState {
    /// Sync requests issued by the writer.
    requested: u64,
    /// Requests covered by a completed fsync (coalesced: one fsync
    /// completes every request issued before it started).
    completed: u64,
    /// First fsync failure; sticky until the writer harvests it.
    error: Option<DcdbError>,
    shutdown: bool,
}

/// A background fsync thread running coalesced group commits.
struct PipelinedSync {
    shared: Arc<SyncShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PipelinedSync {
    /// Spawns a syncer over its own handle to the WAL file.
    fn spawn(mut file: Box<dyn IoFile>) -> Option<PipelinedSync> {
        let shared = Arc::new(SyncShared {
            state: Mutex::new(SyncState::default()),
            progress: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dcdb-wal-sync".into())
            .spawn(move || loop {
                let covers = {
                    let mut state = thread_shared.lock();
                    while !state.shutdown
                        && (state.requested == state.completed || state.error.is_some())
                    {
                        state = thread_shared.wait(state);
                    }
                    if state.shutdown {
                        return;
                    }
                    // This fsync covers every request issued so far.
                    state.requested
                };
                let result = file.sync();
                let mut state = thread_shared.lock();
                match result {
                    Ok(()) => state.completed = covers.max(state.completed),
                    Err(err) => {
                        if state.error.is_none() {
                            state.error = Some(err);
                        }
                    }
                }
                thread_shared.progress.notify_all();
            })
            .ok()?;
        Some(PipelinedSync {
            shared,
            handle: Some(handle),
        })
    }

    /// Enqueues a sync request, blocking only while more than
    /// [`MAX_SYNC_LAG`] requests are outstanding. Returns the sticky
    /// fsync error if one occurred; `Err(None)` means the syncer
    /// thread is gone.
    fn request(&mut self) -> std::result::Result<(), Option<DcdbError>> {
        let mut state = self.shared.lock();
        state.requested += 1;
        self.shared.progress.notify_all();
        while state.error.is_none() && state.requested - state.completed > MAX_SYNC_LAG {
            if self.thread_gone() {
                return Err(None);
            }
            state = self.shared.wait(state);
        }
        match state.error.take() {
            Some(err) => Err(Some(err)),
            None => Ok(()),
        }
    }

    /// Blocks until every request issued so far has been covered by a
    /// completed fsync. Returns the sticky fsync error if one occurred;
    /// `Err(None)` means the syncer thread is gone.
    fn barrier(&mut self) -> std::result::Result<(), Option<DcdbError>> {
        let mut state = self.shared.lock();
        while state.error.is_none() && state.completed < state.requested {
            if self.thread_gone() {
                return Err(None);
            }
            state = self.shared.wait(state);
        }
        match state.error.take() {
            Some(err) => Err(Some(err)),
            None => Ok(()),
        }
    }

    fn thread_gone(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }
}

impl Drop for PipelinedSync {
    fn drop(&mut self) {
        // Wake the syncer for shutdown, then join so no sync outlives
        // the writer (rotation must not race a stale fsync).
        self.shared.lock().shutdown = true;
        self.shared.progress.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl WalWriter {
    /// Creates a fresh WAL at `path`, truncating any existing file.
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<WalWriter> {
        WalWriter::create_with(&StdIo, path, policy)
    }

    /// [`WalWriter::create`] over an explicit [`StorageIo`].
    pub fn create_with(io: &dyn StorageIo, path: &Path, policy: FsyncPolicy) -> Result<WalWriter> {
        let mut file = io.create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            appends_since_sync: 0,
            bytes: WAL_MAGIC.len() as u64,
            poisoned: false,
            scratch: Vec::new(),
            syncer: None,
            syncer_unavailable: false,
        })
    }

    /// Reopens an existing WAL for appending, truncating it to
    /// `good_len` first (the clean prefix a prior [`replay`] validated).
    pub fn open_append(path: &Path, policy: FsyncPolicy, good_len: u64) -> Result<WalWriter> {
        WalWriter::open_append_with(&StdIo, path, policy, good_len)
    }

    /// [`WalWriter::open_append`] over an explicit [`StorageIo`].
    pub fn open_append_with(
        io: &dyn StorageIo,
        path: &Path,
        policy: FsyncPolicy,
        good_len: u64,
    ) -> Result<WalWriter> {
        let file = io.open_append(path, good_len)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            appends_since_sync: 0,
            bytes: good_len,
            poisoned: false,
            scratch: Vec::new(),
            syncer: None,
            syncer_unavailable: false,
        })
    }

    /// Journals one batch of readings for `topic`. On return the record
    /// is in the file (and fsynced, under `FsyncPolicy::Always`).
    ///
    /// On a failed write the file is truncated back to its last good
    /// length, so the failure leaves no partial record behind; if that
    /// rollback itself fails the writer becomes [`poisoned`] and every
    /// further call errors until the engine rotates to a fresh WAL.
    ///
    /// [`poisoned`]: WalWriter::poisoned
    pub fn append(&mut self, topic: &Topic, readings: &[SensorReading]) -> Result<()> {
        self.check_poisoned()?;
        let topic_bytes = topic.as_str().as_bytes();
        let payload_len = 2 + topic_bytes.len() + 4 + readings.len() * 16;
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.reserve(8 + payload_len);
        buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // CRC placeholder
        buf.extend_from_slice(&(topic_bytes.len() as u16).to_le_bytes());
        buf.extend_from_slice(topic_bytes);
        buf.extend_from_slice(&(readings.len() as u32).to_le_bytes());
        for r in readings {
            buf.extend_from_slice(&r.value.to_le_bytes());
            buf.extend_from_slice(&r.ts.as_nanos().to_le_bytes());
        }
        let crc = crc32(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        let result = self.write_record(&buf);
        self.scratch = buf;
        result
    }

    /// Journals one columnar batch for `topic` — the bulk-ingest hot
    /// path. Identical durability semantics to [`WalWriter::append`];
    /// the record body is the batch's two packed columns, copied with
    /// two bulk little-endian appends instead of a per-reading loop.
    pub fn append_batch(&mut self, topic: &Topic, batch: &ReadingBatch) -> Result<()> {
        self.check_poisoned()?;
        if batch.len() as u64 >= COLUMNAR_FLAG as u64 {
            return Err(DcdbError::InvalidState(format!(
                "batch of {} readings exceeds the WAL record limit",
                batch.len()
            )));
        }
        let topic_bytes = topic.as_str().as_bytes();
        let payload_len = 2 + topic_bytes.len() + 4 + batch.len() * 16;
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.reserve(8 + payload_len);
        buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // CRC placeholder
        buf.extend_from_slice(&(topic_bytes.len() as u16).to_le_bytes());
        buf.extend_from_slice(topic_bytes);
        buf.extend_from_slice(&(batch.len() as u32 | COLUMNAR_FLAG).to_le_bytes());
        extend_le_u64s(&mut buf, &batch.ts);
        extend_le_i64s(&mut buf, &batch.values);
        let crc = crc32(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        let result = self.write_record(&buf);
        self.scratch = buf;
        result
    }

    /// Writes one assembled record and applies the fsync policy.
    fn write_record(&mut self, buf: &[u8]) -> Result<()> {
        if let Err(err) = self.file.write_all(buf) {
            // The write may have torn: restore the clean prefix so a
            // retried append cannot land after garbage.
            if self.file.truncate(self.bytes).is_err() {
                self.poisoned = true;
            }
            return Err(err);
        }
        self.bytes += buf.len() as u64;
        self.appends_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n {
                    self.sync_pipelined()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// An `EveryN` sync point: enqueue a group-commit request for the
    /// syncer thread and keep journaling, blocking only when more than
    /// [`MAX_SYNC_LAG`] requests are outstanding. Falls back to an
    /// in-line [`WalWriter::sync`] when no background syncer is
    /// available (unclonable file, spawn failure, or a dead syncer
    /// thread).
    fn sync_pipelined(&mut self) -> Result<()> {
        if self.syncer.is_none() && !self.syncer_unavailable {
            self.syncer = self.file.try_clone().and_then(PipelinedSync::spawn);
            if self.syncer.is_none() {
                self.syncer_unavailable = true;
            }
        }
        let Some(syncer) = self.syncer.as_mut() else {
            return self.sync();
        };
        match syncer.request() {
            Ok(()) => {
                self.appends_since_sync = 0;
                Ok(())
            }
            Err(Some(err)) => {
                self.poisoned = true;
                Err(err)
            }
            Err(None) => {
                // Syncer thread died; fall back to in-line syncing.
                self.syncer = None;
                self.syncer_unavailable = true;
                self.sync()
            }
        }
    }

    /// Forces an fsync of everything appended so far, including
    /// awaiting any in-flight background sync. A failure poisons the
    /// writer permanently: re-fsyncing the same fd after a failed fsync
    /// can report success without durability, so the only safe recovery
    /// is rotation to a fresh file.
    pub fn sync(&mut self) -> Result<()> {
        self.check_poisoned()?;
        if let Some(syncer) = self.syncer.as_mut() {
            match syncer.barrier() {
                Ok(()) => {}
                Err(Some(err)) => {
                    self.poisoned = true;
                    return Err(err);
                }
                // Thread gone: the in-line sync below still covers
                // everything written so far.
                Err(None) => {}
            }
        }
        match self.file.sync() {
            Ok(()) => {
                self.appends_since_sync = 0;
                Ok(())
            }
            Err(err) => {
                self.poisoned = true;
                Err(err)
            }
        }
    }

    /// True once a failed fsync (or failed torn-write rollback) has made
    /// this writer unusable; the engine must rotate.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends journaled but not yet fsynced under the current policy.
    pub fn unsynced_appends(&self) -> u32 {
        self.appends_since_sync
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            Err(DcdbError::InvalidState(format!(
                "WAL {} is poisoned by a failed fsync; rotation required",
                self.path.display()
            )))
        } else {
            Ok(())
        }
    }

    /// Bytes written so far, including the header.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of a [`replay`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Complete record batches recovered.
    pub batches: usize,
    /// Readings recovered across those batches.
    pub readings: usize,
    /// True when a torn or corrupt tail stopped replay early.
    pub torn_tail: bool,
    /// Length of the validated prefix — reopen for append with
    /// [`WalWriter::open_append`] at this offset to drop the torn tail.
    pub good_len: u64,
    /// Bytes past the validated prefix that replay discarded (torn or
    /// corrupt tail). Zero on a clean replay.
    pub discarded_bytes: u64,
}

/// Replays a WAL, calling `sink(topic, readings)` per recovered record.
///
/// Tolerates a torn tail: a truncated or CRC-corrupt record terminates
/// replay without error, reporting `torn_tail = true` and the length of
/// the clean prefix.
pub fn replay(path: &Path, sink: impl FnMut(Topic, Vec<SensorReading>)) -> Result<WalReplay> {
    replay_with(&StdIo, path, sink)
}

/// [`replay`] over an explicit [`StorageIo`].
pub fn replay_with(
    io: &dyn StorageIo,
    path: &Path,
    mut sink: impl FnMut(Topic, Vec<SensorReading>),
) -> Result<WalReplay> {
    let data = io.read(path)?;
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DcdbError::Parse(format!(
            "{} is not a DCDB WAL file",
            path.display()
        )));
    }
    let mut report = WalReplay {
        good_len: WAL_MAGIC.len() as u64,
        ..WalReplay::default()
    };
    let torn = |mut report: WalReplay| {
        report.torn_tail = true;
        report.discarded_bytes = data.len() as u64 - report.good_len;
        Ok(report)
    };
    let mut pos = WAL_MAGIC.len();
    loop {
        if pos == data.len() {
            return Ok(report); // clean end
        }
        if pos + 8 > data.len() {
            return torn(report); // torn header
        }
        let payload_len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc_expected = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if payload_len as u32 > MAX_PAYLOAD || pos + 8 + payload_len > data.len() {
            return torn(report); // torn or corrupt length
        }
        let payload = &data[pos + 8..pos + 8 + payload_len];
        if crc32(payload) != crc_expected {
            return torn(report); // corrupt payload
        }
        match decode_payload(payload) {
            Some((topic, readings)) => {
                report.batches += 1;
                report.readings += readings.len();
                sink(topic, readings);
            }
            None => {
                // CRC passed but the structure is inconsistent — treat
                // as corruption and stop, like a torn tail.
                return torn(report);
            }
        }
        pos += 8 + payload_len;
        report.good_len = pos as u64;
    }
}

fn decode_payload(payload: &[u8]) -> Option<(Topic, Vec<SensorReading>)> {
    if payload.len() < 6 {
        return None;
    }
    let topic_len = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
    if payload.len() < 2 + topic_len + 4 {
        return None;
    }
    let topic = Topic::parse(std::str::from_utf8(&payload[2..2 + topic_len]).ok()?).ok()?;
    let raw_count = u32::from_le_bytes(
        payload[2 + topic_len..2 + topic_len + 4]
            .try_into()
            .unwrap(),
    );
    let count = (raw_count & !COLUMNAR_FLAG) as usize;
    let body = &payload[2 + topic_len + 4..];
    if body.len() != count * 16 {
        return None;
    }
    let readings = if raw_count & COLUMNAR_FLAG != 0 {
        // Columnar: ts column then value column.
        let ts = read_le_u64s(body, count);
        let values = read_le_i64s(&body[count * 8..], count);
        ts.into_iter()
            .zip(values)
            .map(|(t, v)| SensorReading::new(v, Timestamp(t)))
            .collect()
    } else {
        // Row-major: interleaved value/ts pairs.
        let mut readings = Vec::with_capacity(count);
        for chunk in body.chunks_exact(16) {
            let value = i64::from_le_bytes(chunk[0..8].try_into().unwrap());
            let ts = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
            readings.push(SensorReading::new(value, Timestamp(ts)));
        }
        readings
    };
    Some((topic, readings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultConfig, FaultIo};
    use std::fs::OpenOptions;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }
    fn r(v: i64, s: u64) -> SensorReading {
        SensorReading::new(v, Timestamp::from_secs(s))
    }

    fn temp_wal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dcdb-wal-test-{}-{name}.log", std::process::id()));
        p
    }

    fn collect_replay(path: &Path) -> (Vec<(Topic, Vec<SensorReading>)>, WalReplay) {
        let mut got = Vec::new();
        let rep = replay(path, |topic, readings| got.push((topic, readings))).unwrap();
        (got, rep)
    }

    #[test]
    fn append_replay_round_trip() {
        let path = temp_wal("roundtrip");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        w.append(&t("/n0/power"), &[r(1, 1), r(2, 2)]).unwrap();
        w.append(&t("/n1/temp"), &[r(-7, 3)]).unwrap();
        w.sync().unwrap();
        let (got, rep) = collect_replay(&path);
        assert_eq!(rep.batches, 2);
        assert_eq!(rep.readings, 3);
        assert!(!rep.torn_tail);
        assert_eq!(rep.discarded_bytes, 0);
        assert_eq!(rep.good_len, w.bytes_written());
        assert_eq!(got[0].0, t("/n0/power"));
        assert_eq!(got[0].1, vec![r(1, 1), r(2, 2)]);
        assert_eq!(got[1].1, vec![r(-7, 3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_prefix_recovered() {
        let path = temp_wal("torn");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        w.append(&t("/a/b"), &[r(1, 1)]).unwrap();
        let good = w.bytes_written();
        w.append(&t("/a/b"), &[r(2, 2), r(3, 3)]).unwrap();
        drop(w);
        // Crash mid-append: cut the last record in half.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(good + (full - good) / 2).unwrap();
        drop(f);
        let (got, rep) = collect_replay(&path);
        assert!(rep.torn_tail);
        assert_eq!(rep.batches, 1);
        assert_eq!(rep.good_len, good);
        assert_eq!(rep.discarded_bytes, (full - good) / 2);
        assert_eq!(got[0].1, vec![r(1, 1)]);
        // Reopening at good_len drops the tail; appends continue cleanly.
        let mut w = WalWriter::open_append(&path, FsyncPolicy::Never, rep.good_len).unwrap();
        w.append(&t("/a/b"), &[r(4, 4)]).unwrap();
        w.sync().unwrap();
        let (got, rep) = collect_replay(&path);
        assert!(!rep.torn_tail);
        assert_eq!(rep.batches, 2);
        assert_eq!(got[1].1, vec![r(4, 4)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = temp_wal("corrupt");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        w.append(&t("/a/b"), &[r(1, 1)]).unwrap();
        let good = w.bytes_written();
        w.append(&t("/a/b"), &[r(2, 2)]).unwrap();
        w.append(&t("/a/b"), &[r(3, 3)]).unwrap();
        drop(w);
        // Flip one byte inside the second record's payload.
        let mut data = std::fs::read(&path).unwrap();
        data[good as usize + 12] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (got, rep) = collect_replay(&path);
        assert!(rep.torn_tail);
        assert_eq!(rep.batches, 1);
        assert!(rep.discarded_bytes > 0);
        assert_eq!(got.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_wal_files() {
        let path = temp_wal("garbage");
        std::fs::write(&path, b"not a wal").unwrap();
        assert!(replay(&path, |_, _| {}).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policies_parse() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(
            FsyncPolicy::parse("batch").unwrap(),
            FsyncPolicy::EveryN(64)
        );
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn empty_wal_replays_clean() {
        let path = temp_wal("empty");
        let w = WalWriter::create(&path, FsyncPolicy::Always).unwrap();
        drop(w);
        let (got, rep) = collect_replay(&path);
        assert!(got.is_empty());
        assert!(!rep.torn_tail);
        assert_eq!(rep.good_len, WAL_MAGIC.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_fsync_poisons_the_writer() {
        let path = temp_wal("poison");
        let mut cfg = FaultConfig::quiet(11);
        cfg.fsync_fail_prob = 1.0;
        let io = FaultIo::std(cfg);
        let w = WalWriter::create_with(&io, &path, FsyncPolicy::Never);
        // Creation syncs the magic — with fsync always failing, creation
        // itself fails. Create clean, then arm the fault.
        assert!(w.is_err());
        io.clear_faults();
        let mut w = WalWriter::create_with(&io, &path, FsyncPolicy::Never).unwrap();
        w.append(&t("/a/b"), &[r(1, 1)]).unwrap();
        io.set_config(cfg);
        assert!(w.sync().is_err());
        assert!(w.poisoned());
        // Every further op refuses — no silent success after failed fsync.
        io.clear_faults();
        assert!(w.append(&t("/a/b"), &[r(2, 2)]).is_err());
        assert!(w.sync().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn columnar_and_row_records_interleave_in_replay() {
        let path = temp_wal("columnar");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        let batch = ReadingBatch::from_readings(&[r(10, 1), r(20, 2), r(30, 3)]);
        w.append(&t("/n0/power"), &[r(1, 1)]).unwrap();
        w.append_batch(&t("/n1/temp"), &batch).unwrap();
        w.append_batch(&t("/n2/flow"), &ReadingBatch::new())
            .unwrap();
        w.append(&t("/n0/power"), &[r(2, 2)]).unwrap();
        w.sync().unwrap();
        let (got, rep) = collect_replay(&path);
        assert_eq!(rep.batches, 4);
        assert_eq!(rep.readings, 5);
        assert!(!rep.torn_tail);
        assert_eq!(rep.good_len, w.bytes_written());
        assert_eq!(got[1].0, t("/n1/temp"));
        assert_eq!(got[1].1, batch.to_readings());
        assert!(got[2].1.is_empty());
        assert_eq!(got[3].1, vec![r(2, 2)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn columnar_records_survive_extreme_values() {
        let path = temp_wal("columnar-extreme");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        let batch = ReadingBatch::from_columns(
            vec![0, u64::MAX, u64::MAX / 2],
            vec![i64::MIN, i64::MAX, -1],
        );
        w.append_batch(&t("/x/y"), &batch).unwrap();
        w.sync().unwrap();
        let (got, rep) = collect_replay(&path);
        assert_eq!(rep.readings, 3);
        assert_eq!(ReadingBatch::from_readings(&got[0].1), batch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_columnar_record_stops_replay() {
        let path = temp_wal("columnar-corrupt");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        w.append_batch(&t("/a/b"), &ReadingBatch::from_readings(&[r(1, 1)]))
            .unwrap();
        let good = w.bytes_written();
        w.append_batch(&t("/a/b"), &ReadingBatch::from_readings(&[r(2, 2)]))
            .unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let flip = good as usize + 12;
        data[flip] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (got, rep) = collect_replay(&path);
        assert!(rep.torn_tail);
        assert_eq!(rep.batches, 1);
        assert_eq!(got.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_everyn_syncs_and_replays_clean() {
        // EveryN over StdIo engages the background syncer; every record
        // must still land durably and replay byte-clean, and explicit
        // sync must act as a full barrier.
        let path = temp_wal("pipelined");
        let mut w = WalWriter::create(&path, FsyncPolicy::EveryN(4)).unwrap();
        let mut batch = ReadingBatch::new();
        for i in 0..100u64 {
            batch.clear();
            batch.push(i as i64, Timestamp(i * 1_000));
            batch.push(i as i64 + 1, Timestamp(i * 1_000 + 500));
            w.append_batch(&t("/p/q"), &batch).unwrap();
        }
        assert!(!w.poisoned());
        w.sync().unwrap();
        assert_eq!(w.unsynced_appends(), 0);
        let (got, rep) = collect_replay(&path);
        assert_eq!(rep.batches, 100);
        assert_eq!(rep.readings, 200);
        assert!(!rep.torn_tail);
        assert_eq!(
            got[99].1[1],
            SensorReading::new(100, Timestamp(99 * 1_000 + 500))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn everyn_under_fault_injection_stays_inline_and_poisons() {
        // FaultIo files are not clonable (determinism), so EveryN falls
        // back to in-line syncs — and a failing one must still poison.
        let path = temp_wal("everyn-fault");
        let io = FaultIo::std(FaultConfig::quiet(23));
        let mut w = WalWriter::create_with(&io, &path, FsyncPolicy::EveryN(2)).unwrap();
        w.append(&t("/a/b"), &[r(1, 1)]).unwrap();
        let mut cfg = FaultConfig::quiet(23);
        cfg.fsync_fail_prob = 1.0;
        io.set_config(cfg);
        // Second append crosses the EveryN threshold → in-line sync fails.
        assert!(w.append(&t("/a/b"), &[r(2, 2)]).is_err());
        assert!(w.poisoned());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_append_rolls_back_to_clean_prefix() {
        let path = temp_wal("rollback");
        let io = FaultIo::std(FaultConfig::quiet(17));
        let mut w = WalWriter::create_with(&io, &path, FsyncPolicy::Never).unwrap();
        w.append(&t("/a/b"), &[r(1, 1)]).unwrap();
        let good = w.bytes_written();
        let mut cfg = FaultConfig::quiet(17);
        cfg.torn_write_prob = 1.0;
        io.set_config(cfg);
        assert!(w.append(&t("/a/b"), &[r(2, 2)]).is_err());
        assert!(!w.poisoned(), "rollback succeeded, writer stays usable");
        io.clear_faults();
        // Retry lands cleanly right after the rolled-back prefix.
        w.append(&t("/a/b"), &[r(2, 2)]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (got, rep) = collect_replay(&path);
        assert!(!rep.torn_tail, "no garbage between records");
        assert_eq!(rep.batches, 2);
        assert_eq!(got[1].1, vec![r(2, 2)]);
        assert!(rep.good_len > good);
        std::fs::remove_file(&path).ok();
    }
}
