//! Regenerates Figure 7 (paper §VI-C): per-job CPI deciles over time
//! for the four CORAL-2 applications, via the perfmetrics → persyst
//! pipeline across Pushers and the Collect Agent.
//!
//! ```text
//! cargo run --release -p oda-bench --bin fig7_cpi_deciles            # scaled default
//! cargo run --release -p oda-bench --bin fig7_cpi_deciles -- --full  # 32 nodes × 64 cores
//! ```

use oda_bench::fig7::{run_all, Fig7Config};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        Fig7Config::paper()
    } else {
        Fig7Config::quick()
    };
    println!(
        "{} nodes × {} cores per job, {} s interval ({} samples per decile)\n",
        config.nodes_per_job,
        config.cores_per_node,
        config.interval_s,
        config.nodes_per_job * config.cores_per_node
    );

    let started = std::time::Instant::now();
    let results = run_all(&config);
    for result in &results {
        println!("=== Fig. 7 — {} ===", result.app);
        println!(
            "{:>6} | {:>6} {:>6} {:>6} {:>6} {:>6}",
            "t[s]", "d0", "d2", "d5", "d8", "d10"
        );
        let step = (result.series.len() / 20).max(1);
        for p in result.series.iter().step_by(step) {
            println!(
                "{:>6.0} | {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
                p.t_s, p.d0, p.d2, p.d5, p.d8, p.d10
            );
        }
        // Shape summary in the paper's terms.
        let meds: Vec<f64> = result.series.iter().map(|p| p.d5).collect();
        let spreads: Vec<f64> = result.series.iter().map(|p| p.d10 - p.d0).collect();
        println!(
            "median CPI {:.2}, mean d10-d0 spread {:.2}, max d10 {:.2}\n",
            oda_ml::stats::quantile(&meds, 0.5),
            oda_ml::stats::mean(&spreads),
            result.series.iter().map(|p| p.d10).fold(0.0, f64::max),
        );
        let meta = BenchMeta::new(
            &format!("fig7_{}", result.app.to_lowercase()),
            Some(config.seed),
            &config,
            started,
        );
        write_json_report(&meta, result).expect("write json");
    }
    println!(
        "expected shapes (paper): LAMMPS low/tight ~1.6; AMG low median with d8/d10 spikes to ~30;"
    );
    println!("Kripke sawtooth across all deciles; Nekbone tight early, spread blow-up late.");
}
