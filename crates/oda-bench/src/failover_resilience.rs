//! Failover resilience: replica-pair promotion under a seeded primary
//! crash (the robustness dimension of the paper's §V operational
//! story).
//!
//! A 4-shard federation runs with [`ReplicationConfig::pair`]: every
//! shard is a primary/standby pair whose journal tail streams acked
//! readings to the standby between rounds. Mid-run the harness kills
//! one primary — an honest crash that drops the broker and memtable —
//! and measures, in *virtual* time, how long the refused-publish
//! detector takes to notice (`detection_ms`), how long until the
//! standby is promoted (`promotion_ms`), how wide the ingest
//! unavailability window was, and how fast replication lag reconverges
//! after the crashed node rejoins as the new standby.
//!
//! All three fault layers derive from **one** `--fault-seed` via
//! splitmix64 sub-seeds ([`derive_seed`]):
//!
//! | lane | layer |
//! |---|---|
//! | 0 | [`ChaosBus`] outage windows gating a flaky synthetic collector |
//! | 1 | [`FaultIo`] device seeds under every node's durable journal |
//! | 2 | victim shard choice and kill-round jitter |
//!
//! A second cell runs the same schedule with replication *disabled*
//! (factor 1) and checks the kill degrades gracefully to the
//! partial-result envelope tier: the shard is detected, removed from
//! the ring, queries stay accounted with exactly one shard down, and
//! nothing acked on the surviving shards is lost or duplicated.

use dcdb_bus::{encode_reading, Broker, ChaosBus, ChaosConfig, MessageBus};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_federation::{
    derive_seed, FederatedAgent, FederationConfig, QueryRouter, ReplicationConfig, RouterConfig,
};
use dcdb_storage::{DurableBackend, DurableConfig, FaultConfig, FaultIo, StorageEngine, StorageIo};
use serde::Serialize;
use sim_cluster::Topology;
use std::path::Path;
use std::sync::Arc;

/// Harness knobs.
#[derive(Debug, Clone)]
pub struct FailoverResilienceConfig {
    /// Shards in the federation (each a replica pair in the main cell).
    pub agents: usize,
    /// Ingest rounds; each round publishes one reading per node topic.
    pub rounds: u64,
    /// Virtual milliseconds one round represents.
    pub round_ms: u64,
    /// Round at which the victim primary is killed (lane 2 jitters it).
    pub kill_round: u64,
    /// Round at which the crashed node rejoins as the new standby.
    pub rejoin_round: u64,
    /// Collector outage windows the chaos bus schedules from lane 0.
    pub collector_outages: usize,
    /// The single fault seed split into the three lanes.
    pub fault_seed: u64,
}

impl FailoverResilienceConfig {
    /// Full run: 4 replica pairs, 48 rounds at 250 virtual ms.
    pub fn paper() -> FailoverResilienceConfig {
        FailoverResilienceConfig {
            agents: 4,
            rounds: 48,
            round_ms: 250,
            kill_round: 12,
            rejoin_round: 28,
            collector_outages: 3,
            fault_seed: 0xFA11,
        }
    }

    /// CI-sized run: same shape, fewer rounds.
    pub fn quick() -> FailoverResilienceConfig {
        FailoverResilienceConfig {
            rounds: 32,
            kill_round: 8,
            rejoin_round: 18,
            collector_outages: 2,
            ..FailoverResilienceConfig::paper()
        }
    }
}

/// Outcome of the replicated (factor-2) cell.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverCell {
    /// Shard whose primary was killed.
    pub victim: String,
    /// Round the kill landed on (kill_round + lane-2 jitter).
    pub killed_at_round: u64,
    /// Kill → first refused publish, virtual ms.
    pub detection_ms: u64,
    /// Kill → standby promoted, virtual ms.
    pub promotion_ms: u64,
    /// Virtual span during which ingest to the victim's keys refused.
    pub unavailability_ms: u64,
    /// Publishes refused during the detection window.
    pub refused_publishes: u64,
    /// Collector samples the lane-0 chaos bus refused (never acked).
    pub collector_outage_skips: u64,
    /// Readings whose publish was acknowledged.
    pub published: usize,
    /// Readings the final scatter-gather returned.
    pub returned: usize,
    /// Acked readings missing from the final query.
    pub lost_acked: usize,
    /// Readings returned more than once across the epoch change.
    pub duplicates: usize,
    /// Standby promotions observed (must be exactly 1).
    pub promotions: u64,
    /// Rounds after the rejoin until lag fell to ≤ one round's batch.
    pub lag_rounds_to_converge: Option<u64>,
    /// Victim-shard replication lag at the end of the run, entries.
    pub final_lag_entries: usize,
    /// Final lag was within one publish batch of zero.
    pub lag_converged: bool,
    /// Every envelope satisfied `total == ok + timed_out + down`.
    pub envelopes_accounted: bool,
    /// Queries after promotion + rejoin were complete again.
    pub complete_after_recovery: bool,
    /// All gates held: promotion ≤ 2 s virtual, zero loss, zero
    /// duplicates, lag reconverged.
    pub ok: bool,
}

/// Outcome of the replication-disabled (factor-1) cell.
#[derive(Debug, Clone, Serialize)]
pub struct DegradedCell {
    /// Shard killed (never rejoined).
    pub victim: String,
    /// Failovers that found no standby and degraded the shard away.
    pub degraded_removals: u64,
    /// Every envelope stayed accounted through the outage.
    pub envelopes_accounted: bool,
    /// At least one post-kill query showed the partial-result envelope
    /// (one shard down, not complete).
    pub partial_envelope_visible: bool,
    /// Readings acked on surviving shards missing from final queries.
    pub lost_on_survivors: usize,
    /// Readings acked on the victim before the kill — unavailable (not
    /// lost durably; the journal survives) until an operator rejoins it.
    pub unavailable_acked: usize,
    /// Readings returned more than once.
    pub duplicates: usize,
    /// Degraded tier held: detection fired, envelopes partial but
    /// accounted, survivors exactly-once.
    pub ok: bool,
}

/// The full report written to `bench-results/failover_resilience.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverResilienceResult {
    /// The single fault seed the run used.
    pub fault_seed: u64,
    /// The three lane sub-seeds split from it.
    pub sub_seeds: [u64; 3],
    /// Replicated (factor-2) kill/promote/rejoin cell.
    pub replicated: FailoverCell,
    /// Replication-disabled (factor-1) degradation cell.
    pub degraded: DegradedCell,
    /// Both cells held their gates.
    pub ok: bool,
}

fn topic_of(topology: &Topology, node: usize) -> Topic {
    topology.node_topic(node).child("power").expect("valid")
}

/// Builds a federation whose nodes journal to `dir/<cell>/<node id>`
/// through lane-1-seeded fault devices (replica nodes get their own
/// journal directories — `agent-0i` vs `agent-0i-r`).
fn federation(
    config: &FailoverResilienceConfig,
    replication: ReplicationConfig,
    dir: &Path,
    cell: &str,
) -> Arc<FederatedAgent> {
    let disk_lane = derive_seed(config.fault_seed, 1);
    let base = dir.join(cell);
    Arc::new(
        FederatedAgent::new_with(
            FederationConfig {
                agents: config.agents,
                replication,
                ..FederationConfig::default()
            },
            move |ordinal, id| {
                let io: Arc<dyn StorageIo> = Arc::new(FaultIo::std(FaultConfig::quiet(
                    disk_lane.wrapping_add(ordinal as u64),
                )));
                let db = DurableBackend::open_with(io, &base.join(id), DurableConfig::default())?;
                Ok(Arc::new(db) as Arc<dyn StorageEngine>)
            },
        )
        .expect("federation"),
    )
}

/// The replicated cell: kill a primary mid-ingest, measure detection,
/// promotion, the unavailability window, and post-rejoin lag
/// convergence — all in virtual time.
fn run_replicated(config: &FailoverResilienceConfig, dir: &Path) -> FailoverCell {
    let topology = Topology::federated(config.agents);
    let fed = federation(config, ReplicationConfig::pair(), dir, "replicated");
    let router = QueryRouter::new(Arc::clone(&fed), RouterConfig::default());

    // Lane 2: which shard dies, and exactly when.
    let lane2 = derive_seed(config.fault_seed, 2);
    let victim = fed.shards()[(lane2 % config.agents as u64) as usize]
        .id
        .clone();
    let kill_round = config.kill_round + (lane2 >> 8) % 3;
    let victim_shard = Arc::clone(fed.shard(&victim).expect("victim exists"));
    let victim_batch = topology
        .nodes()
        .filter(|&n| fed.shard_map().assign_id(&topic_of(&topology, n)) == Some(victim.as_str()))
        .count()
        .max(1);

    // Lane 0: a flaky collector whose samples ride a chaos bus with
    // seeded outage windows; refused samples never reach the federation
    // and are never acked, so the accounting identity still closes.
    let lane0 = derive_seed(config.fault_seed, 0);
    let horizon_ns = config.rounds * config.round_ms * 1_000_000;
    let scratch = Broker::new_sync();
    let chaos = ChaosBus::new(
        scratch.handle(),
        ChaosConfig {
            outages: ChaosConfig::seeded_outages(
                lane0,
                horizon_ns,
                config.collector_outages,
                config.round_ms * 1_000_000,
                3 * config.round_ms * 1_000_000,
            ),
            ..ChaosConfig::quiet(lane0)
        },
    );
    let flaky_node = (lane0 % topology.total_nodes as u64) as usize;

    let sub_ns = (config.round_ms * 1_000_000 / topology.total_nodes as u64).max(1);
    let mut vns: u64 = 0;
    let mut v_kill: Option<u64> = None;
    let mut v_first_refusal: Option<u64> = None;
    let mut v_promoted: Option<u64> = None;
    let mut refused = 0u64;
    let mut collector_skips = 0u64;
    let mut acked: Vec<(Topic, u64)> = Vec::new();
    let mut envelopes_accounted = true;
    let mut lag_rounds_to_converge: Option<u64> = None;

    for sec in 1..=config.rounds {
        if sec == kill_round {
            // Round boundary: pending ingest is drained and the tail
            // pumped, so everything acked so far is on the primary's
            // engine, the standby's engine, or the in-flight link the
            // promotion will drain.
            fed.process_pending();
            v_kill = Some(vns);
            assert!(fed.kill(&victim), "kill {victim}");
        }
        if sec == config.rejoin_round {
            assert!(fed.rejoin(&victim), "rejoin {victim}");
        }
        for node in topology.nodes() {
            vns += sub_ns;
            let reading = SensorReading::new(sec as i64, Timestamp::from_secs(sec));
            if node == flaky_node {
                chaos.advance(Timestamp::from_millis(vns / 1_000_000));
                if chaos
                    .publish(topic_of(&topology, node), encode_reading(reading))
                    .is_err()
                {
                    collector_skips += 1;
                    continue;
                }
            }
            let topic = topic_of(&topology, node);
            if fed.publish_readings(topic.clone(), &[reading]).is_ok() {
                acked.push((topic, sec));
            } else {
                refused += 1;
                v_first_refusal.get_or_insert(vns);
            }
            if v_promoted.is_none() && victim_shard.promotions() > 0 {
                v_promoted = Some(vns);
            }
        }
        fed.process_pending();
        if sec >= config.rejoin_round && lag_rounds_to_converge.is_none() {
            let lag = victim_shard
                .replication_stats()
                .map(|s| s.lag_entries)
                .unwrap_or(usize::MAX);
            if lag <= victim_batch {
                lag_rounds_to_converge = Some(sec - config.rejoin_round);
            }
        }
        let q = router.query_sensors(&topic_of(&topology, 0), Timestamp::ZERO, Timestamp::MAX);
        envelopes_accounted &= q.envelope.accounted();
    }
    fed.tick(Timestamp::from_secs(config.rounds + 1));
    while fed.process_pending() > 0 {}

    let v_kill = v_kill.expect("kill happened");
    let detection_ms = v_first_refusal.map_or(0, |v| (v - v_kill) / 1_000_000);
    let promotion_ms = v_promoted.map_or(u64::MAX, |v| (v - v_kill) / 1_000_000);
    let unavailability_ms = match (v_first_refusal, v_promoted) {
        (Some(a), Some(b)) => (b.saturating_sub(a)) / 1_000_000,
        _ => 0,
    };
    let final_lag = victim_shard
        .replication_stats()
        .map(|s| s.lag_entries)
        .unwrap_or(usize::MAX);
    let lag_converged = final_lag <= victim_batch;

    // Final accounting: everything acked comes back exactly once,
    // across promotion, epoch bump and rejoin.
    let mut returned = 0usize;
    let mut lost = 0usize;
    let mut duplicates = 0usize;
    let mut complete_after_recovery = true;
    for node in topology.nodes() {
        let topic = topic_of(&topology, node);
        let q = router.query_sensors(&topic, Timestamp::ZERO, Timestamp::MAX);
        envelopes_accounted &= q.envelope.accounted();
        complete_after_recovery &= q.envelope.complete();
        let got: Vec<u64> = q
            .readings
            .iter()
            .map(|r| r.ts.as_nanos() / 1_000_000_000)
            .collect();
        returned += got.len();
        let expected: Vec<u64> = acked
            .iter()
            .filter(|(t, _)| *t == topic)
            .map(|(_, sec)| *sec)
            .collect();
        lost += expected.iter().filter(|s| !got.contains(s)).count();
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        duplicates += got.len() - dedup.len();
    }

    let promotions = victim_shard.promotions();
    // `promotion_ms` is measured from the kill, so it already contains
    // the detection window — the ≤ 2 s gate covers detection+promotion.
    let ok = promotions == 1
        && promotion_ms != u64::MAX
        && promotion_ms <= 2_000
        && lost == 0
        && duplicates == 0
        && lag_converged
        && envelopes_accounted
        && complete_after_recovery;
    FailoverCell {
        victim,
        killed_at_round: kill_round,
        detection_ms,
        promotion_ms,
        unavailability_ms,
        refused_publishes: refused,
        collector_outage_skips: collector_skips,
        published: acked.len(),
        returned,
        lost_acked: lost,
        duplicates,
        promotions,
        lag_rounds_to_converge,
        final_lag_entries: if final_lag == usize::MAX {
            0
        } else {
            final_lag
        },
        lag_converged,
        envelopes_accounted,
        complete_after_recovery,
        ok,
    }
}

/// The replication-disabled cell: the same kill schedule against a
/// factor-1 federation must degrade to the partial-result tier, not
/// fail the identity.
fn run_degraded(config: &FailoverResilienceConfig, dir: &Path) -> DegradedCell {
    let topology = Topology::federated(config.agents);
    let fed = federation(config, ReplicationConfig::default(), dir, "degraded");
    let router = QueryRouter::new(Arc::clone(&fed), RouterConfig::default());

    let lane2 = derive_seed(config.fault_seed, 2);
    let victim = fed.shards()[(lane2 % config.agents as u64) as usize]
        .id
        .clone();
    let kill_round = config.kill_round + (lane2 >> 8) % 3;

    let mut acked: Vec<(Topic, u64, String)> = Vec::new();
    let mut envelopes_accounted = true;
    let mut partial_visible = false;

    for sec in 1..=config.rounds {
        if sec == kill_round {
            fed.process_pending();
            assert!(fed.kill(&victim), "kill {victim}");
        }
        for node in topology.nodes() {
            let topic = topic_of(&topology, node);
            let reading = SensorReading::new(sec as i64, Timestamp::from_secs(sec));
            if fed.publish_readings(topic.clone(), &[reading]).is_ok() {
                let owner = fed
                    .shard_map()
                    .assign_id(&topic)
                    .unwrap_or_default()
                    .to_string();
                acked.push((topic, sec, owner));
            }
        }
        fed.process_pending();
        let q = router.query_sensors(&topic_of(&topology, 0), Timestamp::ZERO, Timestamp::MAX);
        envelopes_accounted &= q.envelope.accounted();
        if sec >= kill_round {
            partial_visible |= q.envelope.shards_down == 1 && !q.envelope.complete();
        }
    }
    while fed.process_pending() > 0 {}

    // Survivor accounting: readings acked on shards other than the
    // victim must come back exactly once; readings the victim acked
    // before its crash are *unavailable* (their journal survives on
    // disk) and reported separately.
    let mut lost_on_survivors = 0usize;
    let mut duplicates = 0usize;
    let unavailable = acked.iter().filter(|(_, _, o)| *o == victim).count();
    for node in topology.nodes() {
        let topic = topic_of(&topology, node);
        let q = router.query_sensors(&topic, Timestamp::ZERO, Timestamp::MAX);
        envelopes_accounted &= q.envelope.accounted();
        let got: Vec<u64> = q
            .readings
            .iter()
            .map(|r| r.ts.as_nanos() / 1_000_000_000)
            .collect();
        let expected: Vec<u64> = acked
            .iter()
            .filter(|(t, _, o)| *t == topic && *o != victim)
            .map(|(_, sec, _)| *sec)
            .collect();
        lost_on_survivors += expected.iter().filter(|s| !got.contains(s)).count();
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        duplicates += got.len() - dedup.len();
    }

    let degraded_removals = fed.stats().degraded_removals;
    let ok = degraded_removals == 1
        && envelopes_accounted
        && partial_visible
        && lost_on_survivors == 0
        && duplicates == 0;
    DegradedCell {
        victim,
        degraded_removals,
        envelopes_accounted,
        partial_envelope_visible: partial_visible,
        lost_on_survivors,
        unavailable_acked: unavailable,
        duplicates,
        ok,
    }
}

/// Runs both cells. `dir` holds the per-node journals (removing it is
/// the caller's business).
pub fn run(config: &FailoverResilienceConfig, dir: &Path) -> FailoverResilienceResult {
    let replicated = run_replicated(config, dir);
    let degraded = run_degraded(config, dir);
    let ok = replicated.ok && degraded.ok;
    FailoverResilienceResult {
        fault_seed: config.fault_seed,
        sub_seeds: [
            derive_seed(config.fault_seed, 0),
            derive_seed(config.fault_seed, 1),
            derive_seed(config.fault_seed, 2),
        ],
        replicated,
        degraded,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("oda-bench-failover-{name}-{}", std::process::id()));
        dir
    }

    #[test]
    fn replicated_cell_promotes_within_budget_and_loses_nothing() {
        let dir = tmp("replicated");
        let config = FailoverResilienceConfig::quick();
        let cell = run_replicated(&config, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(cell.ok, "{cell:?}");
        assert_eq!(cell.promotions, 1);
        assert!(cell.promotion_ms <= 2_000, "{cell:?}");
        assert_eq!(cell.lost_acked, 0);
        assert_eq!(cell.duplicates, 0);
        assert!(cell.lag_converged, "{cell:?}");
    }

    #[test]
    fn degraded_cell_serves_partial_but_accounted() {
        let dir = tmp("degraded");
        let config = FailoverResilienceConfig::quick();
        let cell = run_degraded(&config, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(cell.ok, "{cell:?}");
        assert_eq!(cell.degraded_removals, 1);
        assert_eq!(cell.lost_on_survivors, 0);
        assert!(cell.unavailable_acked > 0, "{cell:?}");
    }

    #[test]
    fn lanes_are_independent_and_deterministic() {
        let s = 0xFA11u64;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_ne!(derive_seed(s, 1), derive_seed(s, 2));
        assert_eq!(derive_seed(s, 2), derive_seed(s, 2));
    }
}
