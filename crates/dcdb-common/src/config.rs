//! Configuration primitives shared by Pushers, Collect Agents and
//! Wintermute plugins.
//!
//! DCDB configures every plugin from its own configuration file; this
//! module provides the common typed blocks (sampling/caching settings)
//! plus [`KvConfig`], a loosely-typed key-value view used by plugin
//! configurators for their plugin-specific options (paper §V-C.2).

use crate::error::DcdbError;
use crate::time::{NS_PER_MS, NS_PER_SEC};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// Sampling settings common to monitoring plugins and operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Interval between samples / computations, in milliseconds.
    pub interval_ms: u64,
    /// Cache window per sensor, in seconds (DCDB default: 180 s, the
    /// value the paper's Query Engine experiments use).
    #[serde(default = "default_cache_secs")]
    pub cache_secs: u64,
}

fn default_cache_secs() -> u64 {
    180
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            interval_ms: 1000,
            cache_secs: default_cache_secs(),
        }
    }
}

impl SamplingConfig {
    /// Sampling interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ms * NS_PER_MS
    }

    /// Cache window in nanoseconds.
    pub fn cache_window_ns(&self) -> u64 {
        self.cache_secs * NS_PER_SEC
    }

    /// Validates semantic constraints that serde cannot express.
    pub fn validate(&self) -> Result<(), DcdbError> {
        if self.interval_ms == 0 {
            return Err(DcdbError::Config("interval_ms must be > 0".into()));
        }
        if self.cache_secs == 0 {
            return Err(DcdbError::Config("cache_secs must be > 0".into()));
        }
        Ok(())
    }
}

/// Loosely-typed configuration block for plugin-specific options.
///
/// Backed by JSON values; accessors return typed results with
/// config-flavoured errors so plugin configurators produce uniform
/// diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct KvConfig(pub BTreeMap<String, Value>);

impl KvConfig {
    /// Empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a JSON object string into a config block.
    pub fn from_json(s: &str) -> Result<Self, DcdbError> {
        serde_json::from_str(s).map_err(|e| DcdbError::Config(format!("bad JSON config: {e}")))
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.0.insert(key.to_string(), value.into());
        self
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// Required string value.
    pub fn str(&self, key: &str) -> Result<&str, DcdbError> {
        self.0
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| DcdbError::Config(format!("missing or non-string key {key:?}")))
    }

    /// Optional string value.
    pub fn str_opt(&self, key: &str) -> Option<&str> {
        self.0.get(key).and_then(Value::as_str)
    }

    /// Required unsigned integer value.
    pub fn u64(&self, key: &str) -> Result<u64, DcdbError> {
        self.0
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| DcdbError::Config(format!("missing or non-integer key {key:?}")))
    }

    /// Unsigned integer with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.0.get(key).and_then(Value::as_u64).unwrap_or(default)
    }

    /// Required float value (integers are accepted and widened).
    pub fn f64(&self, key: &str) -> Result<f64, DcdbError> {
        self.0
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| DcdbError::Config(format!("missing or non-numeric key {key:?}")))
    }

    /// Float with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.0.get(key).and_then(Value::as_f64).unwrap_or(default)
    }

    /// Boolean with a default.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        self.0.get(key).and_then(Value::as_bool).unwrap_or(default)
    }

    /// Required array of strings.
    pub fn str_list(&self, key: &str) -> Result<Vec<String>, DcdbError> {
        let arr = self
            .0
            .get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| DcdbError::Config(format!("missing or non-array key {key:?}")))?;
        arr.iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| DcdbError::Config(format!("non-string element in {key:?}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_defaults_match_paper() {
        let s = SamplingConfig::default();
        assert_eq!(s.interval_ms, 1000);
        assert_eq!(s.cache_secs, 180);
        assert_eq!(s.interval_ns(), 1_000_000_000);
        assert_eq!(s.cache_window_ns(), 180_000_000_000);
        s.validate().unwrap();
    }

    #[test]
    fn sampling_validation() {
        assert!(SamplingConfig {
            interval_ms: 0,
            cache_secs: 10
        }
        .validate()
        .is_err());
        assert!(SamplingConfig {
            interval_ms: 10,
            cache_secs: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sampling_serde_defaults() {
        let s: SamplingConfig = serde_json::from_str(r#"{"interval_ms": 250}"#).unwrap();
        assert_eq!(s.interval_ms, 250);
        assert_eq!(s.cache_secs, 180);
    }

    #[test]
    fn kv_typed_accessors() {
        let cfg = KvConfig::from_json(
            r#"{"name": "regressor", "window_ms": 5000, "threshold": 0.001,
                "parallel": true, "inputs": ["power", "temp"]}"#,
        )
        .unwrap();
        assert_eq!(cfg.str("name").unwrap(), "regressor");
        assert_eq!(cfg.u64("window_ms").unwrap(), 5000);
        assert!((cfg.f64("threshold").unwrap() - 0.001).abs() < 1e-12);
        assert!(cfg.bool_or("parallel", false));
        assert_eq!(cfg.str_list("inputs").unwrap(), vec!["power", "temp"]);
        assert!(cfg.contains("name"));
        assert!(!cfg.contains("absent"));
    }

    #[test]
    fn kv_errors_name_the_key() {
        let cfg = KvConfig::new().with("n", 3);
        let err = cfg.str("n").unwrap_err().to_string();
        assert!(err.contains("\"n\""), "{err}");
        assert!(cfg.u64("missing").is_err());
        assert!(cfg.f64("missing").is_err());
        assert!(cfg.str_list("n").is_err());
    }

    #[test]
    fn kv_defaults() {
        let cfg = KvConfig::new().with("x", 7);
        assert_eq!(cfg.u64_or("x", 1), 7);
        assert_eq!(cfg.u64_or("y", 1), 1);
        assert_eq!(cfg.f64_or("x", 0.5), 7.0);
        assert_eq!(cfg.f64_or("z", 0.5), 0.5);
        assert!(!cfg.bool_or("b", false));
    }

    #[test]
    fn kv_int_widens_to_float() {
        let cfg = KvConfig::new().with("k", 3);
        assert_eq!(cfg.f64("k").unwrap(), 3.0);
    }

    #[test]
    fn kv_rejects_bad_json() {
        assert!(KvConfig::from_json("not json").is_err());
        assert!(KvConfig::from_json("[1,2]").is_err());
    }

    #[test]
    fn kv_heterogeneous_list_rejected() {
        let cfg = KvConfig::from_json(r#"{"xs": ["a", 1]}"#).unwrap();
        assert!(cfg.str_list("xs").is_err());
    }
}
