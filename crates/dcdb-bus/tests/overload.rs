//! Sustained-overload integration tests for the bounded bus.
//!
//! The broker is QoS 0: under overload it may shed messages, but the
//! shedding must be bounded (queue depth never exceeds the configured
//! capacity), policy-driven, and fully accounted (`published ==
//! delivered + dropped` once the router settles). These tests drive the
//! full async broker — publisher, router thread, consumer thread — not
//! the queue in isolation.

use dcdb_bus::codec::decode_readings;
use dcdb_bus::{Broker, BusConfig, OverflowPolicy, SubscribeOptions, TopicFilter};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn topic(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

fn filter(s: &str) -> TopicFilter {
    TopicFilter::parse(s).unwrap()
}

fn reading(seq: u64) -> SensorReading {
    SensorReading {
        value: seq as i64,
        ts: Timestamp::from_micros(seq + 1),
    }
}

/// A deliberately slow consumer under sustained overload never sees its
/// queue grow past the configured bound, for any overflow policy.
#[test]
fn bounded_subscription_never_exceeds_depth_under_overload() {
    for policy in [
        OverflowPolicy::DropOldest,
        OverflowPolicy::DropNewest,
        OverflowPolicy::Block,
    ] {
        let depth = 64usize;
        let broker = Broker::with_config(BusConfig {
            router_depth: 256,
            router_policy: policy,
            sub_depth: depth,
            sub_policy: policy,
        });
        let sub = broker.handle().subscribe_with(
            filter("/bench/#"),
            SubscribeOptions::default().depth(depth).policy(policy),
        );

        let stop = Arc::new(AtomicBool::new(false));
        let consumer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                loop {
                    match sub.recv_timeout(Duration::from_millis(1)) {
                        // Slower than the publisher: force overload.
                        Ok(Some(_)) => std::thread::sleep(Duration::from_micros(20)),
                        Ok(None) => {
                            if stop.load(Ordering::Acquire) && sub.queued() == 0 {
                                return sub;
                            }
                        }
                        Err(_) => return sub,
                    }
                }
            })
        };

        let handle = broker.handle();
        let t = topic("/bench/node00/power");
        for seq in 0..10_000u64 {
            handle.publish_readings(t.clone(), &[reading(seq)]).unwrap();
        }
        broker.flush();
        stop.store(true, Ordering::Release);
        let sub = consumer.join().unwrap();

        let m = sub.metrics();
        assert!(
            m.high_water <= depth,
            "{policy:?}: high-water {} exceeded configured depth {depth}",
            m.high_water
        );
        assert!(
            m.conserved(),
            "{policy:?}: queue counters not conserved: {m:?}"
        );
    }
}

/// With `DropOldest`, the messages that survive overload are the
/// freshest ones, and they arrive in publication (timestamp) order.
#[test]
fn drop_oldest_survivors_preserve_timestamp_order() {
    let broker = Broker::with_config(BusConfig {
        sub_depth: 32,
        sub_policy: OverflowPolicy::DropOldest,
        ..BusConfig::default()
    });
    let sub = broker
        .handle()
        .subscribe_with(filter("/bench/#"), SubscribeOptions::default());

    let t = topic("/bench/node00/power");
    let total = 5_000u64;
    for seq in 0..total {
        broker
            .handle()
            .publish_readings(t.clone(), &[reading(seq)])
            .unwrap();
    }
    broker.flush();

    let mut timestamps = Vec::new();
    for msg in sub.drain() {
        for r in decode_readings(msg.payload).unwrap() {
            timestamps.push(r.ts.as_nanos());
        }
    }
    assert!(!timestamps.is_empty(), "no survivors after overload");
    assert!(
        timestamps.len() <= 32,
        "more survivors than the queue bound"
    );
    assert!(
        timestamps.windows(2).all(|w| w[0] < w[1]),
        "survivors out of order: {timestamps:?}"
    );
    // Survivors are the freshest data: the last published reading is
    // among them.
    assert_eq!(
        *timestamps.last().unwrap(),
        Timestamp::from_micros(total).as_nanos(),
        "freshest reading lost"
    );
}

/// Every published message is accounted as delivered or dropped for the
/// shedding policies, even with multiple subscribers at different
/// depths and nobody consuming.
#[test]
fn published_equals_delivered_plus_dropped_for_shedding_policies() {
    for policy in [OverflowPolicy::DropOldest, OverflowPolicy::DropNewest] {
        let broker = Broker::with_config(BusConfig {
            router_depth: 1024,
            // Keep the router lossless here so per-subscriber
            // accounting is exercised in isolation; router losses are
            // covered by the broker's own flush-under-drops test.
            router_policy: OverflowPolicy::Block,
            sub_depth: 16,
            sub_policy: policy,
        });
        let wide = broker
            .handle()
            .subscribe_with(filter("/#"), SubscribeOptions::default().label("wide"));
        let narrow = broker.handle().subscribe_with(
            filter("/bench/+/power"),
            SubscribeOptions::default().depth(4).label("narrow"),
        );

        let total = 3_000u64;
        for seq in 0..total {
            let t = topic(if seq % 2 == 0 {
                "/bench/node00/power"
            } else {
                "/bench/node00/temp"
            });
            broker
                .handle()
                .publish_readings(t, &[reading(seq)])
                .unwrap();
        }
        broker.flush();

        let stats = broker.stats();
        assert_eq!(stats.published, total, "{policy:?}");
        assert_eq!(
            stats.router_dropped, 0,
            "{policy:?}: lossless router dropped"
        );
        // Each message matched `wide`; every second one also matched
        // `narrow` — three copies per two messages.
        let copies = total + total / 2;
        assert_eq!(
            stats.delivered + stats.dropped,
            copies,
            "{policy:?}: accounting leak (delivered {} + dropped {} != copies {copies})",
            stats.delivered,
            stats.dropped
        );
        // The bounded queues really did shed (the test is meaningless
        // if nothing overflowed)...
        assert!(
            stats.dropped > 0,
            "{policy:?}: no overload reached the queues"
        );
        // ...and what remains queued matches what was never dropped.
        assert_eq!(
            wide.queued() as u64 + narrow.queued() as u64,
            stats.delivered,
            "{policy:?}"
        );
        for sm in [wide.metrics(), narrow.metrics()] {
            assert!(sm.conserved(), "{policy:?}: {sm:?}");
        }
    }
}

/// `Block` end to end is lossless: with consumers draining, every
/// published copy is delivered and nothing is dropped — the publisher
/// is paced instead.
#[test]
fn block_policy_is_lossless_end_to_end() {
    let broker = Broker::with_config(BusConfig {
        router_depth: 64,
        router_policy: OverflowPolicy::Block,
        sub_depth: 8,
        sub_policy: OverflowPolicy::Block,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let mut consumers = Vec::new();
    for f in ["/#", "/bench/+/power"] {
        let sub = broker
            .handle()
            .subscribe_with(filter(f), SubscribeOptions::default().label(f));
        let stop = Arc::clone(&stop);
        consumers.push(std::thread::spawn(move || {
            let mut consumed = 0u64;
            loop {
                match sub.recv_timeout(Duration::from_millis(1)) {
                    Ok(Some(_)) => consumed += 1,
                    Ok(None) => {
                        if stop.load(Ordering::Acquire) && sub.queued() == 0 {
                            return consumed;
                        }
                    }
                    Err(_) => return consumed,
                }
            }
        }));
    }

    let total = 3_000u64;
    for seq in 0..total {
        let t = topic(if seq % 2 == 0 {
            "/bench/node00/power"
        } else {
            "/bench/node00/temp"
        });
        broker
            .handle()
            .publish_readings(t, &[reading(seq)])
            .unwrap();
    }
    broker.flush();
    stop.store(true, Ordering::Release);
    let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();

    let stats = broker.stats();
    let copies = total + total / 2;
    assert_eq!(stats.published, total);
    assert_eq!(stats.dropped, 0, "Block policy must not drop");
    assert_eq!(stats.router_dropped, 0);
    assert_eq!(stats.delivered, copies);
    assert_eq!(consumed, copies);
}
