//! Sensor readings: the atomic unit of monitoring data.
//!
//! Following DCDB, a sensor produces *readings*, each a 64-bit integer
//! value plus a nanosecond timestamp. Integer values keep the wire and
//! storage formats compact and exact; plugins that need real-valued data
//! (derived metrics, model outputs) scale by a fixed factor declared in
//! the sensor's metadata.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// A single monitoring sample: `(value, timestamp)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SensorReading {
    /// Raw integer sensor value (possibly fixed-point scaled).
    pub value: i64,
    /// Time the value was sampled.
    pub ts: Timestamp,
}

impl SensorReading {
    /// Creates a reading.
    pub const fn new(value: i64, ts: Timestamp) -> Self {
        SensorReading { value, ts }
    }

    /// The value as `f64`, applying a fixed-point `scale` divisor
    /// (`scale == 1.0` for plain integer sensors).
    pub fn scaled(&self, scale: f64) -> f64 {
        self.value as f64 / scale
    }
}

/// Fixed-point scale used by real-valued sensors: values are stored as
/// `round(x * FIXED_POINT_SCALE)`.
pub const FIXED_POINT_SCALE: f64 = 1000.0;

/// Encodes a real value into the fixed-point integer representation.
pub fn encode_f64(x: f64) -> i64 {
    (x * FIXED_POINT_SCALE).round() as i64
}

/// Decodes a fixed-point integer back into a real value.
pub fn decode_f64(v: i64) -> f64 {
    v as f64 / FIXED_POINT_SCALE
}

/// Summary statistics over a sequence of readings.
///
/// Used by the Query Engine and by aggregating operators; computed in one
/// pass (Welford for variance) so it can run inside tight sampling loops.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReadingStats {
    /// Number of readings aggregated.
    pub count: usize,
    /// Arithmetic mean of the values.
    pub mean: f64,
    /// Population variance of the values.
    pub variance: f64,
    /// Smallest value seen.
    pub min: i64,
    /// Largest value seen.
    pub max: i64,
    /// Earliest timestamp seen.
    pub first_ts: Timestamp,
    /// Latest timestamp seen.
    pub last_ts: Timestamp,
}

impl ReadingStats {
    /// Aggregates an iterator of readings. Returns `None` for an empty
    /// input, since min/max/mean are undefined there.
    pub fn from_readings<'a, I>(readings: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a SensorReading>,
    {
        let mut it = readings.into_iter();
        let first = *it.next()?;
        let mut s = ReadingStats {
            count: 1,
            mean: first.value as f64,
            variance: 0.0,
            min: first.value,
            max: first.value,
            first_ts: first.ts,
            last_ts: first.ts,
        };
        let mut m2 = 0.0f64;
        for r in it {
            s.count += 1;
            let x = r.value as f64;
            let delta = x - s.mean;
            s.mean += delta / s.count as f64;
            m2 += delta * (x - s.mean);
            s.min = s.min.min(r.value);
            s.max = s.max.max(r.value);
            if r.ts < s.first_ts {
                s.first_ts = r.ts;
            }
            if r.ts > s.last_ts {
                s.last_ts = r.ts;
            }
        }
        s.variance = if s.count > 1 {
            m2 / s.count as f64
        } else {
            0.0
        };
        Some(s)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Rate of change between first and last reading, in value units per
    /// second. `None` when fewer than two distinct timestamps exist.
    pub fn rate_per_sec(&self, first_value: i64, last_value: i64) -> Option<f64> {
        let dt_ns = self.last_ts.elapsed_since(self.first_ts);
        if dt_ns == 0 {
            return None;
        }
        Some((last_value - first_value) as f64 * 1e9 / dt_ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64, s: u64) -> SensorReading {
        SensorReading::new(v, Timestamp::from_secs(s))
    }

    #[test]
    fn fixed_point_round_trips() {
        for x in [-12.345, 0.0, 0.001, 98765.432] {
            let enc = encode_f64(x);
            assert!((decode_f64(enc) - x).abs() < 1e-3, "{x}");
        }
    }

    #[test]
    fn scaled_applies_divisor() {
        let rd = SensorReading::new(1500, Timestamp::ZERO);
        assert_eq!(rd.scaled(1000.0), 1.5);
        assert_eq!(rd.scaled(1.0), 1500.0);
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(ReadingStats::from_readings(std::iter::empty::<&SensorReading>()).is_none());
    }

    #[test]
    fn stats_single_reading() {
        let rs = [r(42, 7)];
        let s = ReadingStats::from_readings(&rs).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.first_ts, Timestamp::from_secs(7));
        assert_eq!(s.last_ts, Timestamp::from_secs(7));
    }

    #[test]
    fn stats_known_values() {
        let rs = [
            r(2, 1),
            r(4, 2),
            r(4, 3),
            r(4, 4),
            r(5, 5),
            r(5, 6),
            r(7, 7),
            r(9, 8),
        ];
        let s = ReadingStats::from_readings(&rs).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-9, "var={}", s.variance);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn stats_handle_unordered_timestamps() {
        let rs = [r(1, 5), r(2, 3), r(3, 9)];
        let s = ReadingStats::from_readings(&rs).unwrap();
        assert_eq!(s.first_ts, Timestamp::from_secs(3));
        assert_eq!(s.last_ts, Timestamp::from_secs(9));
    }

    #[test]
    fn rate_per_sec_computes_slope() {
        let rs = [r(100, 10), r(400, 13)];
        let s = ReadingStats::from_readings(&rs).unwrap();
        // 300 units over 3 seconds.
        assert!((s.rate_per_sec(100, 400).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rate_per_sec_zero_span_is_none() {
        let rs = [r(1, 4), r(2, 4)];
        let s = ReadingStats::from_readings(&rs).unwrap();
        assert!(s.rate_per_sec(1, 2).is_none());
    }
}
