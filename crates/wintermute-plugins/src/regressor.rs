//! Online random-forest regression plugin (paper §VI-B, Case Study 1).
//!
//! Re-implements the paper's regressor: "at each computation interval,
//! for each input sensor of a certain unit a series of statistical
//! features (e.g., mean or standard deviation) are computed from its
//! recent readings. These features are then combined to form a feature
//! vector, which is fed into the random forest model to perform
//! regression and output a sensor prediction of the next [interval].
//! Training of the model, which is shared by all units of an operator,
//! is performed automatically: feature vectors are accumulated in
//! memory until a certain training set size is reached."
//!
//! Options:
//! * `target` — name (last segment) of the input sensor to predict
//!   (required);
//! * `training_size` — samples accumulated before fitting (default
//!   1000; the paper's case study uses 30 000);
//! * `window_ms` — feature window (default 4 × interval);
//! * `trees` — forest size (default 20);
//! * `max_depth` — tree depth cap (default 12);
//! * `features` — list of per-sensor statistics (default
//!   mean/std/min/max/last/slope).
//!
//! The operator also exposes an operator-level output —
//! `<first unit>/avg-rel-error` — carrying the running mean relative
//! error across all units, mirroring §V-C.2's "average error of a model
//! applied to a set of units". Option `model` switches between the
//! paper's random forest and a ridge-regression ablation baseline.

use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::{decode_f64, encode_f64, SensorReading};
use dcdb_common::time::NS_PER_MS;
use oda_ml::features::{Feature, FeatureExtractor};
use oda_ml::forest::{ForestConfig, RandomForest};
use oda_ml::linear::RidgeRegression;
use oda_ml::tree::TreeConfig;
use wintermute::prelude::*;

/// Which model family the operator trains (option `model`); the random
/// forest is the paper's choice, ridge regression the ablation baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Bagged CART forest (paper §VI-B).
    Forest,
    /// Ridge linear regression (ablation baseline).
    Linear,
}

enum FittedModel {
    Forest(RandomForest),
    Linear(RidgeRegression),
}

impl FittedModel {
    fn predict(&self, features: &[f64]) -> f64 {
        match self {
            FittedModel::Forest(m) => m.predict(features),
            FittedModel::Linear(m) => m.predict(features),
        }
    }
}

/// Per-unit training state.
#[derive(Default)]
struct UnitState {
    /// Features computed at the previous tick, waiting for their label
    /// (the target's value one interval later).
    pending: Option<Vec<f64>>,
    /// Relative errors of recent predictions (bounded).
    recent_errors: Vec<f64>,
    /// The last prediction made, to score once truth arrives.
    last_prediction: Option<f64>,
}

/// The regression operator. One model shared by all of its units
/// (sequential mode), or one per unit (parallel mode — the configurator
/// splits units across operators, giving each its own model).
pub struct RegressorOperator {
    name: String,
    units: Vec<Unit>,
    extractor: FeatureExtractor,
    target: String,
    window_ns: u64,
    training_size: usize,
    forest_config: ForestConfig,
    model_kind: ModelKind,
    /// Accumulated training data (shared across units, as in the paper).
    train_x: Vec<Vec<f64>>,
    train_y: Vec<f64>,
    model: Option<FittedModel>,
    states: Vec<UnitState>,
    retrain: bool,
}

impl RegressorOperator {
    /// True once the model has been fitted.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Samples accumulated so far.
    pub fn training_samples(&self) -> usize {
        self.train_x.len()
    }

    fn feature_vector(&self, unit: &Unit, ctx: &ComputeContext<'_>) -> Vec<f64> {
        let windows: Vec<Vec<f64>> = unit
            .inputs
            .iter()
            .map(|input| {
                ctx.query
                    .query(
                        input,
                        QueryMode::Relative {
                            offset_ns: self.window_ns,
                        },
                    )
                    .iter()
                    .map(|r| r.value as f64)
                    .collect()
            })
            .collect();
        self.extractor.extract(&windows)
    }

    fn target_value(&self, unit: &Unit, ctx: &ComputeContext<'_>) -> Option<f64> {
        let target = unit.inputs.iter().find(|i| i.name() == self.target)?;
        ctx.latest_value(target)
    }
}

impl Operator for RegressorOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn units(&self) -> &[Unit] {
        &self.units
    }

    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
        let unit = self.units[i].clone();
        let Some(truth) = self.target_value(&unit, ctx) else {
            return Ok(Vec::new()); // target sensor has no data yet
        };

        // Score the previous prediction against today's truth.
        if let Some(pred) = self.states[i].last_prediction.take() {
            if truth.abs() > 1e-9 {
                let errs = &mut self.states[i].recent_errors;
                errs.push(((pred - truth) / truth).abs());
                if errs.len() > 256 {
                    errs.remove(0);
                }
            }
        }

        // Label the pending feature vector with the current truth.
        if let Some(prev_features) = self.states[i].pending.take() {
            if self.model.is_none() || self.retrain {
                self.train_x.push(prev_features);
                self.train_y.push(truth);
            }
        }

        // Train once enough samples have accumulated.
        if self.model.is_none() && self.train_x.len() >= self.training_size {
            self.model = Some(match self.model_kind {
                ModelKind::Forest => FittedModel::Forest(RandomForest::fit(
                    &self.train_x,
                    &self.train_y,
                    &self.forest_config,
                )),
                ModelKind::Linear => FittedModel::Linear(
                    RidgeRegression::fit(&self.train_x, &self.train_y, 1e-3)
                        .expect("ridge normal matrix is SPD with lambda > 0"),
                ),
            });
            if !self.retrain {
                self.train_x = Vec::new();
                self.train_y = Vec::new();
            }
        }

        // Extract features now; they predict the next interval.
        let features = self.feature_vector(&unit, ctx);
        let mut out = Vec::new();
        if let Some(model) = &self.model {
            let prediction = model.predict(&features);
            self.states[i].last_prediction = Some(prediction);
            for output in &unit.outputs {
                out.push((
                    output.clone(),
                    SensorReading::new(encode_f64(prediction), ctx.now),
                ));
            }
        }
        self.states[i].pending = Some(features);
        Ok(out)
    }

    fn operator_outputs(&mut self, ctx: &ComputeContext<'_>) -> Vec<Output> {
        // Running mean relative error across all units (×1000 fixed
        // point), published under the first unit's node.
        let all: Vec<f64> = self
            .states
            .iter()
            .flat_map(|s| s.recent_errors.iter().copied())
            .collect();
        if all.is_empty() {
            return Vec::new();
        }
        let avg = oda_ml::stats::mean(&all);
        let topic = match self.units[0].name.child("avg-rel-error") {
            Ok(t) => t,
            Err(_) => return Vec::new(),
        };
        vec![(topic, SensorReading::new(encode_f64(avg), ctx.now))]
    }
}

/// Decodes a prediction output back to a float.
pub fn decode_prediction(reading: &SensorReading) -> f64 {
    decode_f64(reading.value)
}

/// The plugin factory.
pub struct RegressorPlugin;

impl OperatorPlugin for RegressorPlugin {
    fn kind(&self) -> &str {
        "regressor"
    }

    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>> {
        let target = config
            .options
            .str("target")
            .map_err(|_| DcdbError::Config("regressor requires a 'target' option".into()))?
            .to_string();
        let training_size = config.options.u64_or("training_size", 1000) as usize;
        let interval_ms = config.interval_ms().unwrap_or(1000);
        let window_ns = config.options.u64_or("window_ms", interval_ms * 4) * NS_PER_MS;
        let features = match config.options.str_list("features") {
            Ok(names) => {
                let mut fs = Vec::new();
                for n in &names {
                    fs.push(
                        Feature::parse(n)
                            .ok_or_else(|| DcdbError::Config(format!("unknown feature {n:?}")))?,
                    );
                }
                fs
            }
            Err(_) => Feature::default_set(),
        };
        let forest_config = ForestConfig {
            n_trees: config.options.u64_or("trees", 20) as usize,
            tree: TreeConfig {
                max_depth: config.options.u64_or("max_depth", 12) as usize,
                ..TreeConfig::default()
            },
            seed: config.options.u64_or("seed", 0xDCDB),
            parallel: true,
        };
        let retrain = config.options.bool_or("continuous_training", false);
        let model_kind = match config.options.str_opt("model").unwrap_or("forest") {
            "forest" => ModelKind::Forest,
            "linear" => ModelKind::Linear,
            other => {
                return Err(DcdbError::Config(format!(
                    "unknown regressor model {other:?} (forest|linear)"
                )))
            }
        };

        let resolution = config.resolve(nav)?;
        // Every unit must actually contain the target sensor.
        for unit in &resolution.units {
            if !unit.inputs.iter().any(|i| i.name() == target) {
                return Err(DcdbError::Config(format!(
                    "unit {} lacks target sensor {target:?} among its inputs",
                    unit.name
                )));
            }
        }
        let extractor = FeatureExtractor::new(features);
        instantiate(config, resolution.units, |name, units| {
            let states = units.iter().map(|_| UnitState::default()).collect();
            Ok(Box::new(RegressorOperator {
                name,
                units,
                extractor: extractor.clone(),
                target: target.clone(),
                window_ns,
                training_size,
                forest_config: forest_config.clone(),
                model_kind,
                train_x: Vec::new(),
                train_y: Vec::new(),
                model: None,
                states,
                retrain,
            }) as Box<dyn Operator>)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::{Timestamp, Topic};
    use std::sync::Arc;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// Power follows utilization with a fixed gain: perfectly learnable.
    fn drive(qe: &QueryEngine, sec: u64) {
        let util = 50 + ((sec / 10) % 3) as i64 * 50; // steps: 50,100,150
        qe.insert(
            &t("/n0/util"),
            SensorReading::new(util, Timestamp::from_secs(sec)),
        );
        qe.insert(
            &t("/n0/power"),
            SensorReading::new(40 + util, Timestamp::from_secs(sec)),
        );
    }

    fn setup(training_size: u64) -> Arc<OperatorManager> {
        let qe = Arc::new(QueryEngine::new(256));
        drive(&qe, 1);
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        let cfg = PluginConfig::online("reg", "regressor", 1000)
            .with_patterns(
                &["<bottomup>util", "<bottomup>power"],
                &["<bottomup>power-pred"],
            )
            .with_option("target", "power")
            .with_option("training_size", training_size)
            .with_option("trees", 10u64)
            .with_option("window_ms", 5000u64);
        mgr.load(cfg).unwrap();
        mgr
    }

    #[test]
    fn trains_then_predicts_accurately() {
        let mgr = setup(60);
        // Drive data + ticks for 100 virtual seconds.
        for sec in 2..=100u64 {
            drive(mgr.query_engine(), sec);
            mgr.tick(Timestamp::from_secs(sec));
        }
        let preds = mgr.query_engine().query(
            &t("/n0/power-pred"),
            QueryMode::Relative {
                offset_ns: 30_000_000_000,
            },
        );
        assert!(!preds.is_empty(), "model never produced predictions");
        // Compare each prediction with truth at the same timestamp.
        let mut errs = Vec::new();
        for p in &preds {
            let truth = mgr
                .query_engine()
                .query(&t("/n0/power"), QueryMode::Absolute { t0: p.ts, t1: p.ts })
                .first()
                .map(|r| r.value as f64);
            if let Some(truth) = truth {
                errs.push(((decode_prediction(p) - truth) / truth).abs());
            }
        }
        let avg = oda_ml::stats::mean(&errs);
        // The signal is a clean 30s-periodic step function: the forest
        // should track it well within the paper's 6-10% band.
        assert!(avg < 0.15, "avg rel error {avg}");
    }

    #[test]
    fn no_output_before_training_completes() {
        let mgr = setup(1_000_000); // never reached
        for sec in 2..=30u64 {
            drive(mgr.query_engine(), sec);
            mgr.tick(Timestamp::from_secs(sec));
        }
        assert!(mgr
            .query_engine()
            .query(&t("/n0/power-pred"), QueryMode::Latest)
            .is_empty());
    }

    #[test]
    fn operator_error_metric_appears() {
        let mgr = setup(20);
        for sec in 2..=80u64 {
            drive(mgr.query_engine(), sec);
            mgr.tick(Timestamp::from_secs(sec));
        }
        let err = mgr
            .query_engine()
            .query(&t("/n0/avg-rel-error"), QueryMode::Latest);
        assert!(!err.is_empty(), "operator-level error output missing");
        assert!(decode_f64(err[0].value) < 0.5);
    }

    #[test]
    fn linear_model_option_trains_and_predicts() {
        let qe = Arc::new(QueryEngine::new(256));
        drive(&qe, 1);
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        mgr.load(
            PluginConfig::online("reg", "regressor", 1000)
                .with_patterns(
                    &["<bottomup>util", "<bottomup>power"],
                    &["<bottomup>power-pred"],
                )
                .with_option("target", "power")
                .with_option("training_size", 30u64)
                .with_option("model", "linear"),
        )
        .unwrap();
        for sec in 2..=80u64 {
            drive(mgr.query_engine(), sec);
            mgr.tick(Timestamp::from_secs(sec));
        }
        let preds = mgr
            .query_engine()
            .query(&t("/n0/power-pred"), QueryMode::Latest);
        assert!(!preds.is_empty(), "linear model never predicted");
        // power = 40 + util is exactly linear: predictions are close.
        let truth = mgr.query_engine().query(&t("/n0/power"), QueryMode::Latest)[0].value as f64;
        assert!(
            (decode_prediction(&preds[0]) - truth).abs() / truth < 0.2,
            "linear pred {} vs {}",
            decode_prediction(&preds[0]),
            truth
        );
    }

    #[test]
    fn unknown_model_rejected() {
        let qe = Arc::new(QueryEngine::new(8));
        drive(&qe, 1);
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        let cfg = PluginConfig::online("reg", "regressor", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>pred"])
            .with_option("target", "power")
            .with_option("model", "quantum");
        assert!(mgr.load(cfg).is_err());
    }

    #[test]
    fn continuous_training_keeps_accumulating() {
        let qe = Arc::new(QueryEngine::new(256));
        drive(&qe, 1);
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        let cfg = PluginConfig::online("reg", "regressor", 1000)
            .with_patterns(
                &["<bottomup>util", "<bottomup>power"],
                &["<bottomup>power-pred"],
            )
            .with_option("target", "power")
            .with_option("training_size", 20u64)
            .with_option("trees", 5u64)
            .with_option("continuous_training", true);
        mgr.load(cfg).unwrap();
        for sec in 2..=60u64 {
            drive(mgr.query_engine(), sec);
            mgr.tick(Timestamp::from_secs(sec));
        }
        // Model trained and still predicting (continuous mode keeps the
        // training buffer growing instead of clearing it).
        let preds = mgr
            .query_engine()
            .query(&t("/n0/power-pred"), QueryMode::Latest);
        assert!(!preds.is_empty());
    }

    #[test]
    fn missing_target_option_fails_configuration() {
        let qe = Arc::new(QueryEngine::new(8));
        qe.insert(
            &t("/n0/power"),
            SensorReading::new(1, Timestamp::from_secs(1)),
        );
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        let cfg = PluginConfig::online("reg", "regressor", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>pred"]);
        assert!(mgr.load(cfg).is_err());
    }

    #[test]
    fn target_must_be_an_input() {
        let qe = Arc::new(QueryEngine::new(8));
        qe.insert(
            &t("/n0/util"),
            SensorReading::new(1, Timestamp::from_secs(1)),
        );
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        let cfg = PluginConfig::online("reg", "regressor", 1000)
            .with_patterns(&["<bottomup>util"], &["<bottomup>pred"])
            .with_option("target", "power");
        let err = mgr.load(cfg).unwrap_err().to_string();
        assert!(err.contains("target"), "{err}");
    }

    #[test]
    fn bad_feature_name_rejected() {
        let qe = Arc::new(QueryEngine::new(8));
        qe.insert(
            &t("/n0/power"),
            SensorReading::new(1, Timestamp::from_secs(1)),
        );
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(RegressorPlugin));
        let cfg = PluginConfig::online("reg", "regressor", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>pred"])
            .with_option("target", "power")
            .with_option("features", serde_json::json!(["mean", "bogus"]));
        assert!(mgr.load(cfg).is_err());
    }
}
