//! Regenerates Figure 5 (paper §VI-A): Query Engine overhead heatmaps
//! in absolute and relative mode, plus the §VI-A footprint numbers
//! (per-core CPU load, cache memory).
//!
//! ```text
//! cargo run --release -p oda-bench --bin fig5_overhead            # paper grid
//! cargo run --release -p oda-bench --bin fig5_overhead -- --quick # smoke run
//! cargo run --release -p oda-bench --bin fig5_overhead -- --footprint
//! ```

use oda_bench::fig5::{footprint, run_grid, Fig5Config};
use oda_bench::{format_heatmap, write_json_report, BenchMeta};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let footprint_only = args.iter().any(|a| a == "--footprint");

    if footprint_only {
        println!("measuring Pusher footprint (1000 tester sensors, 100 queries)...");
        let (cpu_pct, mem_bytes) = footprint(1000, 100, 5.0);
        println!("pusher CPU load : {cpu_pct:.2} % (paper: peaks at 1.2 %)");
        println!(
            "cache memory    : {:.1} MiB (paper: never exceeded 25 MB)",
            mem_bytes as f64 / (1024.0 * 1024.0)
        );
        return;
    }

    let config = if quick {
        Fig5Config::quick()
    } else {
        Fig5Config::paper()
    };
    println!(
        "victim kernel: {}x{} matmul × {} rounds; {} repeats per cell; {} tester sensors\n",
        config.kernel_dim, config.kernel_dim, config.kernel_rounds, config.repeats, config.sensors
    );

    for mode in ["absolute", "relative"] {
        println!(
            "=== Fig. 5{} — overhead heatmap, {mode} mode ===",
            if mode == "absolute" { "a" } else { "b" }
        );
        let started = std::time::Instant::now();
        let cells = run_grid(&config, mode);
        print!("{}", format_heatmap(&cells));
        let max = cells.iter().map(|c| c.overhead_pct).fold(0.0, f64::max);
        let avg = cells.iter().map(|c| c.overhead_pct).sum::<f64>() / cells.len() as f64;
        println!("max overhead {max:.2} %, mean {avg:.2} % (paper: below 0.5 % in all cases)\n");
        let meta = BenchMeta::new(&format!("fig5_{mode}"), None, &config, started);
        let path = write_json_report(&meta, &cells).expect("write json");
        println!("raw data -> {}\n", path.display());
    }
}
