//! Failure-injection integration tests: the stack must degrade
//! gracefully under the faults a production monitoring system actually
//! sees — clock hiccups producing stale samples, corrupt frames on the
//! bus, operators failing mid-tick, subscribers vanishing, and plugins
//! being reconfigured against a sensor space that shrank.

use dcdb_wintermute::dcdb_bus::Broker;
use dcdb_wintermute::dcdb_collectagent::{CollectAgent, CollectAgentConfig};
use dcdb_wintermute::dcdb_common::error::Result as DcdbResult;
use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp, Topic};
use dcdb_wintermute::dcdb_storage::StorageBackend;
use dcdb_wintermute::wintermute::prelude::*;
use dcdb_wintermute::wintermute_plugins;
use std::sync::Arc;

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

#[test]
fn stale_samples_are_rejected_but_do_not_poison_the_cache() {
    let qe = QueryEngine::new(16);
    let topic = t("/n0/power");
    qe.insert(&topic, SensorReading::new(1, Timestamp::from_secs(10)));
    // Clock hiccup: a sample from the past.
    qe.insert(&topic, SensorReading::new(2, Timestamp::from_secs(5)));
    qe.insert(&topic, SensorReading::new(3, Timestamp::from_secs(11)));
    let got = qe.query(
        &topic,
        QueryMode::Absolute { t0: Timestamp::ZERO, t1: Timestamp::MAX },
    );
    let vals: Vec<i64> = got.iter().map(|r| r.value).collect();
    assert_eq!(vals, vec![1, 3]);
}

#[test]
fn corrupt_frames_interleaved_with_good_ones() {
    let broker = Broker::new_sync();
    let storage = Arc::new(StorageBackend::new());
    let agent =
        CollectAgent::new(CollectAgentConfig::default(), &broker.handle(), storage).unwrap();
    let bus = broker.handle();
    for i in 1..=10u64 {
        if i % 3 == 0 {
            // Corrupt frame.
            bus.publish(t("/n0/power"), bytes::Bytes::from_static(&[0xFF, 0x00]))
                .unwrap();
        } else {
            bus.publish_readings(
                t("/n0/power"),
                &[SensorReading::new(i as i64, Timestamp::from_secs(i))],
            )
            .unwrap();
        }
    }
    agent.process_pending();
    let stats = agent.stats();
    assert_eq!(stats.decode_errors, 3);
    assert_eq!(stats.readings, 7);
    // Good data is fully usable.
    let got = agent.query_engine().query(&t("/n0/power"), QueryMode::Latest);
    assert_eq!(got[0].value, 10);
}

/// An operator that fails on every odd tick.
struct FlakyOperator {
    units: Vec<Unit>,
    tick: usize,
}

impl Operator for FlakyOperator {
    fn name(&self) -> &str {
        "flaky"
    }
    fn units(&self) -> &[Unit] {
        &self.units
    }
    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> DcdbResult<Vec<Output>> {
        if i == 0 {
            self.tick += 1;
        }
        if self.tick % 2 == 1 {
            return Err(dcdb_wintermute::dcdb_common::DcdbError::InvalidState(
                "injected failure".into(),
            ));
        }
        Ok(vec![(
            self.units[i].outputs[0].clone(),
            SensorReading::new(self.tick as i64, ctx.now),
        )])
    }
}

struct FlakyPlugin;
impl OperatorPlugin for FlakyPlugin {
    fn kind(&self) -> &str {
        "flaky"
    }
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> DcdbResult<Vec<Box<dyn Operator>>> {
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |_, units| {
            Ok(Box::new(FlakyOperator { units, tick: 0 }) as Box<dyn Operator>)
        })
    }
}

#[test]
fn failing_operator_does_not_starve_healthy_ones() {
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(&t("/n0/power"), SensorReading::new(100, Timestamp::from_secs(1)));
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    mgr.register_plugin(Box::new(FlakyPlugin));
    wintermute_plugins::register_all(&mgr, None);
    mgr.load(
        PluginConfig::online("bad", "flaky", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>flaky-out"]),
    )
    .unwrap();
    mgr.load(
        PluginConfig::online("good", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
            .with_option("window_ms", 10_000u64),
    )
    .unwrap();

    // Tick 1: flaky fails, aggregator succeeds.
    let report = mgr.tick(Timestamp::from_secs(2));
    assert_eq!(report.operators_run, 2);
    assert_eq!(report.errors.len(), 1);
    assert!(report.errors[0].contains("injected failure"));
    assert!(!mgr
        .query_engine()
        .query(&t("/n0/power-avg"), QueryMode::Latest)
        .is_empty());

    // Tick 2: flaky recovers on even ticks.
    let report = mgr.tick(Timestamp::from_secs(3));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(!mgr
        .query_engine()
        .query(&t("/n0/flaky-out"), QueryMode::Latest)
        .is_empty());
}

#[test]
fn dropped_subscriber_does_not_break_publishing() {
    let broker = Broker::new_sync();
    let bus = broker.handle();
    let sub = bus.subscribe_str("/#").unwrap();
    bus.publish(t("/n0/a"), bytes::Bytes::new()).unwrap();
    assert_eq!(sub.queued(), 1);
    drop(sub);
    // Publishing continues; nothing delivered, nothing broken.
    bus.publish(t("/n0/b"), bytes::Bytes::new()).unwrap();
    let stats = broker.stats();
    assert_eq!(stats.published, 2);
    assert_eq!(stats.delivered, 1);
}

#[test]
fn reload_fails_loudly_when_sensors_disappear() {
    // A plugin bound to sensors that exist; after a navigator rebuild
    // from an engine that no longer exposes them (e.g. topology
    // change), reload must fail with a diagnostic instead of silently
    // running with zero units.
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(&t("/n0/power"), SensorReading::new(1, Timestamp::from_secs(1)));
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    wintermute_plugins::register_all(&mgr, None);
    mgr.load(
        PluginConfig::online("agg", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"]),
    )
    .unwrap();
    // The sensor space "shrinks": an empty navigator replaces the tree.
    mgr.query_engine().set_navigator(SensorNavigator::build(
        std::iter::empty::<&Topic>(),
    ));
    let err = mgr.reload("agg").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("no units") || msg.contains("level"),
        "unexpected diagnostic: {msg}"
    );
    // The previous instance remains loaded and functional.
    assert!(mgr.is_running("agg"));
}

#[test]
fn on_demand_on_stopped_plugin_still_answers() {
    // Stopping pauses *online* computation; explicit on-demand requests
    // keep working (they are how operators in OnDemand mode are driven
    // at all).
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(&t("/n0/power"), SensorReading::new(42, Timestamp::from_secs(1)));
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    wintermute_plugins::register_all(&mgr, None);
    mgr.load(
        PluginConfig::online("agg", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
            .with_option("window_ms", 10_000u64),
    )
    .unwrap();
    mgr.stop("agg").unwrap();
    assert_eq!(mgr.tick(Timestamp::from_secs(2)).operators_run, 0);
    let outputs = mgr
        .on_demand("agg", &t("/n0"), Timestamp::from_secs(2))
        .unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].1.value, 42);
}
