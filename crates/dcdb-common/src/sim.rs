//! Deterministic simulation primitives shared by every fault layer.
//!
//! PR-2/4/5/9 each grew their own seeded fault injector (bounded-queue
//! overflow, the bus `ChaosBus`, the storage `FaultIo`, the federation
//! kill schedules), and each injector carried its *own* virtual clock,
//! advanced piecemeal by whichever driver happened to own it. That
//! worked per-layer but meant no single seed could reproduce a compound
//! failure crossing layers: the clocks could disagree, and nothing
//! recorded the global order of injected events.
//!
//! This module is the shared substrate the `dcdb-sim` harness drives
//! and every fault layer now ticks from:
//!
//! * [`SimClock`] — one monotonic virtual clock, shared by `Arc`. The
//!   `advance_to` primitive is a `fetch_max`, so out-of-order ticks
//!   from concurrent drivers can never rewind time (the bug class the
//!   per-layer clocks were one forgotten guard away from).
//! * [`derive_seed`] — the splitmix64 lane splitter (hoisted out of
//!   `dcdb-federation`): one user-facing `--seed` fans out into
//!   independent per-lane sub-seeds, so bus chaos, I/O faults, kill
//!   schedules, query storms and facility events all replay from one
//!   number without correlating their draws.
//! * [`EventTrace`] — a canonical append-only event log. Every injected
//!   fault and observed state transition is recorded as one line
//!   (`<virtual ns> <lane> <detail>`) folded into an FNV-1a hash; the
//!   hash is the run's **determinism witness**: two runs of the same
//!   scenario and seed must produce byte-identical traces, so equal
//!   hashes certify a bit-identical replay.
//! * [`SimScheduler`] — a seeded, totally-ordered future-event queue
//!   (virtual time, then insertion sequence) the harness pops due
//!   events from; FoundationDB-style single-threaded discrete-event
//!   control over all fault lanes.

use crate::time::Timestamp;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Well-known lane indices for [`derive_seed`], so every harness splits
/// the one user-facing seed the same way and trace lines stay
/// comparable across harnesses.
pub mod lanes {
    /// Bus chaos: outage windows, drop probability, delivery delay.
    pub const BUS: u64 = 0;
    /// Storage I/O faults: ENOSPC / EIO / fsync poison / torn writes.
    pub const IO: u64 = 1;
    /// Kill/rejoin churn: victim choice and schedule jitter.
    pub const KILL: u64 = 2;
    /// Operator faults: panic / overrun injection.
    pub const OPERATOR: u64 = 3;
    /// Flash-crowd query storms.
    pub const STORM: u64 = 4;
    /// Facility events: power caps, thermal throttles, rolling restarts.
    pub const FACILITY: u64 = 5;
    /// Delivery-layer jitter (reconnect backoff RNG).
    pub const DELIVERY: u64 = 6;
}

/// Splits one user-facing seed into independent sub-seeds for the
/// layered fault injectors, splitmix64-style: one knob drives every
/// layer deterministically, and distinct lanes never correlate.
///
/// Hoisted from `dcdb-federation` (PR 9) so the bus, storage, delivery
/// and simulation layers share a single splitter instead of per-harness
/// copies.
pub fn derive_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(lane.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------------

/// The shared monotonic virtual clock every fault layer ticks from.
///
/// Cloning the `Arc` shares the clock: a `ChaosBus`, a `FaultIo`, a
/// pusher `BusConnection` and the federation's router supervision can
/// all observe the *same* timeline, so one `advance_to` moves every
/// layer's fault windows together. `advance_to` is a `fetch_max`:
/// out-of-order ticks (two drivers racing, a stale timestamp) can only
/// ever move time forward — an outage window that has closed can never
/// reopen.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// A fresh clock at virtual time zero, ready to share.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock {
            now_ns: AtomicU64::new(0),
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now_ns.load(Ordering::Acquire))
    }

    /// Current virtual time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Advances the clock to `to` if that is later than the current
    /// time (monotonic `fetch_max`), and returns the effective time —
    /// the maximum of both. Out-of-order calls are absorbed, never
    /// rewound.
    pub fn advance_to(&self, to: Timestamp) -> Timestamp {
        let prev = self.now_ns.fetch_max(to.as_nanos(), Ordering::AcqRel);
        Timestamp(prev.max(to.as_nanos()))
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    pub fn advance_ns(&self, ns: u64) -> Timestamp {
        Timestamp(self.now_ns.fetch_add(ns, Ordering::AcqRel) + ns)
    }
}

// ---------------------------------------------------------------------------
// EventTrace
// ---------------------------------------------------------------------------

/// How many recent trace lines are retained verbatim for diagnostics.
/// The hash covers *every* line; the tail is only there so a failing
/// run can print what happened last without holding the full log of a
/// 1500-node scenario in memory.
const TRACE_TAIL: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

#[derive(Debug)]
struct TraceState {
    hash: u64,
    events: u64,
    tail: std::collections::VecDeque<String>,
}

/// The canonical event trace of one simulated run.
///
/// Cloning shares the trace; every fault layer appends its injected
/// events and state transitions with virtual timestamps. A line is
/// canonicalized as `"<at_ns> <lane> <detail>\n"` and folded into a
/// running FNV-1a hash — the determinism witness: two runs are
/// bit-identical iff their traces hash equal (given equal event
/// counts, which [`EventTrace::witness`] includes).
#[derive(Debug, Clone)]
pub struct EventTrace {
    state: Arc<Mutex<TraceState>>,
}

impl Default for EventTrace {
    fn default() -> Self {
        EventTrace::new()
    }
}

impl EventTrace {
    /// An empty trace.
    pub fn new() -> EventTrace {
        EventTrace {
            state: Arc::new(Mutex::new(TraceState {
                hash: FNV_OFFSET,
                events: 0,
                tail: std::collections::VecDeque::with_capacity(TRACE_TAIL),
            })),
        }
    }

    /// Appends one event. `lane` names the fault layer (e.g. `bus`,
    /// `io`, `shard`, `facility`); `detail` is the canonical event
    /// description. Determinism contract: `detail` must be built from
    /// virtual-time state only — no wall-clock times, no addresses, no
    /// hash-map iteration order.
    pub fn record(&self, at: Timestamp, lane: &str, detail: &str) {
        let line = format!("{} {} {}\n", at.as_nanos(), lane, detail);
        let mut s = self.state.lock();
        for b in line.as_bytes() {
            s.hash ^= *b as u64;
            s.hash = s.hash.wrapping_mul(FNV_PRIME);
        }
        s.events += 1;
        if s.tail.len() == TRACE_TAIL {
            s.tail.pop_front();
        }
        s.tail.push_back(line);
    }

    /// Number of events recorded so far.
    pub fn events(&self) -> u64 {
        self.state.lock().events
    }

    /// The running FNV-1a hash over every canonical line.
    pub fn hash(&self) -> u64 {
        self.state.lock().hash
    }

    /// The determinism witness string: `"<events>:<hash as hex>"` —
    /// what scenario reports and bench metadata record.
    pub fn witness(&self) -> String {
        let s = self.state.lock();
        format!("{}:{:016x}", s.events, s.hash)
    }

    /// The most recent trace lines (up to a fixed tail), for
    /// diagnostics when a determinism check fails.
    pub fn tail(&self) -> Vec<String> {
        self.state.lock().tail.iter().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// SimScheduler
// ---------------------------------------------------------------------------

struct Scheduled<E> {
    at_ns: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest time (then
        // lowest insertion sequence) pops first — a total order, so
        // simultaneous events fire in the order they were scheduled.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// A deterministic future-event queue over virtual time.
///
/// The harness schedules every fault-lane event up front (or as
/// consequences of earlier events) and pops the due ones each tick in
/// a total order — (virtual time, insertion sequence) — so replays are
/// bit-identical regardless of host timing.
pub struct SimScheduler<E> {
    queue: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for SimScheduler<E> {
    fn default() -> Self {
        SimScheduler::new()
    }
}

impl<E> SimScheduler<E> {
    /// An empty scheduler.
    pub fn new() -> SimScheduler<E> {
        SimScheduler {
            queue: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at virtual time `at`.
    pub fn schedule(&mut self, at: Timestamp, event: E) {
        self.queue.push(Scheduled {
            at_ns: at.as_nanos(),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops every event due at or before `now`, in (time, sequence)
    /// order.
    pub fn pop_due(&mut self, now: Timestamp) -> Vec<(Timestamp, E)> {
        let mut due = Vec::new();
        while let Some(head) = self.queue.peek() {
            if head.at_ns > now.as_nanos() {
                break;
            }
            let s = self.queue.pop().expect("peeked");
            due.push((Timestamp(s.at_ns), s.event));
        }
        due
    }

    /// Virtual time of the next scheduled event, if any.
    pub fn next_at(&self) -> Option<Timestamp> {
        self.queue.peek().map(|s| Timestamp(s.at_ns))
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn derive_seed_lanes_are_independent_and_deterministic() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        assert_ne!(derive_seed(42, lanes::BUS), derive_seed(42, lanes::IO));
    }

    #[test]
    fn sim_clock_is_monotonic_under_out_of_order_ticks() {
        let clock = SimClock::new();
        assert_eq!(clock.advance_to(ms(100)), ms(100));
        // A stale tick cannot rewind time.
        assert_eq!(clock.advance_to(ms(40)), ms(100));
        assert_eq!(clock.now(), ms(100));
        assert_eq!(clock.advance_to(ms(250)), ms(250));
        assert_eq!(clock.advance_ns(1_000_000), ms(251));
    }

    #[test]
    fn shared_clock_observes_one_timeline() {
        let clock = SimClock::new();
        let other = Arc::clone(&clock);
        other.advance_to(ms(500));
        assert_eq!(clock.now(), ms(500));
    }

    #[test]
    fn event_trace_hash_is_order_sensitive_and_replayable() {
        let run = |order: &[(u64, &str)]| {
            let trace = EventTrace::new();
            for (at, detail) in order {
                trace.record(ms(*at), "bus", detail);
            }
            trace.witness()
        };
        let a = run(&[(10, "outage-start"), (20, "outage-end")]);
        let b = run(&[(10, "outage-start"), (20, "outage-end")]);
        let c = run(&[(20, "outage-end"), (10, "outage-start")]);
        assert_eq!(a, b, "identical event sequences hash equal");
        assert_ne!(a, c, "reordered events must change the witness");
        assert!(a.starts_with("2:"), "witness carries the event count");
    }

    #[test]
    fn event_trace_tail_is_bounded() {
        let trace = EventTrace::new();
        for i in 0..200u64 {
            trace.record(ms(i), "io", &format!("eio {i}"));
        }
        assert_eq!(trace.events(), 200);
        let tail = trace.tail();
        assert_eq!(tail.len(), TRACE_TAIL);
        assert!(tail.last().unwrap().contains("eio 199"));
    }

    #[test]
    fn scheduler_pops_in_time_then_sequence_order() {
        let mut sched = SimScheduler::new();
        sched.schedule(ms(30), "c");
        sched.schedule(ms(10), "a");
        sched.schedule(ms(10), "b"); // same instant: insertion order
        sched.schedule(ms(50), "d");
        assert_eq!(sched.next_at(), Some(ms(10)));
        let due: Vec<&str> = sched.pop_due(ms(30)).into_iter().map(|(_, e)| e).collect();
        assert_eq!(due, vec!["a", "b", "c"]);
        assert_eq!(sched.len(), 1);
        let rest: Vec<&str> = sched.pop_due(ms(100)).into_iter().map(|(_, e)| e).collect();
        assert_eq!(rest, vec!["d"]);
        assert!(sched.is_empty());
    }
}
