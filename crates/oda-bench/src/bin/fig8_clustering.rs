//! Regenerates Figure 8 (paper §VI-D): Bayesian gaussian mixture
//! clustering of the 148 simulated CooLMUC-3 nodes on window averages
//! of (power, temperature, CPU idle time).
//!
//! ```text
//! cargo run --release -p oda-bench --bin fig8_clustering
//! cargo run --release -p oda-bench --bin fig8_clustering -- --long  # 4x window
//! ```

use oda_bench::fig8::{run, Fig8Config};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let long = std::env::args().any(|a| a == "--long");
    let mut config = Fig8Config::default_run();
    if long {
        config.duration_s *= 4;
    }
    println!(
        "clustering 148 nodes over a {} s window sampled every {} s...\n",
        config.duration_s, config.sample_interval_s
    );
    let started = std::time::Instant::now();
    let result = run(&config);

    println!("=== Fig. 8 — discovered clusters (paper: 3 clusters + outliers) ===");
    println!(
        "{:>6} | {:>5} | {:>9} | {:>8} | {:>12}",
        "label", "nodes", "power[W]", "temp[C]", "idle[ms/s]"
    );
    for c in &result.clusters {
        println!(
            "{:>6} | {:>5} | {:>9.0} | {:>8.1} | {:>12.0}",
            c.label, c.nodes, c.mean_power_w, c.mean_temp_c, c.mean_idle_ms_per_s
        );
    }

    println!("\noutliers (density < 0.001 under every component):");
    for &node in &result.outliers {
        let p = &result.points[node];
        println!(
            "  node {node:>3}: {:>4.0} W, {:>4.1} C, {:>4.0} ms/s idle  [{}]",
            p.power_w, p.temp_c, p.idle_ms_per_s, p.profile
        );
    }
    println!(
        "\nprofile purity: {:.0} %; planted anomalies flagged: {}",
        result.profile_agreement * 100.0,
        result.anomalies_flagged
    );
    println!(
        "(paper: one outlier node consumed ~20% more power than nodes with similar idle time)"
    );
    let meta = BenchMeta::new("fig8", Some(config.seed), &config, started);
    let path = write_json_report(&meta, &result).expect("write json");
    println!("raw data -> {}", path.display());
}
