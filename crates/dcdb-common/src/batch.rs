//! Columnar reading batches: the hot-path unit of bulk ingest.
//!
//! A [`ReadingBatch`] carries the same samples as a `&[SensorReading]`
//! but in structure-of-arrays form — one packed `u64` timestamp column
//! and one packed `i64` value column. The whole ingest pipeline (bus
//! frames, the Collect Agent loop, the WAL journal, the Gorilla codec)
//! moves these columns without re-interleaving, which buys two things:
//!
//! * **serialization is memcpy**: a column of `n` little-endian words
//!   is one `extend_from_slice` of `n * 8` bytes instead of `n` 8-byte
//!   appends, so journaling and frame encoding stop being per-reading
//!   loops;
//! * **codecs see contiguous lanes**: delta / zig-zag passes run over
//!   plain integer slices in chunked loops the compiler can vectorize.
//!
//! Row-major views remain available ([`ReadingBatch::iter`],
//! [`ReadingBatch::to_readings`]) for the query side, which still
//! thinks in `(value, ts)` pairs.

use crate::reading::SensorReading;
use crate::time::Timestamp;

/// A columnar batch of sensor readings for one topic.
///
/// Invariant: `ts.len() == values.len()`. Order is whatever the
/// producer pushed — like `&[SensorReading]`, the batch itself imposes
/// no sortedness (storage keeps partitions sorted on insert).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadingBatch {
    /// Timestamp column, nanoseconds.
    pub ts: Vec<u64>,
    /// Value column.
    pub values: Vec<i64>,
}

impl ReadingBatch {
    /// An empty batch.
    pub fn new() -> ReadingBatch {
        ReadingBatch::default()
    }

    /// An empty batch with room for `n` readings per column.
    pub fn with_capacity(n: usize) -> ReadingBatch {
        ReadingBatch {
            ts: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Builds a batch from parallel columns.
    ///
    /// # Panics
    /// When the columns differ in length.
    pub fn from_columns(ts: Vec<u64>, values: Vec<i64>) -> ReadingBatch {
        assert_eq!(ts.len(), values.len(), "column length mismatch");
        ReadingBatch { ts, values }
    }

    /// Transposes a row-major slice into columns.
    pub fn from_readings(readings: &[SensorReading]) -> ReadingBatch {
        ReadingBatch {
            ts: readings.iter().map(|r| r.ts.as_nanos()).collect(),
            values: readings.iter().map(|r| r.value).collect(),
        }
    }

    /// Number of readings.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the batch holds no readings.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends one reading to both columns.
    pub fn push(&mut self, value: i64, ts: Timestamp) {
        self.ts.push(ts.as_nanos());
        self.values.push(value);
    }

    /// The `i`-th reading, row-major.
    pub fn get(&self, i: usize) -> Option<SensorReading> {
        Some(SensorReading::new(
            *self.values.get(i)?,
            Timestamp(*self.ts.get(i)?),
        ))
    }

    /// Clears both columns, keeping capacity (scratch-buffer reuse).
    pub fn clear(&mut self) {
        self.ts.clear();
        self.values.clear();
    }

    /// Row-major iterator over the batch.
    pub fn iter(&self) -> impl Iterator<Item = SensorReading> + '_ {
        self.ts
            .iter()
            .zip(self.values.iter())
            .map(|(&ts, &value)| SensorReading::new(value, Timestamp(ts)))
    }

    /// Re-interleaves the columns into a row-major vector.
    pub fn to_readings(&self) -> Vec<SensorReading> {
        self.iter().collect()
    }

    /// True when the timestamp column is strictly ascending — the shape
    /// in-order samplers produce, which storage exploits as an append
    /// fast path.
    pub fn is_strictly_ascending(&self) -> bool {
        self.ts.windows(2).all(|w| w[0] < w[1])
    }
}

impl FromIterator<SensorReading> for ReadingBatch {
    fn from_iter<I: IntoIterator<Item = SensorReading>>(iter: I) -> ReadingBatch {
        let iter = iter.into_iter();
        let mut batch = ReadingBatch::with_capacity(iter.size_hint().0);
        for r in iter {
            batch.push(r.value, r.ts);
        }
        batch
    }
}

// ---------------------------------------------------------------------------
// Bulk little-endian column serialization.
// ---------------------------------------------------------------------------

/// Appends a `u64` column as little-endian bytes in one memcpy on
/// little-endian targets (a per-word loop elsewhere).
pub fn extend_le_u64s(out: &mut Vec<u8>, column: &[u64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: a `[u64]`'s backing memory is valid, initialized and
        // at least `len * 8` bytes; reinterpreting it as bytes is sound
        // (u8 has no alignment or validity requirements), and on a
        // little-endian target the in-memory order is the wire order.
        let bytes = unsafe {
            std::slice::from_raw_parts(column.as_ptr() as *const u8, std::mem::size_of_val(column))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        for &x in column {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Appends an `i64` column as little-endian bytes; see [`extend_le_u64s`].
pub fn extend_le_i64s(out: &mut Vec<u8>, column: &[i64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: as in `extend_le_u64s`; i64 and u64 share layout.
        let bytes = unsafe {
            std::slice::from_raw_parts(column.as_ptr() as *const u8, std::mem::size_of_val(column))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        for &x in column {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Decodes `count` little-endian `u64`s from `data` into a vector.
///
/// # Panics
/// When `data` is shorter than `count * 8` bytes (callers validate
/// lengths before decoding columns).
pub fn read_le_u64s(data: &[u8], count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    for chunk in data[..count * 8].chunks_exact(8) {
        out.push(u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    out
}

/// Decodes `count` little-endian `i64`s from `data` into a vector.
///
/// # Panics
/// When `data` is shorter than `count * 8` bytes.
pub fn read_le_i64s(data: &[u8], count: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(count);
    for chunk in data[..count * 8].chunks_exact(8) {
        out.push(i64::from_le_bytes(chunk.try_into().unwrap()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64, ns: u64) -> SensorReading {
        SensorReading::new(v, Timestamp(ns))
    }

    #[test]
    fn round_trips_through_rows() {
        let rows = vec![r(-5, 10), r(7, 20), r(i64::MIN, u64::MAX)];
        let batch = ReadingBatch::from_readings(&rows);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_readings(), rows);
        assert_eq!(batch.get(2), Some(r(i64::MIN, u64::MAX)));
        assert_eq!(batch.get(3), None);
        let collected: ReadingBatch = rows.iter().copied().collect();
        assert_eq!(collected, batch);
    }

    #[test]
    fn push_and_clear_keep_columns_parallel() {
        let mut b = ReadingBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(1, Timestamp(100));
        b.push(2, Timestamp(200));
        assert_eq!(b.len(), 2);
        assert_eq!(b.ts, vec![100, 200]);
        assert_eq!(b.values, vec![1, 2]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn ascending_detection() {
        assert!(ReadingBatch::from_readings(&[r(0, 1), r(0, 2), r(0, 5)]).is_strictly_ascending());
        assert!(ReadingBatch::new().is_strictly_ascending());
        assert!(!ReadingBatch::from_readings(&[r(0, 2), r(0, 2)]).is_strictly_ascending());
        assert!(!ReadingBatch::from_readings(&[r(0, 3), r(0, 1)]).is_strictly_ascending());
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn from_columns_rejects_skew() {
        ReadingBatch::from_columns(vec![1, 2], vec![3]);
    }

    #[test]
    fn bulk_le_round_trips() {
        let ts = vec![0u64, 1, u64::MAX, 0x0102_0304_0506_0708];
        let values = vec![0i64, -1, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        extend_le_u64s(&mut buf, &ts);
        extend_le_i64s(&mut buf, &values);
        assert_eq!(buf.len(), 64);
        // Matches the scalar little-endian encoding byte for byte.
        let mut expect = Vec::new();
        for &x in &ts {
            expect.extend_from_slice(&x.to_le_bytes());
        }
        for &x in &values {
            expect.extend_from_slice(&x.to_le_bytes());
        }
        assert_eq!(buf, expect);
        assert_eq!(read_le_u64s(&buf, 4), ts);
        assert_eq!(read_le_i64s(&buf[32..], 4), values);
    }
}
