//! Case Study 1 (paper §VI-B): online power prediction in a Pusher.
//!
//! A regressor operator trains a random forest on windowed statistics
//! of a node's local sensors, then predicts the node's power one
//! interval ahead — the in-band, fine-grained, low-latency scenario of
//! the paper. This example runs a scaled-down version (smaller training
//! set and core count) and prints an excerpt of the real vs predicted
//! series plus the average relative error.
//!
//! Run with:
//! ```text
//! cargo run --release --example power_prediction
//! ```

use oda_bench::fig6::{run, Fig6Config};

fn main() {
    let config = Fig6Config {
        interval_ms: 250,
        training_size: 2_000,
        eval_ticks: 800,
        cores: 8,
        trees: 12,
        seed: 0xE6,
    };
    println!(
        "training a {}-tree forest on {} samples at {} ms (takes a moment)...\n",
        config.trees, config.training_size, config.interval_ms
    );
    let result = run(&config);

    println!("{:>8} | {:>9} | {:>12}", "t[s]", "real[W]", "predicted[W]");
    println!("---------+-----------+-------------");
    for point in result.series.iter().step_by(16).take(25) {
        println!(
            "{:>8.1} | {:>9.0} | {:>12.0}",
            point.t_s, point.real_w, point.predicted_w
        );
    }

    println!(
        "\naverage relative error: {:.1}%  (paper reports 6.2% at 250 ms on production hardware)",
        result.avg_rel_error * 100.0
    );
    println!("evaluation points: {}", result.series.len());

    // Where does the model struggle? The paper: at rare high-power
    // spikes, where training data is scarce.
    let mut worst = result.bins.clone();
    worst.retain(|b| b.probability > 0.0);
    worst.sort_by(|a, b| b.rel_error.partial_cmp(&a.rel_error).unwrap());
    if let Some(bin) = worst.first() {
        println!(
            "worst power bin: {:.0} W with {:.1}% error at probability {:.3}",
            bin.power_w,
            bin.rel_error * 100.0,
            bin.probability
        );
    }
}
