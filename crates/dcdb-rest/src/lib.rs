//! # dcdb-rest — RESTful control plane for DCDB components
//!
//! Every DCDB component exposes a control RESTful API (paper §IV-A);
//! Wintermute forwards its ODA management requests — plugin start/stop/
//! reload and on-demand operator triggers — through it (paper §V-A).
//!
//! * [`http`] — minimal HTTP/1.1 request/response codec;
//! * [`router`] — pattern routing with `:param` and `*rest` captures;
//! * [`server`] — blocking TCP server plus a tiny client helper.
//!
//! The router is usable fully in-process (no sockets) via
//! [`Router::dispatch`](router::Router::dispatch), which is how the
//! simulation harness drives on-demand operators deterministically.

#![warn(missing_docs)]

pub mod http;
pub mod router;
pub mod server;

pub use http::{Method, Request, Response, Status};
pub use router::{Handler, Router};
pub use server::{http_request, RestServer};
