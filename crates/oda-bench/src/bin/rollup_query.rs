//! Rollup-tier query bench: raw-scan vs tier-served aggregation.
//!
//! ```text
//! cargo run --release -p oda-bench --bin rollup_query            # full run
//! cargo run --release -p oda-bench --bin rollup_query -- --quick # smoke run
//! ```

use oda_bench::rollup_query::{run, RollupQueryConfig};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let config = if quick {
        RollupQueryConfig::quick()
    } else {
        RollupQueryConfig::paper()
    };

    let mut dir = std::env::temp_dir();
    dir.push(format!("oda-bench-rollup-query-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "rollup query bench: {} sensors x {} s of 1 Hz data, step {} s\n",
        config.sensors, config.span_s, config.step_s
    );
    let started = std::time::Instant::now();
    let result = run(&config, &dir);
    std::fs::remove_dir_all(&dir).ok();

    println!("range_s |   raw_ms |  tier_ms | speedup | tier/raw buckets");
    for row in &result.rows {
        println!(
            "{:>7} | {:>8.3} | {:>8.3} | {:>6.1}x | {}/{}",
            row.range_s,
            row.raw_ms,
            row.tier_ms,
            row.speedup,
            row.buckets_from_tier,
            row.buckets_from_raw
        );
    }
    println!(
        "\n{} readings, {} sealed rollup segments",
        result.readings, result.rollup_segments
    );

    let meta = BenchMeta::new("rollup_query", None, &config, started);
    let path = write_json_report(&meta, &result).expect("write json");
    println!("wrote {}", path.display());

    // The tiers earn their disk: an aggregate over >= 1 h of history at
    // 10 s resolution must beat the raw scan by an order of magnitude.
    if !quick {
        for row in &result.rows {
            if row.range_s >= 3600 {
                assert!(
                    row.speedup >= 10.0,
                    "range {} s: speedup {:.1}x < 10x",
                    row.range_s,
                    row.speedup
                );
            }
        }
    }
}
