//! Regenerates Figure 6 (paper §VI-B): power-prediction time series,
//! relative error per power bin with the fitted PDF, and the interval
//! sweep of the accompanying text (125 / 250 / 500 ms).
//!
//! ```text
//! cargo run --release -p oda-bench --bin fig6_power_prediction            # default (scaled)
//! cargo run --release -p oda-bench --bin fig6_power_prediction -- --full  # paper-size training
//! cargo run --release -p oda-bench --bin fig6_power_prediction -- --sweep # 125/250/500 ms
//! ```

use oda_bench::fig6::{run, Fig6Config};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let sweep = args.iter().any(|a| a == "--sweep");

    if sweep {
        println!("=== §VI-B interval sweep (paper: 10.4% @125ms, 6.2% @250ms, 6.7% @500ms) ===");
        for interval_ms in [125u64, 250, 500] {
            let mut cfg = Fig6Config::quick();
            cfg.interval_ms = interval_ms;
            let started = std::time::Instant::now();
            let result = run(&cfg);
            println!(
                "interval {interval_ms:>4} ms -> avg relative error {:.1} % over {} points",
                result.avg_rel_error * 100.0,
                result.series.len()
            );
            let meta = BenchMeta::new(
                &format!("fig6_sweep_{interval_ms}ms"),
                Some(cfg.seed),
                &cfg,
                started,
            );
            write_json_report(&meta, &result).expect("write json");
        }
        return;
    }

    let config = if full {
        Fig6Config::paper()
    } else {
        Fig6Config::quick()
    };
    println!(
        "training {} samples at {} ms on a {}-core node ({} trees)...\n",
        config.training_size, config.interval_ms, config.cores, config.trees
    );
    let started = std::time::Instant::now();
    let result = run(&config);

    println!("=== Fig. 6a — real vs predicted node power (excerpt) ===");
    println!("{:>8} | {:>9} | {:>12}", "t[s]", "power[W]", "predicted[W]");
    for p in result
        .series
        .iter()
        .step_by(result.series.len().max(40) / 40)
    {
        println!(
            "{:>8.1} | {:>9.0} | {:>12.0}",
            p.t_s, p.real_w, p.predicted_w
        );
    }

    println!("\n=== Fig. 6b — relative error by power bin (with empirical PDF) ===");
    println!(
        "{:>9} | {:>10} | {:>11}",
        "power[W]", "rel.error", "probability"
    );
    for b in result.bins.iter().filter(|b| b.probability > 0.0) {
        println!(
            "{:>9.0} | {:>9.1}% | {:>11.4}",
            b.power_w,
            b.rel_error * 100.0,
            b.probability
        );
    }
    println!(
        "\naverage relative error: {:.1} % (paper: 6.2 % at 250 ms)",
        result.avg_rel_error * 100.0
    );
    let meta = BenchMeta::new("fig6", Some(config.seed), &config, started);
    let path = write_json_report(&meta, &result).expect("write json");
    println!("raw data -> {}", path.display());
}
