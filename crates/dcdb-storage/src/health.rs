//! Storage health: the state machine that keeps the durable engine
//! useful while its disk is not.
//!
//! The engine classifies itself into three states:
//!
//! * **Healthy** — writes succeed; normal operation.
//! * **Degraded** — recent write errors; appends are retried with
//!   bounded exponential backoff and still acknowledged only once
//!   journaled. Consecutive successes heal back to Healthy.
//! * **ReadOnly** — the journal cannot make progress (retries and WAL
//!   rotation keep failing). Reads keep working; writes are accepted
//!   into a *bounded* memtable-only write-behind buffer (never
//!   acknowledged durable) until the buffer fills, after which they are
//!   shed. Periodic probes with doubling backoff attempt a WAL
//!   rotation; the first success re-journals the memtable (draining the
//!   buffer into durability) and drops back to Degraded.
//!
//! Every reading the engine ever accepts is accounted against the
//! conservation identity `ingested == durable + buffered + shed` —
//! the invariant the fault harness and the tests check.
//!
//! The core is shared as an `Arc` so observers (tests, the Collect
//! Agent) can keep reading counters — including the final
//! `drop_sync_errors` — after the engine itself is gone.

use dcdb_common::time::Timestamp;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Health classification of the durable engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Writes succeed; normal operation.
    Healthy,
    /// Recent write errors; retrying, still fully durable.
    Degraded,
    /// Journal cannot make progress; buffering writes, probing.
    ReadOnly,
}

impl HealthState {
    /// Stable lower-case spelling used in metrics and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::ReadOnly => "read_only",
        }
    }
}

/// Tuning knobs of the health state machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Append retry attempts (beyond the first try) before an insert
    /// gives up.
    pub max_retries: u32,
    /// First retry backoff, milliseconds (doubles per attempt).
    pub retry_backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub retry_backoff_cap_ms: u64,
    /// Consecutive write failures that demote Healthy → Degraded.
    pub degraded_after: u32,
    /// Consecutive write failures that demote Degraded → ReadOnly.
    pub readonly_after: u32,
    /// Consecutive write successes that promote Degraded → Healthy.
    pub heal_after: u32,
    /// First ReadOnly probe interval, milliseconds (doubles per failed
    /// probe, capped by `probe_cap_ms`).
    pub probe_base_ms: u64,
    /// Probe interval ceiling, milliseconds.
    pub probe_cap_ms: u64,
    /// Bound of the memtable-only write-behind buffer (readings)
    /// accepted under ReadOnly before writes are shed.
    pub buffer_max_readings: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            max_retries: 3,
            retry_backoff_base_ms: 1,
            retry_backoff_cap_ms: 20,
            degraded_after: 1,
            readonly_after: 6,
            heal_after: 3,
            probe_base_ms: 100,
            probe_cap_ms: 5_000,
            buffer_max_readings: 100_000,
        }
    }
}

/// Point-in-time health report of a storage engine, in the shape the
/// Collect Agent serves from `/metrics` and `/health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageHealthReport {
    /// Current state.
    pub state: HealthState,
    /// State transitions since open.
    pub transitions: u64,
    /// Readings accepted by `insert`/`insert_batch` since open.
    pub ingested: u64,
    /// Readings acknowledged durable (journaled or sealed).
    pub durable: u64,
    /// Readings currently buffered memtable-only under ReadOnly.
    pub buffered: u64,
    /// Readings refused (buffer overflow or retries exhausted).
    pub shed: u64,
    /// Failed write/sync operations observed.
    pub write_errors: u64,
    /// Append retries performed.
    pub write_retries: u64,
    /// WAL writers poisoned by a failed fsync (or failed rollback).
    pub fsync_poisonings: u64,
    /// WAL rotations performed (poisoning recovery + ReadOnly probes).
    pub wal_rotations: u64,
    /// ReadOnly probes attempted.
    pub probes: u64,
    /// Final-fsync errors recorded by `Drop` (acknowledged-but-unsynced
    /// data may not have reached the platter).
    pub drop_sync_errors: u64,
    /// Failed cleanup removals (leaked temp/retired files on disk).
    pub cleanup_errors: u64,
    /// Corrupt sealed segments / WALs quarantined on open.
    pub quarantined: u64,
    /// Failed memtable→segment seal attempts.
    pub seal_failures: u64,
    /// Readings recovered by WAL replay on open.
    pub recovered_readings: u64,
    /// WAL bytes discarded at torn tails during replay.
    pub wal_bytes_discarded: u64,
    /// Torn WAL tails encountered during replay.
    pub torn_tails: u64,
    /// Virtual/observed time spent Healthy, nanoseconds.
    pub healthy_ns: u64,
    /// Time spent Degraded, nanoseconds.
    pub degraded_ns: u64,
    /// Time spent ReadOnly, nanoseconds.
    pub readonly_ns: u64,
}

impl StorageHealthReport {
    /// The conservation identity every engine must maintain:
    /// `ingested == durable + buffered + shed`.
    pub fn conserved(&self) -> bool {
        self.ingested == self.durable + self.buffered + self.shed
    }
}

#[derive(Debug)]
struct Transitions {
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Next allowed probe instant (ns) and current probe interval (ms),
    /// doubling per failed probe.
    next_probe_ns: u64,
    probe_interval_ms: u64,
}

/// Shared mutable core of the health state machine; see the module docs.
#[derive(Debug)]
pub struct HealthCore {
    config: HealthConfig,
    inner: Mutex<Transitions>,
    transitions: AtomicU64,
    ingested: AtomicU64,
    durable: AtomicU64,
    buffered: AtomicU64,
    shed: AtomicU64,
    write_errors: AtomicU64,
    write_retries: AtomicU64,
    fsync_poisonings: AtomicU64,
    wal_rotations: AtomicU64,
    probes: AtomicU64,
    drop_sync_errors: AtomicU64,
    cleanup_errors: AtomicU64,
    quarantined: AtomicU64,
    seal_failures: AtomicU64,
    recovered_readings: AtomicU64,
    wal_bytes_discarded: AtomicU64,
    torn_tails: AtomicU64,
    healthy_ns: AtomicU64,
    degraded_ns: AtomicU64,
    readonly_ns: AtomicU64,
    last_observed_ns: AtomicU64,
}

/// Sentinel for "the health clock has not been observed yet".
const NEVER_OBSERVED: u64 = u64::MAX;

impl HealthCore {
    /// A fresh core in `Healthy`.
    pub fn new(config: HealthConfig) -> HealthCore {
        HealthCore {
            config,
            inner: Mutex::new(Transitions {
                state: HealthState::Healthy,
                consecutive_failures: 0,
                consecutive_successes: 0,
                next_probe_ns: 0,
                probe_interval_ms: config.probe_base_ms,
            }),
            transitions: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            buffered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            write_retries: AtomicU64::new(0),
            fsync_poisonings: AtomicU64::new(0),
            wal_rotations: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            drop_sync_errors: AtomicU64::new(0),
            cleanup_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            seal_failures: AtomicU64::new(0),
            recovered_readings: AtomicU64::new(0),
            wal_bytes_discarded: AtomicU64::new(0),
            torn_tails: AtomicU64::new(0),
            healthy_ns: AtomicU64::new(0),
            degraded_ns: AtomicU64::new(0),
            readonly_ns: AtomicU64::new(0),
            last_observed_ns: AtomicU64::new(NEVER_OBSERVED),
        }
    }

    /// The configuration this core runs under.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.inner.lock().state
    }

    /// Advances the health clock to `now`, attributing the elapsed span
    /// to the current state. Drives time-in-state accounting; typically
    /// called from the engine's `maintain` tick.
    pub fn observe(&self, now: Timestamp) {
        let now_ns = now.as_nanos();
        let last = self.last_observed_ns.swap(now_ns, Ordering::AcqRel);
        // The first observation only sets the baseline — attributing the
        // span since epoch 0 would credit the whole wall clock to Healthy.
        if last == NEVER_OBSERVED {
            return;
        }
        let delta = now_ns.saturating_sub(last);
        if delta == 0 {
            return;
        }
        let bucket = match self.state() {
            HealthState::Healthy => &self.healthy_ns,
            HealthState::Degraded => &self.degraded_ns,
            HealthState::ReadOnly => &self.readonly_ns,
        };
        bucket.fetch_add(delta, Ordering::Relaxed);
    }

    fn set_state(&self, inner: &mut Transitions, next: HealthState) {
        if inner.state != next {
            inner.state = next;
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a failed journal write or sync, demoting the state once
    /// the consecutive-failure thresholds are crossed. Returns the state
    /// after the transition.
    pub fn record_write_error(&self) -> HealthState {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.consecutive_successes = 0;
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        match inner.state {
            HealthState::Healthy if inner.consecutive_failures >= self.config.degraded_after => {
                self.set_state(&mut inner, HealthState::Degraded);
            }
            HealthState::Degraded if inner.consecutive_failures >= self.config.readonly_after => {
                self.set_state(&mut inner, HealthState::ReadOnly);
                // First probe is allowed immediately; failures back off.
                inner.probe_interval_ms = self.config.probe_base_ms;
                inner.next_probe_ns = match self.last_observed_ns.load(Ordering::Acquire) {
                    NEVER_OBSERVED => 0,
                    last => last,
                };
            }
            _ => {}
        }
        inner.state
    }

    /// Records a successful journal write, healing Degraded → Healthy
    /// after enough consecutive successes. ReadOnly heals only through
    /// [`HealthCore::record_probe_success`].
    pub fn record_write_success(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.consecutive_successes = inner.consecutive_successes.saturating_add(1);
        if inner.state == HealthState::Degraded
            && inner.consecutive_successes >= self.config.heal_after
        {
            self.set_state(&mut inner, HealthState::Healthy);
        }
    }

    /// True when a ReadOnly probe is due at `now`.
    pub fn probe_due(&self, now: Timestamp) -> bool {
        let inner = self.inner.lock();
        inner.state == HealthState::ReadOnly && now.as_nanos() >= inner.next_probe_ns
    }

    /// Records a failed probe: doubles the probe interval (capped).
    pub fn record_probe_failure(&self, now: Timestamp) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.next_probe_ns = now
            .as_nanos()
            .saturating_add(inner.probe_interval_ms * 1_000_000);
        inner.probe_interval_ms = (inner.probe_interval_ms * 2).min(self.config.probe_cap_ms);
    }

    /// Records a successful probe: ReadOnly → Degraded (consecutive
    /// successes then heal the rest of the way to Healthy).
    pub fn record_probe_success(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.state == HealthState::ReadOnly {
            self.set_state(&mut inner, HealthState::Degraded);
        }
        inner.consecutive_failures = 0;
        inner.consecutive_successes = 0;
        inner.probe_interval_ms = self.config.probe_base_ms;
    }

    /// Accounts `n` readings entering the engine.
    pub fn note_ingested(&self, n: usize) {
        self.ingested.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Accounts `n` readings acknowledged durable.
    pub fn note_durable(&self, n: usize) {
        self.durable.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Accounts `n` readings buffered memtable-only. Returns `false`
    /// (and accounts them as shed) when the bound would be exceeded.
    pub fn try_note_buffered(&self, n: usize) -> bool {
        let mut cur = self.buffered.load(Ordering::Relaxed);
        loop {
            if cur as usize + n > self.config.buffer_max_readings {
                self.shed.fetch_add(n as u64, Ordering::Relaxed);
                return false;
            }
            match self.buffered.compare_exchange_weak(
                cur,
                cur + n as u64,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Accounts `n` readings refused outright.
    pub fn note_shed(&self, n: usize) {
        self.shed.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Moves the whole write-behind buffer into durability — called when
    /// a WAL rotation re-journals the memtable or a seal persists it.
    pub fn drain_buffered(&self) -> u64 {
        let n = self.buffered.swap(0, Ordering::AcqRel);
        self.durable.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Counts a retry attempt.
    pub fn note_retry(&self) {
        self.write_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a poisoned WAL writer.
    pub fn note_fsync_poisoning(&self) {
        self.fsync_poisonings.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed WAL rotation.
    pub fn note_wal_rotation(&self) {
        self.wal_rotations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a final-fsync failure observed in `Drop`.
    pub fn note_drop_sync_error(&self) {
        self.drop_sync_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a failed temp/retired-file removal.
    pub fn note_cleanup_error(&self) {
        self.cleanup_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a quarantined corrupt file.
    pub fn note_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a failed seal attempt.
    pub fn note_seal_failure(&self) {
        self.seal_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the outcome of WAL replay at open: readings recovered,
    /// bytes discarded at torn tails, torn tails seen.
    pub fn note_recovery(&self, readings: usize, bytes_discarded: u64, torn_tails: usize) {
        self.recovered_readings
            .fetch_add(readings as u64, Ordering::Relaxed);
        self.wal_bytes_discarded
            .fetch_add(bytes_discarded, Ordering::Relaxed);
        self.torn_tails
            .fetch_add(torn_tails as u64, Ordering::Relaxed);
    }

    /// Observed `drop_sync_errors` so far (readable after engine drop).
    pub fn drop_sync_errors(&self) -> u64 {
        self.drop_sync_errors.load(Ordering::Relaxed)
    }

    /// Point-in-time report.
    pub fn report(&self) -> StorageHealthReport {
        StorageHealthReport {
            state: self.state(),
            transitions: self.transitions.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            durable: self.durable.load(Ordering::Relaxed),
            buffered: self.buffered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            fsync_poisonings: self.fsync_poisonings.load(Ordering::Relaxed),
            wal_rotations: self.wal_rotations.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            drop_sync_errors: self.drop_sync_errors.load(Ordering::Relaxed),
            cleanup_errors: self.cleanup_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            seal_failures: self.seal_failures.load(Ordering::Relaxed),
            recovered_readings: self.recovered_readings.load(Ordering::Relaxed),
            wal_bytes_discarded: self.wal_bytes_discarded.load(Ordering::Relaxed),
            torn_tails: self.torn_tails.load(Ordering::Relaxed),
            healthy_ns: self.healthy_ns.load(Ordering::Relaxed),
            degraded_ns: self.degraded_ns.load(Ordering::Relaxed),
            readonly_ns: self.readonly_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            degraded_after: 2,
            readonly_after: 4,
            heal_after: 2,
            probe_base_ms: 100,
            probe_cap_ms: 400,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn demotes_and_heals_through_the_states() {
        let h = HealthCore::new(cfg());
        assert_eq!(h.state(), HealthState::Healthy);
        h.record_write_error();
        assert_eq!(h.state(), HealthState::Healthy);
        h.record_write_error();
        assert_eq!(h.state(), HealthState::Degraded);
        h.record_write_error();
        h.record_write_error();
        assert_eq!(h.state(), HealthState::ReadOnly);
        // Write successes alone do not leave ReadOnly.
        h.record_write_success();
        assert_eq!(h.state(), HealthState::ReadOnly);
        h.record_probe_success();
        assert_eq!(h.state(), HealthState::Degraded);
        h.record_write_success();
        h.record_write_success();
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.report().transitions, 4);
    }

    #[test]
    fn success_resets_failure_streak() {
        let h = HealthCore::new(cfg());
        h.record_write_error();
        h.record_write_success();
        h.record_write_error();
        assert_eq!(h.state(), HealthState::Healthy, "streak was broken");
    }

    #[test]
    fn probe_backoff_doubles_and_caps() {
        let h = HealthCore::new(cfg());
        for _ in 0..4 {
            h.record_write_error();
        }
        assert_eq!(h.state(), HealthState::ReadOnly);
        let t0 = Timestamp::from_millis(1_000);
        h.observe(t0);
        assert!(h.probe_due(t0));
        h.record_probe_failure(t0);
        assert!(!h.probe_due(Timestamp::from_millis(1_050)));
        assert!(h.probe_due(Timestamp::from_millis(1_100))); // +100ms
        h.record_probe_failure(Timestamp::from_millis(1_100));
        assert!(!h.probe_due(Timestamp::from_millis(1_250)));
        assert!(h.probe_due(Timestamp::from_millis(1_300))); // +200ms
        h.record_probe_failure(Timestamp::from_millis(1_300));
        assert!(h.probe_due(Timestamp::from_millis(1_700))); // +400ms (capped)
        assert_eq!(h.report().probes, 3);
    }

    #[test]
    fn conservation_identity_holds_across_paths() {
        let h = HealthCore::new(HealthConfig {
            buffer_max_readings: 10,
            ..cfg()
        });
        h.note_ingested(5);
        h.note_durable(5);
        h.note_ingested(8);
        assert!(h.try_note_buffered(8));
        h.note_ingested(7);
        assert!(!h.try_note_buffered(7), "over the 10-reading bound");
        h.note_ingested(3);
        h.note_shed(3);
        let r = h.report();
        assert!(r.conserved(), "{r:?}");
        assert_eq!(r.buffered, 8);
        assert_eq!(r.shed, 10);
        // Draining moves buffered into durable, preserving the identity.
        assert_eq!(h.drain_buffered(), 8);
        let r = h.report();
        assert!(r.conserved(), "{r:?}");
        assert_eq!(r.durable, 13);
        assert_eq!(r.buffered, 0);
    }

    #[test]
    fn time_in_state_attributes_to_current_state() {
        let h = HealthCore::new(cfg());
        h.observe(Timestamp::from_millis(0));
        h.observe(Timestamp::from_millis(100));
        h.record_write_error();
        h.record_write_error(); // → Degraded
        h.observe(Timestamp::from_millis(250));
        let r = h.report();
        assert_eq!(r.healthy_ns, 100 * 1_000_000);
        assert_eq!(r.degraded_ns, 150 * 1_000_000);
        assert_eq!(r.readonly_ns, 0);
    }
}
