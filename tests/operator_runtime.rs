//! Fault-isolated operator runtime integration tests: a panicking
//! plugin must not kill the scheduler, repeated failures must lead to
//! quarantine (resumable over REST), an operator still busy when it
//! comes due is skipped as an overrun instead of blocking the tick,
//! and all of it must be visible through `GET /metrics` — with the
//! accounting identity
//! `runs == successes + errors + panics + overruns + quarantined_skips`
//! holding exactly.

use dcdb_wintermute::dcdb_bus::Broker;
use dcdb_wintermute::dcdb_collectagent::{CollectAgent, CollectAgentConfig};
use dcdb_wintermute::dcdb_common::error::Result as DcdbResult;
use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp, Topic};
use dcdb_wintermute::dcdb_rest::{Method, Request, Router};
use dcdb_wintermute::dcdb_storage::StorageBackend;
use dcdb_wintermute::wintermute::manager::OperatorMetricsSnapshot;
use dcdb_wintermute::wintermute::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

/// One-sensor query engine + manager with all test plugins registered.
fn manager_with_sensor() -> Arc<OperatorManager> {
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(
        &t("/n0/power"),
        SensorReading::new(100, Timestamp::from_secs(1)),
    );
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    mgr.register_plugin(Box::new(EchoPlugin));
    mgr.register_plugin(Box::new(PanicPlugin));
    mgr.register_plugin(Box::new(GatedPlugin::default()));
    mgr.register_plugin(Box::new(SleepyPlugin));
    mgr
}

fn snapshot(mgr: &OperatorManager, plugin: &str) -> OperatorMetricsSnapshot {
    mgr.operator_metrics()
        .into_iter()
        .find(|p| p.name == plugin)
        .unwrap_or_else(|| panic!("plugin {plugin} not found"))
        .operators
        .remove(0)
}

fn assert_accounting(m: &OperatorMetricsSnapshot) {
    assert_eq!(
        m.runs,
        m.successes + m.errors + m.panics + m.overruns + m.quarantined_skips,
        "accounting identity violated for {}: {m:?}",
        m.name
    );
}

/// Healthy operator: echoes the latest input value to its output.
struct EchoOperator {
    units: Vec<Unit>,
}

impl Operator for EchoOperator {
    fn name(&self) -> &str {
        "echo"
    }
    fn units(&self) -> &[Unit] {
        &self.units
    }
    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> DcdbResult<Vec<Output>> {
        Ok(vec![(
            self.units[i].outputs[0].clone(),
            SensorReading::new(1, ctx.now),
        )])
    }
}

struct EchoPlugin;
impl OperatorPlugin for EchoPlugin {
    fn kind(&self) -> &str {
        "echo"
    }
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> DcdbResult<Vec<Box<dyn Operator>>> {
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |_, units| {
            Ok(Box::new(EchoOperator { units }) as Box<dyn Operator>)
        })
    }
}

/// Operator that panics on every computation.
struct PanicOperator {
    units: Vec<Unit>,
}

impl Operator for PanicOperator {
    fn name(&self) -> &str {
        "boom"
    }
    fn units(&self) -> &[Unit] {
        &self.units
    }
    fn compute(&mut self, _i: usize, _ctx: &ComputeContext<'_>) -> DcdbResult<Vec<Output>> {
        panic!("injected operator panic");
    }
}

struct PanicPlugin;
impl OperatorPlugin for PanicPlugin {
    fn kind(&self) -> &str {
        "panic"
    }
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> DcdbResult<Vec<Box<dyn Operator>>> {
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |_, units| {
            Ok(Box::new(PanicOperator { units }) as Box<dyn Operator>)
        })
    }
}

/// Operator whose computation blocks until an external release flag is
/// set — the stand-in for "computes slower than its interval".
struct GatedOperator {
    units: Vec<Unit>,
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl Operator for GatedOperator {
    fn name(&self) -> &str {
        "gated"
    }
    fn units(&self) -> &[Unit] {
        &self.units
    }
    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> DcdbResult<Vec<Output>> {
        self.entered.store(true, Ordering::Release);
        while !self.release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(vec![(
            self.units[i].outputs[0].clone(),
            SensorReading::new(7, ctx.now),
        )])
    }
}

#[derive(Default)]
struct GatedPlugin {
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl OperatorPlugin for GatedPlugin {
    fn kind(&self) -> &str {
        "gated"
    }
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> DcdbResult<Vec<Box<dyn Operator>>> {
        let resolution = config.resolve(nav)?;
        let (entered, release) = (Arc::clone(&self.entered), Arc::clone(&self.release));
        instantiate(config, resolution.units, move |_, units| {
            Ok(Box::new(GatedOperator {
                units,
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            }) as Box<dyn Operator>)
        })
    }
}

/// Operator that takes a fixed wall-clock time per computation.
struct SleepyOperator {
    units: Vec<Unit>,
    sleep: Duration,
}

impl Operator for SleepyOperator {
    fn name(&self) -> &str {
        "sleepy"
    }
    fn units(&self) -> &[Unit] {
        &self.units
    }
    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> DcdbResult<Vec<Output>> {
        std::thread::sleep(self.sleep);
        Ok(vec![(
            self.units[i].outputs[0].clone(),
            SensorReading::new(3, ctx.now),
        )])
    }
}

struct SleepyPlugin;
impl OperatorPlugin for SleepyPlugin {
    fn kind(&self) -> &str {
        "sleepy"
    }
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> DcdbResult<Vec<Box<dyn Operator>>> {
        let resolution = config.resolve(nav)?;
        let sleep = Duration::from_millis(config.options.u64("sleep_ms").unwrap_or(25));
        instantiate(config, resolution.units, move |_, units| {
            Ok(Box::new(SleepyOperator { units, sleep }) as Box<dyn Operator>)
        })
    }
}

/// The acceptance scenario: three online operators — one healthy, one
/// panicking every run, one busy past its interval — under the
/// wall-clock scheduler thread. The scheduler survives ≥ 20 ticks, the
/// healthy operator runs on every tick, the panicking one is
/// quarantined after N consecutive failures and resumes after
/// `PUT /analytics/plugins/boom/start`, and the busy one accumulates
/// overruns instead of blocking anything.
#[test]
fn scheduler_thread_survives_panicking_and_busy_operators() {
    let mgr = manager_with_sensor();
    mgr.set_fault_policy(FaultPolicy {
        quarantine_threshold: 3,
        ..FaultPolicy::default()
    });
    let gate = GatedPlugin::default();
    let (entered, release) = (Arc::clone(&gate.entered), Arc::clone(&gate.release));
    mgr.register_plugin(Box::new(gate));
    mgr.load(
        PluginConfig::online("good", "echo", 1)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-echo"]),
    )
    .unwrap();
    mgr.load(
        PluginConfig::online("boom", "panic", 1)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-boom"]),
    )
    .unwrap();
    mgr.load(
        PluginConfig::online("slow", "gated", 1)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-slow"]),
    )
    .unwrap();
    let mut router = Router::new();
    mgr.mount_routes(&mut router);

    // Occupy the slow operator via a long on-demand request: every due
    // visit while it is held is an overrun for the scheduler.
    let mgr2 = Arc::clone(&mgr);
    let on_demand =
        std::thread::spawn(move || mgr2.on_demand("slow", &t("/n0"), Timestamp::now()).unwrap());
    let deadline = Instant::now() + Duration::from_secs(10);
    while !entered.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(entered.load(Ordering::Acquire), "on-demand never started");

    let handle = mgr.start_thread(5);
    while mgr.ticks() < 25 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        mgr.ticks() >= 25,
        "scheduler made only {} ticks",
        mgr.ticks()
    );

    // The panicking operator hit the threshold and was quarantined.
    let boom = snapshot(&mgr, "boom");
    assert!(boom.quarantined, "{boom:?}");
    assert_eq!(boom.panics, 3, "quarantine must stop further runs");
    assert!(boom.quarantined_skips >= 1);
    assert_accounting(&boom);

    // Resume over REST and watch it run (and panic) again.
    let resp = router.dispatch(Request::new(Method::Put, "/analytics/plugins/boom/start"));
    assert_eq!(resp.status.code(), 200, "{}", resp.body_str());
    while snapshot(&mgr, "boom").panics < 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    release.store(true, Ordering::Release);
    let outputs = on_demand.join().expect("on-demand thread");
    assert_eq!(outputs.len(), 1);
    drop(handle); // stop + join the scheduler

    let good = snapshot(&mgr, "good");
    assert_eq!(good.runs, mgr.ticks(), "healthy operator missed a tick");
    assert_eq!(good.successes, good.runs);
    assert!(good.last_latency_ns > 0 && good.ewma_latency_ns > 0);
    assert_accounting(&good);

    let boom = snapshot(&mgr, "boom");
    assert!(boom.panics >= 4, "operator did not resume: {boom:?}");
    assert_accounting(&boom);

    let slow = snapshot(&mgr, "slow");
    assert!(slow.overruns >= 1, "busy operator never overran: {slow:?}");
    assert_accounting(&slow);

    // The identity also holds over the whole runtime.
    let totals = mgr.metrics_totals();
    assert_eq!(
        totals.runs,
        totals.successes
            + totals.errors
            + totals.panics
            + totals.overruns
            + totals.quarantined_skips
    );
}

/// Deterministic overrun semantics under manual ticks: while a long
/// on-demand computation holds the slot, due ticks return immediately
/// with an overrun; once released, the next tick computes normally.
/// Overruns are not failures — they never feed the quarantine counter.
#[test]
fn overrunning_operator_is_skipped_not_blocking() {
    let mgr = manager_with_sensor();
    let gate = GatedPlugin::default();
    let (entered, release) = (Arc::clone(&gate.entered), Arc::clone(&gate.release));
    mgr.register_plugin(Box::new(gate));
    mgr.load(
        PluginConfig::online("blk", "gated", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-blk"]),
    )
    .unwrap();

    let mgr2 = Arc::clone(&mgr);
    let worker = std::thread::spawn(move || {
        mgr2.on_demand("blk", &t("/n0"), Timestamp::from_secs(2))
            .unwrap()
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while !entered.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(entered.load(Ordering::Acquire), "on-demand never started");

    // Two due ticks while the slot is held: two overruns, no blocking.
    let before = Instant::now();
    let r1 = mgr.tick(Timestamp::from_secs(2));
    let r2 = mgr.tick(Timestamp::from_secs(3));
    assert!(
        before.elapsed() < Duration::from_secs(5),
        "tick blocked on a busy operator"
    );
    assert_eq!(r1.overruns, 1);
    assert_eq!(r2.overruns, 1);
    assert!(r1.errors.is_empty() && r1.panics.is_empty());

    release.store(true, Ordering::Release);
    worker.join().expect("on-demand thread");

    let r3 = mgr.tick(Timestamp::from_secs(4));
    assert_eq!(r3.successes, 1);
    assert_eq!(r3.outputs_published, 1);

    let m = snapshot(&mgr, "blk");
    assert_eq!((m.runs, m.overruns, m.successes), (3, 2, 1));
    assert_eq!(m.consecutive_failures, 0, "overruns are not failures");
    assert!(!m.quarantined);
    assert_accounting(&m);
}

/// End-to-end observability: the Collect Agent's `GET /metrics` carries
/// the operator runtime section, quarantine is visible there, and the
/// REST start action clears it.
#[test]
fn metrics_flow_through_collect_agent_rest() {
    let broker = Broker::new_sync();
    let storage = Arc::new(StorageBackend::new());
    let agent = Arc::new(
        CollectAgent::new(CollectAgentConfig::default(), &broker.handle(), storage).unwrap(),
    );
    agent.manager().set_fault_policy(FaultPolicy {
        quarantine_threshold: 2,
        ..FaultPolicy::default()
    });
    agent.manager().register_plugin(Box::new(EchoPlugin));
    agent.manager().register_plugin(Box::new(PanicPlugin));
    let bus = broker.handle();
    for i in 1..=5u64 {
        bus.publish_readings(
            t("/r0/n0/power"),
            &[SensorReading::new(i as i64, Timestamp::from_secs(i))],
        )
        .unwrap();
    }
    agent.process_pending();
    agent
        .manager()
        .load(
            PluginConfig::online("good", "echo", 1000)
                .with_patterns(&["<bottomup>power"], &["<bottomup>power-echo"]),
        )
        .unwrap();
    agent
        .manager()
        .load(
            PluginConfig::online("boom", "panic", 1000)
                .with_patterns(&["<bottomup>power"], &["<bottomup>power-boom"]),
        )
        .unwrap();

    // Two panics hit the threshold of 2; the next due visit is a
    // quarantined skip (backoff armed at 2x the interval).
    agent.tick(Timestamp::from_secs(6));
    agent.tick(Timestamp::from_secs(7));
    agent.tick(Timestamp::from_secs(8));
    agent.tick(Timestamp::from_secs(9));

    let mut router = Router::new();
    agent.mount_routes(&mut router);
    let resp = router.dispatch(Request::new(Method::Get, "/metrics"));
    assert_eq!(resp.status.code(), 200);
    let v: serde_json::Value = serde_json::from_str(&resp.body_str()).unwrap();
    let ops = v.get("operators").unwrap();
    let totals = ops.get("totals").unwrap();
    let field = |o: &serde_json::Value, k: &str| o.get(k).unwrap().as_u64().unwrap();
    assert_eq!(field(totals, "panics"), 2);
    assert_eq!(field(totals, "quarantined_operators"), 1);
    assert_eq!(field(totals, "quarantined_skips"), 1);
    assert_eq!(
        field(totals, "runs"),
        field(totals, "successes")
            + field(totals, "errors")
            + field(totals, "panics")
            + field(totals, "overruns")
            + field(totals, "quarantined_skips"),
        "accounting identity violated in /metrics"
    );
    let plugins = ops.get("plugins").unwrap().as_array().unwrap();
    let boom = plugins
        .iter()
        .find(|p| p.get("name").unwrap().as_str() == Some("boom"))
        .unwrap();
    let boom_op = &boom.get("operators").unwrap().as_array().unwrap()[0];
    assert_eq!(boom_op.get("quarantined").unwrap().as_bool(), Some(true));
    assert!(field(boom_op, "last_latency_ns") > 0);

    // REST resume: quarantine cleared, the operator runs again.
    let resp = router.dispatch(Request::new(Method::Put, "/analytics/plugins/boom/start"));
    assert_eq!(resp.status.code(), 200, "{}", resp.body_str());
    let report = agent.tick(Timestamp::from_secs(10));
    assert_eq!(report.panics.len(), 1, "resumed operator must run");

    let resp = router.dispatch(Request::new(Method::Get, "/metrics"));
    let v: serde_json::Value = serde_json::from_str(&resp.body_str()).unwrap();
    let totals = v.get("operators").unwrap().get("totals").unwrap();
    assert_eq!(field(totals, "panics"), 3);
    assert_eq!(field(totals, "quarantined_operators"), 0);
}

/// Deadline-based scheduling keeps the cadence at `period`, not
/// `period + tick_duration`: with a 40 ms period and a 25 ms compute,
/// ~800 ms of wall clock must fit ~20 ticks (the old sleep-after-tick
/// loop managed only ~12).
#[test]
fn scheduler_keeps_cadence_with_slow_operator() {
    let mgr = manager_with_sensor();
    mgr.load(
        PluginConfig::online("sleepy", "sleepy", 1)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-sleepy"])
            .with_option("sleep_ms", 25u64),
    )
    .unwrap();
    let handle = mgr.start_thread(40);
    std::thread::sleep(Duration::from_millis(800));
    drop(handle);
    let ticks = mgr.ticks();
    assert!(
        (15..=25).contains(&ticks),
        "expected ~20 ticks at a 40 ms cadence, got {ticks}"
    );
    let m = snapshot(&mgr, "sleepy");
    assert_eq!(m.successes, m.runs);
    assert!(m.ewma_latency_ns >= 20_000_000, "{m:?}");
    assert_accounting(&m);
}
