//! # oda-bench — reproduction harness for the Wintermute evaluation
//!
//! One module per figure of the paper's §VI, plus shared reporting
//! helpers. Each module exposes a `run`-style function returning a
//! serializable result; the `src/bin/` binaries print the same rows and
//! series the paper's figures show and write the raw data as JSON; the
//! `benches/` directory holds the criterion microbenchmarks and
//! ablation studies.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig5`] | Fig. 5a/5b — Query Engine overhead heatmaps + §VI-A footprint |
//! | [`fig6`] | Fig. 6a/6b — power prediction series and error PDF |
//! | [`fig7`] | Fig. 7 — per-job CPI deciles for four CORAL-2 apps |
//! | [`fig8`] | Fig. 8 — BGMM clustering of node behaviour |
//! | [`storage_engine`] | Durable engine ingest/scan/recovery throughput |
//! | [`query_concurrency`] | Event-loop REST server under 10k simultaneous query clients |
//! | [`bus_saturation`] | Bounded bus under 1×/4×/16× publisher overload |
//! | [`delivery_resilience`] | Pusher spool + reconnect through injected broker outages |
//! | [`storage_faults`] | Durable engine health/recovery through injected I/O faults |
//! | [`rollup_query`] | Raw-scan vs tier-served aggregation latency |
//! | [`federation_scaling`] | Federated ingest scaling + scatter-gather query latency |
//! | [`failover_resilience`] | Replica-pair promotion under a seeded primary crash |
//! | [`sim_matrix`] | Fault scenario × scale matrix over the deterministic simulation harness |
//!
//! Every binary writes `bench-results/<name>.json` in a normalized
//! shape: `{"meta": {...}, "data": {...}}` where the [`BenchMeta`]
//! block records the bench name, RNG seed, the exact config the run
//! used, and the wall-clock duration — so result files are
//! self-describing and comparable across runs.

#![warn(missing_docs)]

pub mod bus_saturation;
pub mod delivery_resilience;
pub mod failover_resilience;
pub mod federation_scaling;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod query_concurrency;
pub mod rollup_query;
pub mod sim_matrix;
pub mod storage_engine;
pub mod storage_faults;

use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// The common metadata block every harness attaches to its JSON report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Bench name; also the `bench-results/<name>.json` file stem.
    pub bench: String,
    /// RNG seed the run used, if the harness is seeded.
    pub seed: Option<u64>,
    /// The exact configuration of the run (`Debug` of the config
    /// struct), so a result file records what produced it.
    pub config: String,
    /// Wall-clock duration of the run, milliseconds.
    pub duration_ms: u64,
    /// Named fault scenario the run replayed (null unless the harness
    /// is driven by the deterministic simulation layer).
    #[serde(default)]
    pub scenario: Option<String>,
    /// Determinism witness (`"{events}:{hash}"`) of the run's canonical
    /// event trace: re-running the recorded `scenario` + `seed` must
    /// reproduce this exact value.
    #[serde(default)]
    pub trace_hash: Option<String>,
}

impl BenchMeta {
    /// Builds the meta block for `bench`, stamping `duration_ms` from
    /// `started` (capture `Instant::now()` before the run).
    pub fn new(
        bench: &str,
        seed: Option<u64>,
        config: &impl std::fmt::Debug,
        started: Instant,
    ) -> BenchMeta {
        BenchMeta {
            bench: bench.to_string(),
            seed,
            config: format!("{config:?}"),
            duration_ms: started.elapsed().as_millis() as u64,
            scenario: None,
            trace_hash: None,
        }
    }

    /// Records the replayed scenario name and its determinism witness,
    /// making the result file reproducible from `(scenario, seed)`.
    pub fn with_scenario(mut self, scenario: &str, trace_hash: &str) -> BenchMeta {
        self.scenario = Some(scenario.to_string());
        self.trace_hash = Some(trace_hash.to_string());
        self
    }
}

/// Writes the normalized report `{"meta": meta, "data": data}` to
/// `bench-results/<meta.bench>.json`.
pub fn write_json_report<T: serde::Serialize>(
    meta: &BenchMeta,
    data: &T,
) -> std::io::Result<std::path::PathBuf> {
    let to_io = |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let mut obj = serde_json::Map::new();
    obj.insert(
        "meta".to_string(),
        serde_json::to_value(meta).map_err(to_io)?,
    );
    obj.insert(
        "data".to_string(),
        serde_json::to_value(data).map_err(to_io)?,
    );
    write_json(&meta.bench, &serde_json::Value::Object(obj))
}

/// Writes a serializable result next to the repository root so the
/// figure data survives the run (`bench-results/<name>.json`).
pub fn write_json<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("bench-results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Formats a heatmap-style table of overhead cells (rows = range,
/// columns = query counts), mirroring the layout of Fig. 5.
pub fn format_heatmap(cells: &[fig5::OverheadCell]) -> String {
    use std::collections::BTreeSet;
    let queries: BTreeSet<usize> = cells.iter().map(|c| c.queries).collect();
    let ranges: BTreeSet<u64> = cells.iter().map(|c| c.range_ms).collect();
    let mut out = String::from("range_ms \\ queries |");
    for q in &queries {
        out.push_str(&format!(" {q:>7} |"));
    }
    out.push('\n');
    for r in ranges.iter().rev() {
        out.push_str(&format!("{r:>18} |"));
        for q in &queries {
            let cell = cells
                .iter()
                .find(|c| c.queries == *q && c.range_ms == *r)
                .map(|c| c.overhead_pct)
                .unwrap_or(f64::NAN);
            out.push_str(&format!(" {cell:>6.2}% |"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_formatting() {
        let cells = vec![
            fig5::OverheadCell {
                queries: 2,
                range_ms: 0,
                overhead_pct: 0.1,
            },
            fig5::OverheadCell {
                queries: 10,
                range_ms: 0,
                overhead_pct: 0.2,
            },
            fig5::OverheadCell {
                queries: 2,
                range_ms: 1000,
                overhead_pct: 0.3,
            },
            fig5::OverheadCell {
                queries: 10,
                range_ms: 1000,
                overhead_pct: 0.4,
            },
        ];
        let table = format_heatmap(&cells);
        assert!(table.contains("0.10%"));
        assert!(table.contains("0.40%"));
        assert_eq!(table.lines().count(), 3);
    }
}
