//! Per-sensor in-memory caches of recent readings.
//!
//! Every Pusher and Collect Agent keeps, for each sensor it handles, a
//! ring buffer of the most recent readings covering a configurable time
//! window (paper §IV-A, §V-B). The Wintermute Query Engine serves reads
//! from these caches whenever possible, in one of two modes:
//!
//! * **relative** — the caller asks for "the last `Δt` of data" as an
//!   offset against the most recent reading. The start index is derived
//!   from the cache's running estimate of the sampling interval, an O(1)
//!   computation (this is DCDB's fast path);
//! * **absolute** — the caller supplies absolute timestamps and the cache
//!   binary-searches for the boundaries, O(log N) but exact.
//!
//! Views are zero-copy: a [`CacheView`] borrows (up to) two slices of the
//! ring storage and iterates them in timestamp order.

use crate::reading::SensorReading;
use crate::time::Timestamp;

/// Ring buffer of recent readings for one sensor.
///
/// Writes must be timestamp-monotonic (enforced: stale writes are
/// rejected), which every sampling loop guarantees by construction; this
/// is what makes binary search on the logical sequence valid.
#[derive(Debug, Clone)]
pub struct SensorCache {
    buf: Vec<SensorReading>,
    /// Ring capacity (independent of `buf.capacity()`, which the
    /// allocator may round up).
    cap: usize,
    /// Index of the oldest element.
    head: usize,
    len: usize,
    /// Exponentially weighted estimate of the sampling interval (ns).
    avg_interval_ns: f64,
    /// Readings dropped because they were older than the newest entry.
    rejected: u64,
}

/// Outcome of [`SensorCache::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Stored; nothing evicted.
    Stored,
    /// Stored; the oldest reading was evicted to make room.
    Evicted,
    /// Rejected: timestamp not newer than the latest entry.
    RejectedStale,
}

impl SensorCache {
    /// Creates a cache holding at most `capacity` readings.
    ///
    /// DCDB sizes caches by time (e.g. 180 s at a 1 s interval); use
    /// [`SensorCache::with_window`] for that calculation.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        SensorCache {
            buf: Vec::with_capacity(capacity.min(4096)),
            cap: capacity,
            head: 0,
            len: 0,
            avg_interval_ns: 0.0,
            rejected: 0,
        }
    }

    /// Creates a cache sized to cover `window_ns` of data sampled every
    /// `interval_ns` (with one extra slot of headroom).
    pub fn with_window(window_ns: u64, interval_ns: u64) -> Self {
        let interval = interval_ns.max(1);
        let slots = (window_ns / interval).max(1) as usize + 1;
        SensorCache::new(slots)
    }

    /// Maximum number of readings held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Bytes actually held by this cache: the struct itself plus the
    /// ring storage *as allocated*, not as configured. `buf` grows
    /// lazily (and starts at most 4096 slots), so a mostly-empty cache
    /// reports far less than `cap * size_of::<SensorReading>()` —
    /// footprint metrics must not charge capacity that was never
    /// allocated.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buf.capacity() * std::mem::size_of::<SensorReading>()
    }

    /// Number of cached readings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cache holds no readings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count of stale readings rejected so far (monitoring hook).
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Running estimate of the sampling interval in nanoseconds
    /// (0.0 until at least two readings arrive).
    pub fn avg_interval_ns(&self) -> f64 {
        self.avg_interval_ns
    }

    /// Logical index -> physical index.
    #[inline]
    fn phys(&self, logical: usize) -> usize {
        let cap = self.cap;
        let i = self.head + logical;
        if i >= cap {
            i - cap
        } else {
            i
        }
    }

    /// Reading at logical position `i` (0 = oldest).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&SensorReading> {
        if i >= self.len {
            return None;
        }
        self.buf.get(self.phys(i))
    }

    /// The most recent reading.
    pub fn latest(&self) -> Option<&SensorReading> {
        if self.len == 0 {
            None
        } else {
            self.get(self.len - 1)
        }
    }

    /// The oldest cached reading.
    pub fn oldest(&self) -> Option<&SensorReading> {
        self.get(0)
    }

    /// Inserts a reading. Readings must arrive in timestamp order;
    /// a reading whose timestamp is not strictly newer than the latest
    /// entry is rejected (sampling loops occasionally re-fire on clock
    /// hiccups, and silently reordering would break binary search).
    pub fn push(&mut self, r: SensorReading) -> PushOutcome {
        if let Some(last) = self.latest() {
            if r.ts <= last.ts {
                self.rejected += 1;
                return PushOutcome::RejectedStale;
            }
            let dt = r.ts.elapsed_since(last.ts) as f64;
            self.avg_interval_ns = if self.avg_interval_ns == 0.0 {
                dt
            } else {
                // EWMA with alpha = 1/8: smooth but adapts within a few
                // samples when an operator's interval is reconfigured.
                self.avg_interval_ns * 0.875 + dt * 0.125
            };
        }
        let cap = self.cap;
        if self.buf.len() < cap {
            self.buf.push(r);
            self.len += 1;
            PushOutcome::Stored
        } else if self.len < cap {
            // Buffer physically full but logically not (after clear()).
            let idx = self.phys(self.len);
            self.buf[idx] = r;
            self.len += 1;
            PushOutcome::Stored
        } else {
            self.buf[self.head] = r;
            self.head = if self.head + 1 == cap {
                0
            } else {
                self.head + 1
            };
            PushOutcome::Evicted
        }
    }

    /// Drops all readings, keeping the allocation and interval estimate.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        // buf keeps stale values; len guards all access.
    }

    /// View over the whole cache, oldest to newest.
    pub fn view_all(&self) -> CacheView<'_> {
        self.view_range_logical(0, self.len)
    }

    /// O(1) **relative** view: approximately the last `offset_ns` of
    /// data, ending at the newest reading.
    ///
    /// The start is computed from the average-interval estimate, exactly
    /// like DCDB's fast path; the result may include slightly more or
    /// less than `offset_ns` when sampling jitters. `offset_ns == 0`
    /// yields just the most recent reading.
    pub fn view_relative(&self, offset_ns: u64) -> CacheView<'_> {
        if self.len == 0 {
            return CacheView::empty();
        }
        if offset_ns == 0 {
            return self.view_range_logical(self.len - 1, self.len);
        }
        let est = if self.avg_interval_ns > 0.0 {
            (offset_ns as f64 / self.avg_interval_ns).ceil() as usize + 1
        } else {
            self.len
        };
        let n = est.min(self.len);
        self.view_range_logical(self.len - n, self.len)
    }

    /// O(log N) **absolute** view: all readings with
    /// `t0 <= ts <= t1`, by binary search on the timestamps.
    pub fn view_absolute(&self, t0: Timestamp, t1: Timestamp) -> CacheView<'_> {
        if self.len == 0 || t1 < t0 {
            return CacheView::empty();
        }
        let lo = self.lower_bound(t0);
        let hi = self.upper_bound(t1);
        if lo >= hi {
            return CacheView::empty();
        }
        self.view_range_logical(lo, hi)
    }

    /// First logical index with `ts >= t`.
    fn lower_bound(&self, t: Timestamp) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.get(mid).unwrap().ts < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First logical index with `ts > t`.
    fn upper_bound(&self, t: Timestamp) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.get(mid).unwrap().ts <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Builds a view over logical indices `[lo, hi)`.
    fn view_range_logical(&self, lo: usize, hi: usize) -> CacheView<'_> {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo == hi {
            return CacheView::empty();
        }
        let cap = self.cap;
        let p_lo = self.phys(lo);
        let p_hi = self.phys(hi - 1) + 1; // exclusive physical end
        if p_lo < p_hi {
            CacheView {
                first: &self.buf[p_lo..p_hi],
                second: &[],
            }
        } else {
            // Wrapped: [p_lo, cap) then [0, p_hi).
            let filled = self.buf.len().min(cap);
            let _ = cap;
            CacheView {
                first: &self.buf[p_lo..filled],
                second: &self.buf[..p_hi],
            }
        }
    }
}

/// Zero-copy, timestamp-ordered view over cached readings.
///
/// Because the backing store is a ring buffer, a view is at most two
/// contiguous slices; iteration chains them.
#[derive(Debug, Clone, Copy)]
pub struct CacheView<'a> {
    first: &'a [SensorReading],
    second: &'a [SensorReading],
}

impl<'a> CacheView<'a> {
    /// An empty view.
    pub fn empty() -> Self {
        CacheView {
            first: &[],
            second: &[],
        }
    }

    /// Number of readings in the view.
    pub fn len(&self) -> usize {
        self.first.len() + self.second.len()
    }

    /// True when the view contains no readings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates readings oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &'a SensorReading> + '_ {
        self.first.iter().chain(self.second.iter())
    }

    /// Copies the view into a `Vec` (API-boundary convenience).
    pub fn to_vec(&self) -> Vec<SensorReading> {
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(self.first);
        v.extend_from_slice(self.second);
        v
    }

    /// First (oldest) reading in the view.
    pub fn first(&self) -> Option<&'a SensorReading> {
        self.first.first().or_else(|| self.second.first())
    }

    /// Last (newest) reading in the view.
    pub fn last(&self) -> Option<&'a SensorReading> {
        self.second.last().or_else(|| self.first.last())
    }
}

impl<'a> IntoIterator for CacheView<'a> {
    type Item = &'a SensorReading;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, SensorReading>, std::slice::Iter<'a, SensorReading>>;
    fn into_iter(self) -> Self::IntoIter {
        self.first.iter().chain(self.second.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::NS_PER_SEC;

    fn r(v: i64, s: u64) -> SensorReading {
        SensorReading::new(v, Timestamp::from_secs(s))
    }

    fn fill(cache: &mut SensorCache, n: u64) {
        for i in 1..=n {
            assert_ne!(cache.push(r(i as i64, i)), PushOutcome::RejectedStale);
        }
    }

    #[test]
    fn push_and_eviction() {
        let mut c = SensorCache::new(3);
        assert_eq!(c.push(r(1, 1)), PushOutcome::Stored);
        assert_eq!(c.push(r(2, 2)), PushOutcome::Stored);
        assert_eq!(c.push(r(3, 3)), PushOutcome::Stored);
        assert_eq!(c.push(r(4, 4)), PushOutcome::Evicted);
        assert_eq!(c.len(), 3);
        assert_eq!(c.oldest().unwrap().value, 2);
        assert_eq!(c.latest().unwrap().value, 4);
    }

    #[test]
    fn rejects_stale() {
        let mut c = SensorCache::new(4);
        c.push(r(1, 5));
        assert_eq!(c.push(r(2, 5)), PushOutcome::RejectedStale);
        assert_eq!(c.push(r(2, 4)), PushOutcome::RejectedStale);
        assert_eq!(c.len(), 1);
        assert_eq!(c.rejected_count(), 2);
    }

    #[test]
    fn memory_bytes_tracks_allocation_not_capacity() {
        let reading = std::mem::size_of::<SensorReading>();
        // Huge configured capacity, nothing stored: only the (bounded)
        // initial allocation is charged.
        let empty = SensorCache::new(1_000_000);
        assert!(empty.memory_bytes() <= std::mem::size_of::<SensorCache>() + 4096 * reading);
        // A filled small cache charges at least its contents.
        let mut full = SensorCache::new(8);
        fill(&mut full, 8);
        assert!(full.memory_bytes() >= std::mem::size_of::<SensorCache>() + 8 * reading);
        assert!(full.memory_bytes() < empty.memory_bytes());
    }

    #[test]
    fn with_window_sizes_by_interval() {
        let c = SensorCache::with_window(180 * NS_PER_SEC, NS_PER_SEC);
        assert!(c.capacity() >= 181);
    }

    #[test]
    fn view_all_is_ordered_after_wrap() {
        let mut c = SensorCache::new(5);
        fill(&mut c, 12);
        let vals: Vec<i64> = c.view_all().iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn absolute_view_exact_bounds() {
        let mut c = SensorCache::new(10);
        fill(&mut c, 10);
        let v = c.view_absolute(Timestamp::from_secs(3), Timestamp::from_secs(6));
        let vals: Vec<i64> = v.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![3, 4, 5, 6]);
    }

    #[test]
    fn absolute_view_outside_range_is_empty() {
        let mut c = SensorCache::new(8);
        fill(&mut c, 8);
        assert!(c
            .view_absolute(Timestamp::from_secs(100), Timestamp::from_secs(200))
            .is_empty());
        assert!(c
            .view_absolute(Timestamp::from_secs(6), Timestamp::from_secs(2))
            .is_empty());
        assert!(c.view_absolute(Timestamp::ZERO, Timestamp::ZERO).is_empty());
    }

    #[test]
    fn absolute_view_spanning_wrap() {
        let mut c = SensorCache::new(4);
        fill(&mut c, 10); // cache holds ts 7..=10, head mid-buffer
        let v = c.view_absolute(Timestamp::from_secs(7), Timestamp::from_secs(10));
        let vals: Vec<i64> = v.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![7, 8, 9, 10]);
        // Partially out-of-cache range clips to what is cached.
        let v = c.view_absolute(Timestamp::from_secs(1), Timestamp::from_secs(8));
        let vals: Vec<i64> = v.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![7, 8]);
    }

    #[test]
    fn relative_view_zero_offset_is_latest() {
        let mut c = SensorCache::new(8);
        fill(&mut c, 6);
        let v = c.view_relative(0);
        assert_eq!(v.len(), 1);
        assert_eq!(v.first().unwrap().value, 6);
    }

    #[test]
    fn relative_view_uses_interval_estimate() {
        let mut c = SensorCache::new(64);
        fill(&mut c, 30); // 1 s interval
        let v = c.view_relative(5 * NS_PER_SEC);
        // ~5 s of data at 1 Hz: 5-7 readings given the +1 headroom.
        assert!((5..=7).contains(&v.len()), "len={}", v.len());
        assert_eq!(v.last().unwrap().value, 30);
    }

    #[test]
    fn relative_view_clamps_to_available() {
        let mut c = SensorCache::new(64);
        fill(&mut c, 4);
        let v = c.view_relative(1000 * NS_PER_SEC);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn relative_view_without_interval_estimate_returns_all() {
        let mut c = SensorCache::new(8);
        c.push(r(1, 1));
        let v = c.view_relative(10 * NS_PER_SEC);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn empty_cache_views() {
        let c = SensorCache::new(4);
        assert!(c.view_all().is_empty());
        assert!(c.view_relative(NS_PER_SEC).is_empty());
        assert!(c.view_absolute(Timestamp::ZERO, Timestamp::MAX).is_empty());
        assert!(c.latest().is_none());
        assert!(c.oldest().is_none());
    }

    #[test]
    fn clear_keeps_working() {
        let mut c = SensorCache::new(3);
        fill(&mut c, 7);
        c.clear();
        assert!(c.is_empty());
        c.push(r(100, 100));
        c.push(r(101, 101));
        let vals: Vec<i64> = c.view_all().iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![100, 101]);
    }

    #[test]
    fn interval_estimate_converges() {
        let mut c = SensorCache::new(128);
        for i in 0..100u64 {
            c.push(SensorReading::new(i as i64, Timestamp(i * 250_000_000)));
        }
        let est = c.avg_interval_ns();
        assert!((est - 250_000_000.0).abs() < 1_000_000.0, "est={est}");
    }

    #[test]
    fn view_first_last_cross_wrap() {
        let mut c = SensorCache::new(4);
        fill(&mut c, 6);
        let v = c.view_all();
        assert_eq!(v.first().unwrap().value, 3);
        assert_eq!(v.last().unwrap().value, 6);
        assert_eq!(v.to_vec().len(), 4);
    }
}
