//! Integration tests for the resilient pusher→agent delivery layer:
//! supervised connections, store-and-forward spooling, and the
//! deterministic chaos schedules that exercise them.
//!
//! Everything runs on virtual time with seeded fault schedules, so
//! every failure here replays bit-for-bit.

use dcdb_wintermute::dcdb_bus::{Broker, ChaosBus, ChaosConfig, MessageBus, OverflowPolicy};
use dcdb_wintermute::dcdb_collectagent::{CollectAgent, CollectAgentConfig};
use dcdb_wintermute::dcdb_common::{Timestamp, Topic};
use dcdb_wintermute::dcdb_pusher::{
    ConnectionState, DeliveryConfig, Pusher, PusherConfig, ReconnectConfig, SpoolConfig,
    TesterMonitoringPlugin,
};
use dcdb_wintermute::dcdb_storage::StorageBackend;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

/// A pusher with `sensors` tester topics routed through `chaos`,
/// spooling with the given policy/depth and deterministic reconnects.
fn chaos_pusher(
    chaos: &ChaosBus,
    sensors: usize,
    policy: OverflowPolicy,
    depth: usize,
    interval_ms: u64,
) -> Pusher {
    let mut pusher = Pusher::with_bus(
        PusherConfig {
            sampling_interval_ms: interval_ms,
            cache_secs: 60,
            publish: true,
            delivery: DeliveryConfig {
                reconnect: ReconnectConfig {
                    base_ms: interval_ms / 2,
                    jitter: 0.0,
                    ..ReconnectConfig::default()
                },
                spool: SpoolConfig {
                    per_topic_depth: depth,
                    policy,
                },
            },
            ..PusherConfig::default()
        },
        Some(Arc::new(chaos.clone()) as Arc<dyn MessageBus>),
    );
    pusher.add_monitoring_plugin(Box::new(
        TesterMonitoringPlugin::new(&t("/host/tester"), sensors).unwrap(),
    ));
    pusher.refresh_sensor_tree();
    pusher
}

/// An outage must not reorder anything: once the connection recovers,
/// the spool drains oldest-first ahead of fresh samples, so every topic
/// sees its tester counter strictly sequential with no duplicates.
#[test]
fn spool_drains_oldest_first_with_no_duplicates() {
    let broker = Broker::new_sync();
    let chaos = ChaosBus::new(
        broker.handle(),
        ChaosConfig::quiet(7).with_outage_ms(3_200, 9_400),
    );
    let pusher = chaos_pusher(&chaos, 4, OverflowPolicy::DropOldest, 64, 1000);
    let sub = broker.handle().subscribe_str("/host/#").unwrap();

    let ticks = 20u64;
    for s in 1..=ticks {
        let now = Timestamp::from_secs(s);
        chaos.advance(now);
        pusher.tick(now).unwrap();
    }
    let stats = pusher.stats();
    assert_eq!(stats.sampled, 4 * ticks);
    assert_eq!(stats.published, 4 * ticks, "everything drained: {stats:?}");
    assert!(stats.delivery_conserved(), "{stats:?}");

    // Per topic: values are exactly 1..=ticks in order — oldest first,
    // nothing lost, nothing duplicated, nothing reordered.
    let mut per_topic: HashMap<String, Vec<i64>> = HashMap::new();
    for msg in sub.drain() {
        let readings = dcdb_wintermute::dcdb_bus::decode_readings(msg.payload).unwrap();
        per_topic
            .entry(msg.topic.as_str().to_string())
            .or_default()
            .extend(readings.iter().map(|r| r.value));
    }
    assert_eq!(per_topic.len(), 4);
    let expect: Vec<i64> = (1..=ticks as i64).collect();
    for (topic, values) in &per_topic {
        assert_eq!(values, &expect, "{topic}");
    }
}

/// Property-style sweep: under arbitrary seeded outage schedules and
/// every overflow policy, the delivery accounting identity
/// `sampled == published + spooled_pending + spool_dropped +
/// final_errors` holds exactly, and the synchronous broker receives
/// precisely what was published.
#[test]
fn accounting_identity_holds_over_seeded_chaos_schedules() {
    let horizon_ticks = 60u64;
    let interval_ms = 500u64;
    for seed in 0..10u64 {
        for &policy in &[
            OverflowPolicy::DropOldest,
            OverflowPolicy::DropNewest,
            OverflowPolicy::Block,
        ] {
            let broker = Broker::new_sync();
            let mut cfg = ChaosConfig::quiet(seed);
            cfg.outages = ChaosConfig::seeded_outages(
                seed,
                horizon_ticks * interval_ms * 1_000_000,
                3,
                1_500_000_000,
                5_000_000_000,
            );
            let chaos = ChaosBus::new(broker.handle(), cfg);
            // Depth varies with the seed: some runs shed, some don't.
            let depth = 2 + (seed as usize * 7) % 40;
            let pusher = chaos_pusher(&chaos, 3, policy, depth, interval_ms);
            let sub = broker.handle().subscribe_str("/host/#").unwrap();

            for tick in 1..=horizon_ticks {
                let now = Timestamp::from_millis(tick * interval_ms);
                chaos.advance(now);
                pusher.tick(now).unwrap();
            }
            let stats = pusher.stats();
            assert!(
                stats.delivery_conserved(),
                "seed {seed} {policy:?} depth {depth}: identity broken: {stats:?}"
            );
            assert_eq!(stats.sampled, 3 * horizon_ticks);
            // End-to-end: the sync broker delivered every published
            // reading.
            let received: u64 = sub
                .drain()
                .iter()
                .map(|m| {
                    dcdb_wintermute::dcdb_bus::decode_readings(m.payload.clone())
                        .unwrap()
                        .len() as u64
                })
                .sum();
            assert_eq!(
                received, stats.published,
                "seed {seed} {policy:?}: bus receipt mismatch"
            );
        }
    }
}

/// The Collect Agent flags a pusher stale while its data is stuck
/// behind an outage and clears the flag once the spool drains.
#[test]
fn staleness_raised_during_outage_and_cleared_after_recovery() {
    let broker = Broker::new_sync();
    let chaos = ChaosBus::new(
        broker.handle(),
        ChaosConfig::quiet(21).with_outage_ms(4_500, 11_500),
    );
    let pusher = chaos_pusher(&chaos, 2, OverflowPolicy::DropOldest, 64, 1000);
    let agent = Arc::new(
        CollectAgent::new(
            CollectAgentConfig {
                expected_interval_ms: 1000,
                ..CollectAgentConfig::default()
            },
            &broker.handle(),
            Arc::new(StorageBackend::new()),
        )
        .unwrap(),
    );

    let mut was_stale_during_outage = false;
    for s in 1..=25u64 {
        let now = Timestamp::from_secs(s);
        chaos.advance(now);
        pusher.tick(now).unwrap();
        agent.tick(now);
        let stale = agent.delivery_health().iter().any(|h| h.stale);
        if (8..=11).contains(&s) {
            // Deep in the outage: no data for > 3 x 1000 ms.
            was_stale_during_outage |= stale;
        }
    }
    assert!(was_stale_during_outage, "outage never raised staleness");
    let health = agent.delivery_health();
    assert_eq!(health.len(), 1, "{health:?}");
    assert!(!health[0].stale, "flag must clear after the spool drains");
    assert_eq!(health[0].prefix, "/host/tester");

    // The /metrics JSON exposes the same section.
    let metrics = agent.metrics_json();
    let delivery = metrics.get("delivery").unwrap();
    assert_eq!(delivery.get("stale_sources").unwrap().as_u64(), Some(0));
    assert_eq!(delivery.get("stale_after_ms").unwrap().as_u64(), Some(3000));
}

/// Connection supervision: an outage degrades then downs the
/// connection, probes are paced by exponential backoff instead of
/// hammering the dead broker, and recovery is counted as a reconnect.
#[test]
fn connection_is_supervised_with_backoff_and_reconnect() {
    let broker = Broker::new_sync();
    let chaos = ChaosBus::new(
        broker.handle(),
        ChaosConfig::quiet(3).with_outage_ms(2_500, 14_500),
    );
    let pusher = chaos_pusher(&chaos, 1, OverflowPolicy::DropOldest, 64, 1000);

    let mut saw_down = false;
    for s in 1..=25u64 {
        let now = Timestamp::from_secs(s);
        chaos.advance(now);
        pusher.tick(now).unwrap();
        saw_down |= pusher.connection_state() == Some(ConnectionState::Down);
    }
    assert!(saw_down, "a 12 s outage must down the connection");
    assert_eq!(pusher.connection_state(), Some(ConnectionState::Up));

    let m = pusher.delivery_metrics().unwrap();
    assert_eq!(m.reconnects, 1);
    assert!(m.failed_probes >= 1, "{m:?}");
    assert_eq!(m.consecutive_failures, 0);
    // Backoff paced the probes: the chaos layer saw far fewer refused
    // attempts than the 12 outage ticks x 1 topic would produce
    // unsupervised.
    let refused = chaos.metrics().refused_total();
    assert!(
        refused < 12,
        "probes were not paced: {refused} refusals, {m:?}"
    );
    // Time-in-state accounting covers the whole observed window.
    let total_ms: u64 = m.time_in_state_ms.iter().sum();
    assert_eq!(total_ms, 25_000, "clocked from t=0 to the last tick: {m:?}");
}

/// Graceful degradation: with the bus hard-partitioned for the whole
/// run and a bounded spool, sampling and the local cache keep working,
/// losses follow the configured policy, and the identity still holds.
#[test]
fn local_cache_keeps_working_while_partitioned() {
    let broker = Broker::new_sync();
    let chaos = ChaosBus::new(broker.handle(), ChaosConfig::quiet(5));
    chaos.partition("/host");
    let pusher = chaos_pusher(&chaos, 2, OverflowPolicy::DropOldest, 8, 1000);

    for s in 1..=30u64 {
        let now = Timestamp::from_secs(s);
        chaos.advance(now);
        pusher.tick(now).unwrap();
    }
    let stats = pusher.stats();
    assert_eq!(stats.sampled, 60);
    assert_eq!(stats.published, 0);
    assert_eq!(stats.spooled_pending, 2 * 8, "spool pinned at capacity");
    assert_eq!(stats.spool_dropped, 60 - 16);
    assert!(stats.delivery_conserved(), "{stats:?}");
    // The local cache still serves the newest reading.
    let got = pusher.query_engine().query(
        &t("/host/tester/t000/value"),
        dcdb_wintermute::wintermute::prelude::QueryMode::Latest,
    );
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].value, 30);
}

/// Shared simulator state across pushers (sanity that the delivery
/// layer composes with the production plugin set path used by
/// wintermute-sim).
#[test]
fn fleet_of_pushers_shares_one_chaos_bus() {
    let broker = Broker::new_sync();
    let chaos = ChaosBus::new(
        broker.handle(),
        ChaosConfig::quiet(9).with_outage_ms(2_200, 5_800),
    );
    let bus: Arc<dyn MessageBus> = Arc::new(chaos.clone());
    let sim = Arc::new(Mutex::new(
        dcdb_wintermute::sim_cluster::ClusterSimulator::new(
            dcdb_wintermute::sim_cluster::ClusterConfig::small_manual(13),
        ),
    ));
    let mut pushers = Vec::new();
    for node in 0..3usize {
        let mut pusher = Pusher::with_bus(
            PusherConfig {
                sampling_interval_ms: 1000,
                cache_secs: 60,
                publish: true,
                delivery: DeliveryConfig {
                    reconnect: ReconnectConfig {
                        base_ms: 500,
                        jitter: 0.0,
                        ..ReconnectConfig::default()
                    },
                    spool: SpoolConfig {
                        per_topic_depth: 32,
                        policy: OverflowPolicy::DropOldest,
                    },
                },
                ..PusherConfig::default()
            },
            Some(Arc::clone(&bus)),
        );
        pusher.add_monitoring_plugin(Box::new(
            dcdb_wintermute::dcdb_pusher::SimMonitoringPlugin::new(Arc::clone(&sim), node),
        ));
        pusher.refresh_sensor_tree();
        pushers.push(pusher);
    }
    let agent = CollectAgent::new(
        CollectAgentConfig::default(),
        &broker.handle(),
        Arc::new(StorageBackend::new()),
    )
    .unwrap();

    for s in 1..=12u64 {
        let now = Timestamp::from_secs(s);
        chaos.advance(now);
        for pusher in &pushers {
            pusher.tick(now).unwrap();
        }
        agent.tick(now);
    }
    let mut sampled = 0;
    let mut published = 0;
    for pusher in &pushers {
        let s = pusher.stats();
        assert!(s.delivery_conserved(), "{s:?}");
        assert_eq!(s.spool_dropped, 0);
        assert_eq!(s.spooled_pending, 0);
        sampled += s.sampled;
        published += s.published;
    }
    assert_eq!(sampled, published, "outage fully absorbed by the spools");
    assert_eq!(agent.stats().readings, published);
    // Every node is a distinct healthy source.
    assert_eq!(agent.delivery_health().len(), 3);
}
