//! Failure-injection integration tests: the stack must degrade
//! gracefully under the faults a production monitoring system actually
//! sees — clock hiccups producing stale samples, corrupt frames on the
//! bus, operators failing mid-tick, subscribers vanishing, and plugins
//! being reconfigured against a sensor space that shrank.

use dcdb_wintermute::dcdb_bus::Broker;
use dcdb_wintermute::dcdb_collectagent::{CollectAgent, CollectAgentConfig};
use dcdb_wintermute::dcdb_common::error::Result as DcdbResult;
use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp, Topic};
use dcdb_wintermute::dcdb_storage::{
    DurableBackend, DurableConfig, FaultConfig, FaultIo, FsyncPolicy, HealthConfig, StorageBackend,
    StorageIo,
};
use dcdb_wintermute::wintermute::prelude::*;
use dcdb_wintermute::wintermute_plugins;
use std::sync::Arc;

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

#[test]
fn stale_samples_are_rejected_but_do_not_poison_the_cache() {
    let qe = QueryEngine::new(16);
    let topic = t("/n0/power");
    qe.insert(&topic, SensorReading::new(1, Timestamp::from_secs(10)));
    // Clock hiccup: a sample from the past.
    qe.insert(&topic, SensorReading::new(2, Timestamp::from_secs(5)));
    qe.insert(&topic, SensorReading::new(3, Timestamp::from_secs(11)));
    let got = qe.query(
        &topic,
        QueryMode::Absolute {
            t0: Timestamp::ZERO,
            t1: Timestamp::MAX,
        },
    );
    let vals: Vec<i64> = got.iter().map(|r| r.value).collect();
    assert_eq!(vals, vec![1, 3]);
}

#[test]
fn corrupt_frames_interleaved_with_good_ones() {
    let broker = Broker::new_sync();
    let storage = Arc::new(StorageBackend::new());
    let agent =
        CollectAgent::new(CollectAgentConfig::default(), &broker.handle(), storage).unwrap();
    let bus = broker.handle();
    for i in 1..=10u64 {
        if i % 3 == 0 {
            // Corrupt frame.
            bus.publish(t("/n0/power"), bytes::Bytes::from_static(&[0xFF, 0x00]))
                .unwrap();
        } else {
            bus.publish_readings(
                t("/n0/power"),
                &[SensorReading::new(i as i64, Timestamp::from_secs(i))],
            )
            .unwrap();
        }
    }
    agent.process_pending();
    let stats = agent.stats();
    assert_eq!(stats.decode_errors, 3);
    assert_eq!(stats.readings, 7);
    // Good data is fully usable.
    let got = agent
        .query_engine()
        .query(&t("/n0/power"), QueryMode::Latest);
    assert_eq!(got[0].value, 10);
}

/// An operator that fails on every odd tick.
struct FlakyOperator {
    units: Vec<Unit>,
    tick: usize,
}

impl Operator for FlakyOperator {
    fn name(&self) -> &str {
        "flaky"
    }
    fn units(&self) -> &[Unit] {
        &self.units
    }
    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> DcdbResult<Vec<Output>> {
        if i == 0 {
            self.tick += 1;
        }
        if self.tick % 2 == 1 {
            return Err(dcdb_wintermute::dcdb_common::DcdbError::InvalidState(
                "injected failure".into(),
            ));
        }
        Ok(vec![(
            self.units[i].outputs[0].clone(),
            SensorReading::new(self.tick as i64, ctx.now),
        )])
    }
}

struct FlakyPlugin;
impl OperatorPlugin for FlakyPlugin {
    fn kind(&self) -> &str {
        "flaky"
    }
    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> DcdbResult<Vec<Box<dyn Operator>>> {
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |_, units| {
            Ok(Box::new(FlakyOperator { units, tick: 0 }) as Box<dyn Operator>)
        })
    }
}

#[test]
fn failing_operator_does_not_starve_healthy_ones() {
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(
        &t("/n0/power"),
        SensorReading::new(100, Timestamp::from_secs(1)),
    );
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    mgr.register_plugin(Box::new(FlakyPlugin));
    wintermute_plugins::register_all(&mgr, None);
    mgr.load(
        PluginConfig::online("bad", "flaky", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>flaky-out"]),
    )
    .unwrap();
    mgr.load(
        PluginConfig::online("good", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
            .with_option("window_ms", 10_000u64),
    )
    .unwrap();

    // Tick 1: flaky fails, aggregator succeeds.
    let report = mgr.tick(Timestamp::from_secs(2));
    assert_eq!(report.operators_run, 2);
    assert_eq!(report.errors.len(), 1);
    assert!(report.errors[0].contains("injected failure"));
    assert!(!mgr
        .query_engine()
        .query(&t("/n0/power-avg"), QueryMode::Latest)
        .is_empty());

    // Tick 2: flaky recovers on even ticks.
    let report = mgr.tick(Timestamp::from_secs(3));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(!mgr
        .query_engine()
        .query(&t("/n0/flaky-out"), QueryMode::Latest)
        .is_empty());
}

#[test]
fn dropped_subscriber_does_not_break_publishing() {
    let broker = Broker::new_sync();
    let bus = broker.handle();
    let sub = bus.subscribe_str("/#").unwrap();
    bus.publish(t("/n0/a"), bytes::Bytes::new()).unwrap();
    assert_eq!(sub.queued(), 1);
    drop(sub);
    // Publishing continues; nothing delivered, nothing broken.
    bus.publish(t("/n0/b"), bytes::Bytes::new()).unwrap();
    let stats = broker.stats();
    assert_eq!(stats.published, 2);
    assert_eq!(stats.delivered, 1);
}

#[test]
fn reload_fails_loudly_when_sensors_disappear() {
    // A plugin bound to sensors that exist; after a navigator rebuild
    // from an engine that no longer exposes them (e.g. topology
    // change), reload must fail with a diagnostic instead of silently
    // running with zero units.
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(
        &t("/n0/power"),
        SensorReading::new(1, Timestamp::from_secs(1)),
    );
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    wintermute_plugins::register_all(&mgr, None);
    mgr.load(
        PluginConfig::online("agg", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"]),
    )
    .unwrap();
    // The sensor space "shrinks": an empty navigator replaces the tree.
    mgr.query_engine()
        .set_navigator(SensorNavigator::build(std::iter::empty::<&Topic>()));
    let err = mgr.reload("agg").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("no units") || msg.contains("level"),
        "unexpected diagnostic: {msg}"
    );
    // The previous instance remains loaded and functional.
    assert!(mgr.is_running("agg"));
}

fn durable_test_config() -> DurableConfig {
    DurableConfig {
        fsync: FsyncPolicy::Never,
        // Small threshold so the kill lands after several seals: the
        // crash must be recovered from segments AND the WAL tail.
        memtable_max_readings: 500,
        ..DurableConfig::default()
    }
}

#[test]
fn kill_mid_ingest_loses_no_acked_data() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dcdb-kill-mid-ingest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let db = DurableBackend::open(&dir, durable_test_config()).unwrap();
    let mut acked = Vec::new();
    for i in 1..=1800u64 {
        let topic = t(&format!("/n{}/power", i % 3));
        let reading = SensorReading::new(i as i64, Timestamp::from_secs(i));
        if db.insert(&topic, reading).is_ok() {
            acked.push((topic, reading));
        }
    }
    assert_eq!(acked.len(), 1800, "all inserts should be acknowledged");
    // Simulated SIGKILL mid-ingest: no Drop, no flush, no final sync —
    // the process just disappears. (The leaked handle stands in for the
    // killed process still "holding" the file.)
    std::mem::forget(db);

    // Restart over the same directory.
    let db = DurableBackend::open(&dir, durable_test_config()).unwrap();
    let rec = db.recovery();
    assert!(rec.segments > 0, "kill landed before any seal: {rec:?}");
    assert!(
        rec.wal_readings > 0,
        "kill landed on a sealed boundary: {rec:?}"
    );
    for n in 0..3u64 {
        let topic = t(&format!("/n{n}/power"));
        let got = db.query(&topic, Timestamp::ZERO, Timestamp::MAX);
        let expected: Vec<SensorReading> = acked
            .iter()
            .filter(|(t2, _)| *t2 == topic)
            .map(|&(_, r)| r)
            .collect();
        assert_eq!(got, expected, "acked data lost on {topic}");
    }
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_wal_record_tolerates_torn_tail() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dcdb-torn-tail-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let db = DurableBackend::open(&dir, durable_test_config()).unwrap();
    for i in 1..=100u64 {
        db.insert(
            &t("/n0/power"),
            SensorReading::new(i as i64, Timestamp::from_secs(i)),
        )
        .unwrap();
    }
    std::mem::forget(db);

    // The kill interrupted a WAL append half-way: garbage bytes sit
    // after the last complete (acknowledged) record.
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().contains("wal-"))
        .max()
        .unwrap();
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap(); // torn record header
    drop(f);

    let db = DurableBackend::open(&dir, durable_test_config()).unwrap();
    assert_eq!(db.recovery().torn_tails, 1);
    let got = db.query(&t("/n0/power"), Timestamp::ZERO, Timestamp::MAX);
    assert_eq!(got.len(), 100, "acked records before the torn tail lost");
    assert_eq!(got.last().unwrap().value, 100);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Property: crash the engine at *any* torn-write point the seeded
/// injector produces and recovery is prefix-consistent — every batch
/// acknowledged *durable* is fully recovered, nothing from a refused
/// batch survives (torn prefixes are rolled back on failure and
/// discarded by replay after a crash), and batches accepted
/// memtable-only under ReadOnly are the only ones allowed to go
/// missing. Each seed exercises a different schedule of torn writes
/// across appends, seals and rotations.
#[test]
fn torn_write_crash_points_recover_prefix_consistent() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dcdb-torn-property-{}", std::process::id()));
    let config = DurableConfig {
        fsync: FsyncPolicy::Never,
        // Small seal threshold: some seeds tear a WAL append, some a
        // segment write, some the post-seal WAL swap.
        memtable_max_readings: 150,
        health: HealthConfig {
            // No retries: every injected tear surfaces as a refused
            // batch, maximising distinct crash points.
            max_retries: 0,
            retry_backoff_base_ms: 0,
            ..HealthConfig::default()
        },
        ..DurableConfig::default()
    };
    let topics: Vec<Topic> = (0..3).map(|n| t(&format!("/n{n}/power"))).collect();

    for seed in 1..=48u64 {
        std::fs::remove_dir_all(&dir).ok();
        // Open under a quiet schedule (a torn initial WAL header is a
        // failed open, not a crash point), then arm the tears.
        let io = Arc::new(FaultIo::std(FaultConfig::quiet(seed)));
        let db =
            DurableBackend::open_with(Arc::clone(&io) as Arc<dyn StorageIo>, &dir, config.clone())
                .unwrap();
        io.set_config(FaultConfig {
            torn_write_prob: 0.35,
            ..FaultConfig::quiet(seed)
        });
        // Durable-acked (topic, ts) pairs — the set a crash must never
        // lose — and buffered ones, which legitimately may not survive.
        let mut durable: Vec<Vec<u64>> = vec![Vec::new(); topics.len()];
        let mut buffered: Vec<Vec<u64>> = vec![Vec::new(); topics.len()];
        let mut refused = 0u64;
        for batch_no in 0..40u64 {
            for (i, topic) in topics.iter().enumerate() {
                let batch: Vec<SensorReading> = (0..3)
                    .map(|j| {
                        let ts = (batch_no * 10 + j + 1) * 1_000_000_000 + i as u64;
                        SensorReading::new((batch_no * 10 + j) as i64, Timestamp(ts))
                    })
                    .collect();
                use dcdb_wintermute::dcdb_storage::InsertAck;
                match db.insert_batch_acked(topic, &batch) {
                    Ok(InsertAck::Durable) => {
                        durable[i].extend(batch.iter().map(|r| r.ts.as_nanos()))
                    }
                    Ok(InsertAck::Buffered) => {
                        buffered[i].extend(batch.iter().map(|r| r.ts.as_nanos()))
                    }
                    Err(_) => refused += 1,
                }
            }
        }
        assert!(
            db.health_report().conserved(),
            "seed {seed}: conservation identity broken: {:?}",
            db.health_report()
        );
        // Crash: no Drop, no flush; the torn prefixes (rolled back or
        // not) are whatever is on disk right now.
        std::mem::forget(db);

        // Recovery runs on the real filesystem — the faults "stop" with
        // the crashed process.
        let db = DurableBackend::open(&dir, config.clone()).unwrap();
        for (i, topic) in topics.iter().enumerate() {
            let got: std::collections::HashSet<u64> = db
                .query(topic, Timestamp::ZERO, Timestamp::MAX)
                .iter()
                .map(|r| r.ts.as_nanos())
                .collect();
            // Every durable-acked reading survived.
            for ts in &durable[i] {
                assert!(
                    got.contains(ts),
                    "seed {seed} topic {topic}: durable-acked ts {ts} lost \
                     ({} refused batches this run)",
                    refused
                );
            }
            // Nothing from a refused batch leaked in: whatever was
            // recovered was either durable-acked or buffered (the
            // latter only when a successful rotation re-journaled it
            // before the crash).
            let inserted: std::collections::HashSet<u64> = durable[i]
                .iter()
                .chain(buffered[i].iter())
                .copied()
                .collect();
            for ts in &got {
                assert!(
                    inserted.contains(ts),
                    "seed {seed} topic {topic}: recovered ts {ts} was never acknowledged"
                );
            }
        }
        drop(db);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collect_agent_killed_mid_ingest_recovers_acked_readings() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dcdb-agent-kill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let acked;
    {
        let broker = Broker::new_sync();
        let storage = Arc::new(DurableBackend::open(&dir, durable_test_config()).unwrap());
        let agent = CollectAgent::new(
            CollectAgentConfig::default(),
            &broker.handle(),
            Arc::clone(&storage) as Arc<dyn dcdb_wintermute::dcdb_storage::StorageEngine>,
        )
        .unwrap();
        let bus = broker.handle();
        for i in 1..=700u64 {
            bus.publish_readings(
                t("/r0/n0/power"),
                &[SensorReading::new(i as i64, Timestamp::from_secs(i))],
            )
            .unwrap();
        }
        // The agent drains the bus into the durable engine; everything
        // counted here was journaled before being acknowledged.
        agent.process_pending();
        acked = agent.stats().readings;
        assert_eq!(acked, 700);
        // SIGKILL: keep one storage handle alive forever so no Drop
        // (and thus no graceful sync) ever runs, then drop the agent.
        std::mem::forget(storage);
    }

    let storage = DurableBackend::open(&dir, durable_test_config()).unwrap();
    let got = storage.query(&t("/r0/n0/power"), Timestamp::ZERO, Timestamp::MAX);
    assert_eq!(got.len() as u64, acked, "acked readings lost across kill");
    drop(storage);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn on_demand_on_stopped_plugin_still_answers() {
    // Stopping pauses *online* computation; explicit on-demand requests
    // keep working (they are how operators in OnDemand mode are driven
    // at all).
    let qe = Arc::new(QueryEngine::new(16));
    qe.insert(
        &t("/n0/power"),
        SensorReading::new(42, Timestamp::from_secs(1)),
    );
    qe.rebuild_navigator();
    let mgr = OperatorManager::new(qe);
    wintermute_plugins::register_all(&mgr, None);
    mgr.load(
        PluginConfig::online("agg", "aggregator", 1000)
            .with_patterns(&["<bottomup>power"], &["<bottomup>power-avg"])
            .with_option("window_ms", 10_000u64),
    )
    .unwrap();
    mgr.stop("agg").unwrap();
    assert_eq!(mgr.tick(Timestamp::from_secs(2)).operators_run, 0);
    let outputs = mgr
        .on_demand("agg", &t("/n0"), Timestamp::from_secs(2))
        .unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].1.value, 42);
}
