//! Blocking TCP server for the REST control APIs.
//!
//! One acceptor thread, one short-lived worker thread per connection:
//! the control plane sees a handful of requests per second at most
//! (management actions and on-demand operator triggers), so simplicity
//! and predictable teardown win over connection pooling.

use crate::http::{Request, Response, Status};
use crate::router::Router;
use dcdb_common::error::DcdbError;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running REST server; shuts down on drop.
pub struct RestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl RestServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `router` until shutdown.
    pub fn serve(addr: &str, router: Router) -> Result<RestServer, DcdbError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Periodic accept timeouts let the acceptor observe `stop`.
        listener.set_nonblocking(false)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let router = Arc::new(router);
        let acceptor = std::thread::Builder::new()
            .name("dcdb-rest-acceptor".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            let router = Arc::clone(&router);
                            let _ = std::thread::Builder::new()
                                .name("dcdb-rest-conn".into())
                                .spawn(move || handle_connection(stream, &router));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(DcdbError::Io)?;
        Ok(RestServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the acceptor to stop and joins it.
    pub fn shutdown(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RestServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let response = match Request::read_from(&stream) {
        Ok(req) => router.dispatch(req),
        Err(e) => Response::error(Status::BadRequest, format!("bad request: {e}")),
    };
    let _ = response.write_to(&mut write_half);
    let _ = write_half.flush();
}

/// Blocking HTTP client helper used by tests, examples and the
/// on-demand harness: sends one request, reads one response.
pub fn http_request(
    addr: SocketAddr,
    method: crate::http::Method,
    path: &str,
    body: &[u8],
) -> Result<(u16, String), DcdbError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: dcdb\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    // Parse the status line + headers + body.
    use std::io::{BufRead, BufReader, Read};
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| DcdbError::Parse(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse::<usize>().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((code, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_| Response::text("pong"));
        r.put("/echo", |req| {
            Response::text(String::from_utf8_lossy(&req.body).into_owned())
        });
        r.get("/sensors/*topic", |req| {
            Response::json(format!(
                "{{\"topic\":\"{}\"}}",
                req.path_param("topic").unwrap()
            ))
        });
        r
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, body) = http_request(server.addr(), Method::Get, "/ping", b"").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "pong");
    }

    #[test]
    fn put_with_body() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, body) = http_request(server.addr(), Method::Put, "/echo", b"payload").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "payload");
    }

    #[test]
    fn not_found_and_bad_method() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, _) = http_request(server.addr(), Method::Get, "/missing", b"").unwrap();
        assert_eq!(code, 404);
        let (code, _) = http_request(server.addr(), Method::Put, "/ping", b"").unwrap();
        assert_eq!(code, 405);
    }

    #[test]
    fn path_params_over_tcp() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, body) =
            http_request(server.addr(), Method::Get, "/sensors/r1/n2/power", b"").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("r1/n2/power"));
    }

    #[test]
    fn concurrent_clients() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (code, body) = http_request(addr, Method::Get, "/ping", b"").unwrap();
                    assert_eq!(code, 200);
                    assert_eq!(body, "pong");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        server.shutdown();
        server.shutdown();
        // After shutdown new connections are not served.
        assert!(http_request(server.addr(), Method::Get, "/ping", b"").is_err());
    }
}
