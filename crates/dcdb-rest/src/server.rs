//! Event-loop TCP server for the REST control APIs.
//!
//! A single `poll(2)`-driven event loop owns the listener and every
//! client connection in non-blocking mode, so thousands of idle or
//! slow clients cost one file descriptor each instead of one thread
//! each. Router handlers run on a small bounded worker pool; finished
//! responses are handed back to the loop through a self-pipe wakeup.
//!
//! Robustness properties the old thread-per-connection server lacked:
//!
//! * transient `accept(2)` failures (`EMFILE`, `ECONNABORTED`, …) are
//!   survived with capped exponential backoff and counted in
//!   [`ServerMetricsSnapshot::accept_errors`] instead of killing the
//!   acceptor;
//! * every connection carries an idle deadline that covers *both*
//!   read-stalled and write-stalled peers, so slow clients are reaped
//!   instead of leaking resources for the lifetime of the process.

use crate::http::{Request, RequestParser, Response, Status};
use crate::router::Router;
use crate::sys::{poll_ready, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use dcdb_common::error::DcdbError;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning and fault-injection knobs for [`RestServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads running router handlers.
    pub workers: usize,
    /// Connections making no read or write progress for this long are
    /// reaped.
    pub idle_timeout: Duration,
    /// Upper bound on simultaneously open client connections; accepts
    /// beyond it wait in the listen backlog until a slot frees.
    pub max_connections: usize,
    /// Test hook: called with the accept attempt ordinal (starting at
    /// 0); returning `true` makes that attempt fail as a transient
    /// accept error. `None` disables injection.
    pub accept_fault: Option<Arc<dyn Fn(u64) -> bool + Send + Sync>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            idle_timeout: Duration::from_secs(10),
            max_connections: 16 * 1024,
            accept_fault: None,
        }
    }
}

/// Point-in-time counters for a running [`RestServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Transient accept failures survived (injected or real).
    pub accept_errors: u64,
    /// Responses fully written back to clients.
    pub responses: u64,
    /// Connections that sent an unparsable request (answered `400`).
    pub bad_requests: u64,
    /// Connections reaped for exceeding the idle deadline while
    /// read- or write-stalled.
    pub reaped_idle: u64,
    /// Connections currently open.
    pub open_connections: u64,
}

#[derive(Default)]
struct Metrics {
    accepted: AtomicU64,
    accept_errors: AtomicU64,
    responses: AtomicU64,
    bad_requests: AtomicU64,
    reaped_idle: AtomicU64,
    open: AtomicU64,
}

impl Metrics {
    fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
            open_connections: self.open.load(Ordering::Relaxed),
        }
    }
}

/// A running REST server; shuts down on drop.
pub struct RestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<UnixStream>,
    metrics: Arc<Metrics>,
    event_loop: Option<std::thread::JoinHandle<()>>,
}

enum ConnState {
    Reading(RequestParser),
    Dispatching,
    Writing,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    write_buf: Vec<u8>,
    written: usize,
    deadline: Instant,
}

/// What to do with a connection after handling an event.
enum After {
    Keep,
    Close,
}

struct Job {
    conn_id: u64,
    req: Request,
}

/// Serialized responses handed back from the worker pool, tagged with
/// the connection they belong to.
type DoneQueue = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);
/// Poll tick; bounds how late idle reaping and accept retries can run.
const POLL_TICK_MS: i32 = 100;

impl RestServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `router` with default [`ServerConfig`] until shutdown.
    pub fn serve(addr: &str, router: Router) -> Result<RestServer, DcdbError> {
        RestServer::serve_with(addr, router, ServerConfig::default())
    }

    /// [`serve`](RestServer::serve) with explicit tuning knobs.
    pub fn serve_with(
        addr: &str,
        router: Router,
        config: ServerConfig,
    ) -> Result<RestServer, DcdbError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let wake_tx = Arc::new(wake_tx);

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        let router = Arc::new(router);

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let done: DoneQueue = Arc::new(Mutex::new(Vec::new()));

        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let job_rx = Arc::clone(&job_rx);
            let done = Arc::clone(&done);
            let wake = Arc::clone(&wake_tx);
            let router = Arc::clone(&router);
            let handle = std::thread::Builder::new()
                .name(format!("dcdb-rest-worker-{i}"))
                .spawn(move || loop {
                    let job = match job_rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    let Ok(job) = job else { break };
                    let response = router.dispatch(job.req);
                    let mut bytes = Vec::new();
                    let _ = response.write_to(&mut bytes);
                    if let Ok(mut done) = done.lock() {
                        done.push((job.conn_id, bytes));
                    }
                    let _ = (&*wake).write(&[1]);
                })
                .map_err(DcdbError::Io)?;
            workers.push(handle);
        }

        let loop_stop = Arc::clone(&stop);
        let loop_metrics = Arc::clone(&metrics);
        let event_loop = std::thread::Builder::new()
            .name("dcdb-rest-eventloop".into())
            .spawn(move || {
                let mut el = EventLoop {
                    listener,
                    wake_rx,
                    config,
                    metrics: loop_metrics,
                    stop: loop_stop,
                    job_tx,
                    done,
                    conns: HashMap::new(),
                    next_conn_id: 0,
                    accept_attempts: 0,
                    accept_backoff: ACCEPT_BACKOFF_BASE,
                    accept_retry_at: None,
                };
                el.run();
                // Dropping the job sender lets the workers drain and
                // exit; join them so shutdown() means fully stopped.
                drop(el);
                for w in workers {
                    let _ = w.join();
                }
            })
            .map_err(DcdbError::Io)?;

        Ok(RestServer {
            addr: local,
            stop,
            wake: wake_tx,
            metrics,
            event_loop: Some(event_loop),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Signals the event loop to stop and joins it (idempotent).
    pub fn shutdown(&mut self) {
        if self.event_loop.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        let _ = (&*self.wake).write(&[1]);
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RestServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct EventLoop {
    listener: TcpListener,
    wake_rx: UnixStream,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    job_tx: mpsc::Sender<Job>,
    done: DoneQueue,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    accept_attempts: u64,
    accept_backoff: Duration,
    accept_retry_at: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) {
        // pollfd layout per iteration: [0] listener, [1] wake pipe,
        // [2..] one entry per connection (ids kept in lockstep).
        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        loop {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let now = Instant::now();
            let accepting = self.accepting(now);

            fds.clear();
            ids.clear();
            fds.push(PollFd::new(
                self.listener.as_raw_fd(),
                if accepting { POLLIN } else { 0 },
            ));
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            for (&id, conn) in &self.conns {
                let events = match conn.state {
                    ConnState::Reading(_) => POLLIN,
                    ConnState::Dispatching => 0,
                    ConnState::Writing => POLLOUT,
                };
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                ids.push(id);
            }

            if poll_ready(&mut fds, self.poll_timeout_ms(now)).is_err() {
                continue;
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }

            if fds[1].revents & POLLIN != 0 {
                self.drain_wake();
            }
            self.flush_done();
            if fds[0].revents & POLLIN != 0 {
                self.accept_pending();
            }

            for (slot, &id) in ids.iter().enumerate() {
                let revents = fds[slot + 2].revents;
                if revents == 0 {
                    continue;
                }
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                let idle = self.config.idle_timeout;
                let after = match conn.state {
                    ConnState::Reading(_) if revents & (POLLIN | POLLHUP | POLLERR) != 0 => {
                        Self::handle_readable(conn, id, &self.job_tx, &self.metrics, idle)
                    }
                    ConnState::Writing if revents & (POLLOUT | POLLHUP | POLLERR) != 0 => {
                        Self::handle_writable(conn, &self.metrics, idle)
                    }
                    // A dispatching peer that errors or hangs up is
                    // discovered when its response write fails, or by
                    // the idle deadline.
                    _ if revents & POLLNVAL != 0 => After::Close,
                    _ => After::Keep,
                };
                if matches!(after, After::Close) {
                    self.close_conn(id);
                }
            }

            self.reap_idle(Instant::now());
        }
    }

    fn accepting(&self, now: Instant) -> bool {
        if self.conns.len() >= self.config.max_connections {
            return false;
        }
        match self.accept_retry_at {
            Some(at) => now >= at,
            None => true,
        }
    }

    fn poll_timeout_ms(&self, now: Instant) -> i32 {
        let mut timeout = Duration::from_millis(POLL_TICK_MS as u64);
        if let Some(at) = self.accept_retry_at {
            timeout = timeout.min(at.saturating_duration_since(now));
        }
        (timeout.as_millis() as i32).max(1)
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Moves finished worker responses onto their connections and
    /// starts writing them out.
    fn flush_done(&mut self) {
        let done = match self.done.lock() {
            Ok(mut d) => std::mem::take(&mut *d),
            Err(_) => return,
        };
        for (id, bytes) in done {
            // The connection may have been reaped while dispatching.
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            conn.write_buf = bytes;
            conn.written = 0;
            conn.state = ConnState::Writing;
            let idle = self.config.idle_timeout;
            conn.deadline = Instant::now() + idle;
            if matches!(
                Self::handle_writable(conn, &self.metrics, idle),
                After::Close
            ) {
                self.close_conn(id);
            }
        }
    }

    fn accept_pending(&mut self) {
        while self.conns.len() < self.config.max_connections {
            let attempt = self.accept_attempts;
            self.accept_attempts += 1;
            if let Some(fault) = &self.config.accept_fault {
                if fault(attempt) {
                    self.note_accept_error();
                    return;
                }
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_BASE;
                    self.accept_retry_at = None;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            state: ConnState::Reading(RequestParser::new()),
                            write_buf: Vec::new(),
                            written: 0,
                            deadline: Instant::now() + self.config.idle_timeout,
                        },
                    );
                    self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                    self.metrics.open.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // EMFILE, ECONNABORTED, … — transient; back off and
                // retry rather than abandoning the listener.
                Err(_) => {
                    self.note_accept_error();
                    return;
                }
            }
        }
    }

    fn note_accept_error(&mut self) {
        self.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
        self.accept_retry_at = Some(Instant::now() + self.accept_backoff);
        self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
    }

    fn handle_readable(
        conn: &mut Conn,
        id: u64,
        job_tx: &mpsc::Sender<Job>,
        metrics: &Metrics,
        idle: Duration,
    ) -> After {
        let mut tmp = [0u8; 4096];
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => return After::Close,
                Ok(n) => {
                    let ConnState::Reading(parser) = &mut conn.state else {
                        return After::Keep;
                    };
                    match parser.feed(&tmp[..n]) {
                        Ok(Some(req)) => {
                            conn.state = ConnState::Dispatching;
                            conn.deadline = Instant::now() + idle;
                            if job_tx.send(Job { conn_id: id, req }).is_err() {
                                return After::Close;
                            }
                            return After::Keep;
                        }
                        Ok(None) => {
                            conn.deadline = Instant::now() + idle;
                        }
                        Err(e) => {
                            metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                            let resp =
                                Response::error(Status::BadRequest, format!("bad request: {e}"));
                            let mut bytes = Vec::new();
                            let _ = resp.write_to(&mut bytes);
                            conn.write_buf = bytes;
                            conn.written = 0;
                            conn.state = ConnState::Writing;
                            return Self::handle_writable(conn, metrics, idle);
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return After::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return After::Close,
            }
        }
    }

    fn handle_writable(conn: &mut Conn, metrics: &Metrics, idle: Duration) -> After {
        while conn.written < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => return After::Close,
                Ok(n) => {
                    conn.written += n;
                    conn.deadline = Instant::now() + idle;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return After::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return After::Close,
            }
        }
        metrics.responses.fetch_add(1, Ordering::Relaxed);
        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
        After::Close
    }

    fn reap_idle(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| now >= c.deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.metrics.reaped_idle.fetch_add(1, Ordering::Relaxed);
            self.close_conn(id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.metrics.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Blocking HTTP client helper used by tests, examples and the
/// on-demand harness: sends one request, reads one response.
pub fn http_request(
    addr: SocketAddr,
    method: crate::http::Method,
    path: &str,
    body: &[u8],
) -> Result<(u16, String), DcdbError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: dcdb\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    // Parse the status line + headers + body.
    use std::io::{BufRead, BufReader};
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| DcdbError::Parse(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse::<usize>().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((code, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_| Response::text("pong"));
        r.put("/echo", |req| {
            Response::text(String::from_utf8_lossy(&req.body).into_owned())
        });
        r.get("/sensors/*topic", |req| {
            Response::json(format!(
                "{{\"topic\":\"{}\"}}",
                req.path_param("topic").unwrap()
            ))
        });
        r
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, body) = http_request(server.addr(), Method::Get, "/ping", b"").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "pong");
    }

    #[test]
    fn put_with_body() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, body) = http_request(server.addr(), Method::Put, "/echo", b"payload").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "payload");
    }

    #[test]
    fn not_found_and_bad_method() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, _) = http_request(server.addr(), Method::Get, "/missing", b"").unwrap();
        assert_eq!(code, 404);
        let (code, _) = http_request(server.addr(), Method::Put, "/ping", b"").unwrap();
        assert_eq!(code, 405);
    }

    #[test]
    fn path_params_over_tcp() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let (code, body) =
            http_request(server.addr(), Method::Get, "/sensors/r1/n2/power", b"").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("r1/n2/power"));
    }

    #[test]
    fn concurrent_clients() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (code, body) = http_request(addr, Method::Get, "/ping", b"").unwrap();
                    assert_eq!(code, 200);
                    assert_eq!(body, "pong");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        server.shutdown();
        server.shutdown();
        // After shutdown new connections are not served.
        assert!(http_request(server.addr(), Method::Get, "/ping", b"").is_err());
    }

    #[test]
    fn acceptor_survives_injected_accept_failures() {
        let config = ServerConfig {
            accept_fault: Some(Arc::new(|attempt| attempt < 3)),
            ..ServerConfig::default()
        };
        let server = RestServer::serve_with("127.0.0.1:0", test_router(), config).unwrap();
        // The first three accept attempts fail; the pending connection
        // stays in the backlog and is served once the backoff elapses.
        let (code, body) = http_request(server.addr(), Method::Get, "/ping", b"").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "pong");
        let m = server.metrics();
        assert!(m.accept_errors >= 3, "accept_errors = {}", m.accept_errors);
        assert!(m.accepted >= 1);
    }

    #[test]
    fn bad_request_is_answered_with_400() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"NOPE /ping HTTP/1.1\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "reply = {reply:?}");
        assert_eq!(server.metrics().bad_requests, 1);
    }

    #[test]
    fn idle_and_half_sent_connections_are_reaped() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let server = RestServer::serve_with("127.0.0.1:0", test_router(), config).unwrap();
        // One connection that never sends anything, one that stalls
        // mid-request: both must be reaped, not leaked.
        let mut silent = TcpStream::connect(server.addr()).unwrap();
        let mut stalled = TcpStream::connect(server.addr()).unwrap();
        stalled.write_all(b"GET /pi").unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stalled
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // The server closes both without a response once the deadline
        // passes.
        let mut buf = Vec::new();
        silent.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty());
        buf.clear();
        stalled.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let m = server.metrics();
            if m.reaped_idle >= 2 && m.open_connections == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "reaping timed out: {m:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn holds_many_simultaneous_slow_clients() {
        let server = RestServer::serve("127.0.0.1:0", test_router()).unwrap();
        let addr = server.addr();
        // Open all connections first (they all park in the event loop),
        // then complete the requests: a thread-per-connection server
        // would need 256 threads for this; the event loop needs one.
        let mut streams: Vec<TcpStream> = (0..256)
            .map(|_| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(b"GET /ping HT").unwrap();
                s
            })
            .collect();
        for s in &mut streams {
            s.write_all(b"TP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        }
        for mut s in streams {
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut reply = String::new();
            s.read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 200"), "reply = {reply:?}");
            assert!(reply.ends_with("pong"));
        }
        let m = server.metrics();
        assert_eq!(m.responses, 256);
        assert_eq!(m.accepted, 256);
    }
}
