//! The storage backend: a keyspace of per-sensor series.
//!
//! Stands in for the Apache Cassandra cluster DCDB writes to
//! (paper §IV-A). The API surface is exactly what the Collect Agent and
//! the Wintermute Query Engine need: batched inserts keyed by topic,
//! time-range queries, latest-value lookups, and retention eviction.
//!
//! Concurrency model: the topic map is split into [`SHARD_COUNT`]
//! shards, each a `RwLock<HashMap>` selected by topic hash, plus a
//! `Mutex` per series. Concurrent writers to *different* sensors never
//! contend on a series lock, and first-insert map writes only stall the
//! 1-in-[`SHARD_COUNT`] slice of readers that hash to the same shard
//! (the common case: one collect agent thread per pusher stream).

use crate::series::{Series, DEFAULT_PARTITION_NS};
use dcdb_common::batch::ReadingBatch;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked topic-map shards.
pub const SHARD_COUNT: usize = 16;

/// Aggregate counters for footprint reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Total readings currently stored.
    pub readings: usize,
    /// Number of sensors with at least one reading.
    pub sensors: usize,
    /// Total inserts performed (including overwrites).
    pub inserts: u64,
    /// Total range queries served.
    pub queries: u64,
}

type Shard = RwLock<HashMap<Topic, Arc<Mutex<Series>>>>;

/// The embedded time-series store.
pub struct StorageBackend {
    shards: [Shard; SHARD_COUNT],
    hasher: BuildHasherDefault<DefaultHasher>,
    partition_ns: u64,
    inserts: AtomicU64,
    queries: AtomicU64,
}

impl StorageBackend {
    /// Creates a backend with the default (10-minute) partitioning.
    pub fn new() -> Self {
        Self::with_partition_ns(DEFAULT_PARTITION_NS)
    }

    /// Creates a backend with a custom partition duration.
    pub fn with_partition_ns(partition_ns: u64) -> Self {
        StorageBackend {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hasher: BuildHasherDefault::default(),
            partition_ns,
            inserts: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }
    }

    fn shard(&self, topic: &Topic) -> &Shard {
        &self.shards[self.hasher.hash_one(topic) as usize % SHARD_COUNT]
    }

    fn series_for(&self, topic: &Topic) -> Arc<Mutex<Series>> {
        let shard = self.shard(topic);
        if let Some(s) = shard.read().get(topic) {
            return Arc::clone(s);
        }
        let mut map = shard.write();
        Arc::clone(
            map.entry(topic.clone())
                .or_insert_with(|| Arc::new(Mutex::new(Series::new(self.partition_ns)))),
        )
    }

    /// Inserts one reading for `topic`.
    pub fn insert(&self, topic: &Topic, r: SensorReading) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.series_for(topic).lock().insert(r);
    }

    /// Inserts a batch of readings for `topic` under one series lock.
    pub fn insert_batch(&self, topic: &Topic, readings: &[SensorReading]) {
        self.inserts
            .fetch_add(readings.len() as u64, Ordering::Relaxed);
        self.series_for(topic).lock().insert_batch(readings);
    }

    /// Inserts a columnar batch for `topic` under one series lock,
    /// without re-interleaving the columns into rows first.
    pub fn insert_columns(&self, topic: &Topic, batch: &ReadingBatch) {
        self.inserts
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.series_for(topic).lock().insert_columns(batch);
    }

    /// Range query: readings of `topic` with `t0 <= ts <= t1`.
    /// Returns an empty vector for unknown sensors.
    pub fn query(&self, topic: &Topic, t0: Timestamp, t1: Timestamp) -> Vec<SensorReading> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        match self.shard(topic).read().get(topic) {
            Some(s) => s.lock().query(t0, t1),
            None => Vec::new(),
        }
    }

    /// The most recent reading of `topic`.
    pub fn latest(&self, topic: &Topic) -> Option<SensorReading> {
        self.shard(topic)
            .read()
            .get(topic)
            .and_then(|s| s.lock().latest())
    }

    /// Timestamp of the oldest stored reading of `topic`, without
    /// materializing a range query — used by the aggregate planner to
    /// clamp open-ended ranges to the data extent.
    pub fn oldest_ts(&self, topic: &Topic) -> Option<Timestamp> {
        self.shard(topic)
            .read()
            .get(topic)
            .and_then(|s| s.lock().oldest())
            .map(|r| r.ts)
    }

    /// True if the backend has ever stored data for `topic`.
    pub fn contains(&self, topic: &Topic) -> bool {
        self.shard(topic).read().contains_key(topic)
    }

    /// All topics with stored data, unordered.
    pub fn topics(&self) -> Vec<Topic> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.read().keys().cloned());
        }
        all
    }

    /// Evicts data older than `cutoff` from every series (retention).
    /// Returns the total number of evicted readings. Shards are visited
    /// one at a time so eviction never stalls the whole keyspace.
    pub fn evict_before(&self, cutoff: Timestamp) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let all: Vec<Arc<Mutex<Series>>> = shard.read().values().map(Arc::clone).collect();
            evicted += all
                .iter()
                .map(|s| s.lock().evict_before(cutoff))
                .sum::<usize>();
        }
        evicted
    }

    /// Counter snapshot, aggregated across shards.
    pub fn stats(&self) -> StorageStats {
        let mut readings = 0;
        let mut sensors = 0;
        for shard in &self.shards {
            let map = shard.read();
            for s in map.values() {
                let len = s.lock().len();
                readings += len;
                if len > 0 {
                    sensors += 1;
                }
            }
        }
        StorageStats {
            readings,
            sensors,
            inserts: self.inserts.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }
}

impl crate::StorageEngine for StorageBackend {
    fn insert(&self, topic: &Topic, r: SensorReading) -> dcdb_common::error::Result<()> {
        StorageBackend::insert(self, topic, r);
        Ok(())
    }
    fn insert_batch(
        &self,
        topic: &Topic,
        readings: &[SensorReading],
    ) -> dcdb_common::error::Result<()> {
        StorageBackend::insert_batch(self, topic, readings);
        Ok(())
    }
    fn insert_columns(
        &self,
        topic: &Topic,
        batch: &ReadingBatch,
    ) -> dcdb_common::error::Result<()> {
        StorageBackend::insert_columns(self, topic, batch);
        Ok(())
    }
    fn query(&self, topic: &Topic, t0: Timestamp, t1: Timestamp) -> Vec<SensorReading> {
        StorageBackend::query(self, topic, t0, t1)
    }
    fn latest(&self, topic: &Topic) -> Option<SensorReading> {
        StorageBackend::latest(self, topic)
    }
    fn oldest_ts(&self, topic: &Topic) -> Option<Timestamp> {
        StorageBackend::oldest_ts(self, topic)
    }
    fn contains(&self, topic: &Topic) -> bool {
        StorageBackend::contains(self, topic)
    }
    fn topics(&self) -> Vec<Topic> {
        StorageBackend::topics(self)
    }
    fn evict_before(&self, cutoff: Timestamp) -> usize {
        StorageBackend::evict_before(self, cutoff)
    }
    fn stats(&self) -> StorageStats {
        StorageBackend::stats(self)
    }
}

impl Default for StorageBackend {
    fn default() -> Self {
        StorageBackend::new()
    }
}

impl std::fmt::Debug for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("StorageBackend")
            .field("sensors", &s.sensors)
            .field("readings", &s.readings)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }
    fn r(v: i64, s: u64) -> SensorReading {
        SensorReading::new(v, Timestamp::from_secs(s))
    }

    #[test]
    fn insert_query_per_topic() {
        let db = StorageBackend::new();
        db.insert(&t("/n1/power"), r(100, 1));
        db.insert(&t("/n1/power"), r(110, 2));
        db.insert(&t("/n2/power"), r(200, 1));
        let q = db.query(&t("/n1/power"), Timestamp::ZERO, Timestamp::from_secs(10));
        assert_eq!(q.len(), 2);
        assert_eq!(q[1].value, 110);
        assert_eq!(db.latest(&t("/n2/power")).unwrap().value, 200);
        assert!(db
            .query(&t("/nope/x"), Timestamp::ZERO, Timestamp::MAX)
            .is_empty());
    }

    #[test]
    fn batch_insert() {
        let db = StorageBackend::new();
        let batch: Vec<SensorReading> = (0..100).map(|i| r(i, i as u64)).collect();
        db.insert_batch(&t("/n/s"), &batch);
        let s = db.stats();
        assert_eq!(s.readings, 100);
        assert_eq!(s.sensors, 1);
        assert_eq!(s.inserts, 100);
    }

    #[test]
    fn eviction_across_sensors() {
        let db = StorageBackend::with_partition_ns(10 * 1_000_000_000);
        for n in 0..4 {
            let topic = t(&format!("/n{n}/s"));
            for i in 0..40u64 {
                db.insert(&topic, r(i as i64, i));
            }
        }
        let evicted = db.evict_before(Timestamp::from_secs(20));
        assert_eq!(evicted, 4 * 20);
        assert_eq!(db.stats().readings, 4 * 20);
    }

    #[test]
    fn concurrent_writers_distinct_sensors() {
        let db = Arc::new(StorageBackend::new());
        let mut handles = vec![];
        for n in 0..8 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let topic = t(&format!("/n{n}/s"));
                for i in 0..1000u64 {
                    db.insert(&topic, r(i as i64, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = db.stats();
        assert_eq!(s.readings, 8000);
        assert_eq!(s.sensors, 8);
    }

    #[test]
    fn concurrent_same_sensor_is_consistent() {
        let db = Arc::new(StorageBackend::new());
        let topic = t("/shared/s");
        let mut handles = vec![];
        for part in 0..4u64 {
            let db = Arc::clone(&db);
            let topic = topic.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    db.insert(&topic, r(0, part * 10_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.stats().readings, 2000);
        let q = db.query(&topic, Timestamp::ZERO, Timestamp::MAX);
        assert!(q.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn topics_spread_across_shards() {
        let db = StorageBackend::new();
        for n in 0..200 {
            db.insert(&t(&format!("/rack{}/node{n}/power", n % 8)), r(n, 1));
        }
        let populated = db.shards.iter().filter(|s| !s.read().is_empty()).count();
        // 200 hashed topics should land in (nearly) every one of the 16
        // shards; require a clear majority to keep the test robust.
        assert!(populated > SHARD_COUNT / 2, "only {populated} shards used");
        assert_eq!(db.stats().sensors, 200);
        assert_eq!(db.topics().len(), 200);
    }

    #[test]
    fn trait_object_round_trip() {
        use crate::StorageEngine;
        let db: Arc<dyn StorageEngine> = Arc::new(StorageBackend::new());
        db.insert(&t("/n/s"), r(5, 9)).unwrap();
        db.insert_batch(&t("/n/s"), &[r(6, 10), r(7, 11)]).unwrap();
        assert_eq!(db.latest(&t("/n/s")).unwrap().value, 7);
        assert_eq!(
            db.query(&t("/n/s"), Timestamp::ZERO, Timestamp::MAX).len(),
            3
        );
        assert!(db.contains(&t("/n/s")));
        assert_eq!(db.stats().readings, 3);
        db.flush().unwrap();
        db.maintain(Timestamp::MAX).unwrap();
        assert_eq!(db.evict_before(Timestamp::MAX), 3);
    }

    #[test]
    fn topics_lists_known_sensors() {
        let db = StorageBackend::new();
        db.insert(&t("/a/x"), r(1, 1));
        db.insert(&t("/b/y"), r(1, 1));
        let mut topics: Vec<String> = db.topics().iter().map(|t| t.as_str().to_string()).collect();
        topics.sort();
        assert_eq!(topics, vec!["/a/x", "/b/y"]);
        assert!(db.contains(&t("/a/x")));
        assert!(!db.contains(&t("/c/z")));
    }
}
