//! Cluster topology: the component hierarchy behind the sensor tree.
//!
//! The paper's experiments run on CooLMUC-3: 148 compute nodes with 64
//! Xeon Phi cores each (§VI). The simulator reproduces that scale and
//! hands every component a slash-separated topic path, which is exactly
//! what the Wintermute sensor tree is built from (§III-A).

use dcdb_common::topic::Topic;
use serde::{Deserialize, Serialize};

/// Shape of a simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of racks.
    pub racks: usize,
    /// Compute nodes per rack.
    pub nodes_per_rack: usize,
    /// Nodes in the whole system (allows a ragged last rack, like the
    /// 148-node CooLMUC-3).
    pub total_nodes: usize,
    /// CPU cores per node.
    pub cores_per_node: usize,
    /// Machine islands (facility power/cooling domains). Racks split
    /// evenly across islands; with more than one island every topic
    /// gains an `/islandN` prefix, so island-scale facility events
    /// (power caps, cooling loss, rolling restarts) map to one topic
    /// subtree. `1` (the default, and what deserializing older configs
    /// yields) keeps the original single-island layout and paths.
    #[serde(default = "default_islands")]
    pub islands: usize,
}

fn default_islands() -> usize {
    1
}

impl Topology {
    /// A small topology for tests and examples.
    pub fn small() -> Topology {
        Topology {
            racks: 2,
            nodes_per_rack: 4,
            total_nodes: 8,
            cores_per_node: 4,
            islands: 1,
        }
    }

    /// The CooLMUC-3 production system: 148 nodes × 64 cores, laid out
    /// here as 4 racks of 37.
    pub fn coolmuc3() -> Topology {
        Topology {
            racks: 4,
            nodes_per_rack: 37,
            total_nodes: 148,
            cores_per_node: 64,
            islands: 1,
        }
    }

    /// A topology sized for a federated deployment of `agents` Collect
    /// Agents (clamped to 4–16, the range the federation scaling and
    /// failover-resilience benches and the CI smokes drive): one rack
    /// per agent, sixteen nodes per rack.
    /// With the federation's default shard key (`/rackNN/nodeNN`, depth
    /// 2) that yields sixteen times as many shard keys as agents — fine
    /// enough granularity for the consistent-hash ring to spread load
    /// evenly (the slowest shard bounds federated ingest) while keeping
    /// each node's sensors colocated on one agent.
    pub fn federated(agents: usize) -> Topology {
        let islands = agents.clamp(4, 16);
        Topology::new(islands, 16, 8)
    }

    /// A custom topology.
    pub fn new(racks: usize, nodes_per_rack: usize, cores_per_node: usize) -> Topology {
        assert!(racks > 0 && nodes_per_rack > 0 && cores_per_node > 0);
        Topology {
            racks,
            nodes_per_rack,
            total_nodes: racks * nodes_per_rack,
            cores_per_node,
            islands: 1,
        }
    }

    /// A production-scale multi-island machine for the deterministic
    /// simulation harness: 3 islands × 32 racks × 16 nodes = 1536 nodes
    /// (an SuperMUC-NG-style island layout an order of magnitude past
    /// the paper's 148-node CooLMUC-3 testbed).
    pub fn multi_island() -> Topology {
        Topology::new(96, 16, 8).with_islands(3)
    }

    /// Splits the racks across `islands` facility domains (racks must
    /// divide evenly). With more than one island every component path
    /// gains an `/islandN` prefix.
    pub fn with_islands(mut self, islands: usize) -> Topology {
        assert!(islands > 0, "at least one island");
        assert!(
            self.racks.is_multiple_of(islands),
            "racks ({}) must divide evenly across islands ({islands})",
            self.racks
        );
        self.islands = islands;
        self
    }

    /// Racks per island.
    pub fn racks_per_island(&self) -> usize {
        self.racks / self.islands
    }

    /// The island a rack belongs to.
    pub fn island_of_rack(&self, rack: usize) -> usize {
        rack / self.racks_per_island()
    }

    /// The island a node belongs to.
    pub fn island_of_node(&self, node: usize) -> usize {
        self.island_of_rack(self.locate(node).0)
    }

    /// The topic prefix of an island, e.g. `/island1` — the subtree a
    /// facility event (power cap, cooling loss) cuts or throttles.
    /// Panics on a single-island topology, which has no island prefix.
    pub fn island_topic(&self, island: usize) -> Topic {
        assert!(self.islands > 1, "single-island topology has no prefix");
        assert!(island < self.islands, "island {island} out of range");
        Topic::parse(&format!("/island{island}")).expect("valid path")
    }

    /// Global node indices belonging to `island`.
    pub fn island_nodes(&self, island: usize) -> impl Iterator<Item = usize> {
        assert!(island < self.islands, "island {island} out of range");
        let per_island = self.total_nodes / self.islands;
        let start = island * per_island;
        let end = if island + 1 == self.islands {
            self.total_nodes
        } else {
            start + per_island
        };
        start..end
    }

    /// Global index -> (rack, node-in-rack).
    pub fn locate(&self, node: usize) -> (usize, usize) {
        (node / self.nodes_per_rack, node % self.nodes_per_rack)
    }

    /// The component path of a compute node: `/rack02/node05`, or
    /// `/island0/rack02/node05` on a multi-island topology.
    pub fn node_topic(&self, node: usize) -> Topic {
        assert!(node < self.total_nodes, "node {node} out of range");
        let (rack, slot) = self.locate(node);
        let path = if self.islands > 1 {
            format!(
                "/island{}/rack{rack:02}/node{slot:02}",
                self.island_of_rack(rack)
            )
        } else {
            format!("/rack{rack:02}/node{slot:02}")
        };
        Topic::parse(&path).expect("valid path")
    }

    /// The component path of a core, e.g. `/rack02/node05/cpu17`.
    pub fn core_topic(&self, node: usize, core: usize) -> Topic {
        assert!(core < self.cores_per_node, "core {core} out of range");
        self.node_topic(node)
            .child(&format!("cpu{core:02}"))
            .expect("valid path")
    }

    /// The component path of a rack: `/rack01`, or `/island0/rack01` on
    /// a multi-island topology.
    pub fn rack_topic(&self, rack: usize) -> Topic {
        assert!(rack < self.racks, "rack {rack} out of range");
        let path = if self.islands > 1 {
            format!("/island{}/rack{rack:02}", self.island_of_rack(rack))
        } else {
            format!("/rack{rack:02}")
        };
        Topic::parse(&path).expect("valid path")
    }

    /// Iterates all node indices.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.total_nodes
    }

    /// Total core count across the system.
    pub fn total_cores(&self) -> usize {
        self.total_nodes * self.cores_per_node
    }

    /// Every sensor topic a node's Pusher publishes: node-level sensors
    /// plus per-core counters. This is the ground truth the monitoring
    /// plugins register against.
    pub fn node_sensor_topics(&self, node: usize) -> Vec<Topic> {
        let node_topic = self.node_topic(node);
        let mut out = Vec::with_capacity(6 + self.cores_per_node * NODE_CORE_SENSORS.len());
        for s in NODE_LEVEL_SENSORS.iter().chain(NODE_OPA_SENSORS) {
            out.push(node_topic.child(s).expect("valid sensor"));
        }
        for core in 0..self.cores_per_node {
            let core_topic = self.core_topic(node, core);
            for s in NODE_CORE_SENSORS {
                out.push(core_topic.child(s).expect("valid sensor"));
            }
        }
        out
    }
}

/// Node-level sensor names (power supply, thermal, memory, idle time).
pub const NODE_LEVEL_SENSORS: &[&str] = &["power", "temp", "memfree", "cpu-idle"];

/// Omni-Path interconnect counters (the OPA plugin's sensor set).
pub const NODE_OPA_SENSORS: &[&str] = &["opa-xmit-bytes", "opa-rcv-bytes"];

/// Per-core performance-counter names (the perfevent plugin's set).
pub const NODE_CORE_SENSORS: &[&str] = &["cycles", "instructions", "cache-misses", "flops"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coolmuc3_scale() {
        let t = Topology::coolmuc3();
        assert_eq!(t.total_nodes, 148);
        assert_eq!(t.cores_per_node, 64);
        assert_eq!(t.total_cores(), 148 * 64);
        assert_eq!(t.nodes().count(), 148);
    }

    #[test]
    fn locate_is_consistent_with_topics() {
        let t = Topology::coolmuc3();
        assert_eq!(t.locate(0), (0, 0));
        assert_eq!(t.locate(36), (0, 36));
        assert_eq!(t.locate(37), (1, 0));
        assert_eq!(t.locate(147), (3, 36));
        assert_eq!(t.node_topic(147).as_str(), "/rack03/node36");
        assert_eq!(t.core_topic(0, 63).as_str(), "/rack00/node00/cpu63");
        assert_eq!(t.rack_topic(2).as_str(), "/rack02");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_bounds_checked() {
        Topology::coolmuc3().node_topic(148);
    }

    #[test]
    fn sensor_topics_cover_node_and_cores() {
        let t = Topology::small();
        let topics = t.node_sensor_topics(3);
        assert_eq!(topics.len(), 6 + 4 * 4);
        assert!(topics
            .iter()
            .any(|x| x.as_str() == "/rack00/node03/opa-xmit-bytes"));
        assert!(topics.iter().any(|x| x.as_str() == "/rack00/node03/power"));
        assert!(topics
            .iter()
            .any(|x| x.as_str() == "/rack00/node03/cpu02/cache-misses"));
        // All topics are unique.
        let mut dedup = topics.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), topics.len());
    }

    #[test]
    fn federated_topology_scales_with_the_agent_count() {
        for agents in 4..=16 {
            let t = Topology::federated(agents);
            assert_eq!(t.racks, agents);
            // Plenty of shard keys (nodes) per agent so the hash ring
            // spreads load evenly.
            assert!(t.total_nodes >= 16 * agents);
        }
        // Clamped at both ends.
        assert_eq!(Topology::federated(1).racks, 4);
        assert_eq!(Topology::federated(64).racks, 16);
    }

    #[test]
    fn custom_topology() {
        let t = Topology::new(3, 5, 2);
        assert_eq!(t.total_nodes, 15);
        assert_eq!(t.node_topic(14).as_str(), "/rack02/node04");
    }

    #[test]
    fn multi_island_reaches_production_scale_with_island_prefixes() {
        let t = Topology::multi_island();
        assert!(t.total_nodes >= 1500, "{} nodes", t.total_nodes);
        assert_eq!(t.islands, 3);
        assert_eq!(t.racks_per_island(), 32);
        assert_eq!(t.node_topic(0).as_str(), "/island0/rack00/node00");
        // Node 512 = rack 32 = first rack of island 1.
        assert_eq!(t.island_of_node(512), 1);
        assert_eq!(t.node_topic(512).as_str(), "/island1/rack32/node00");
        assert_eq!(t.rack_topic(95).as_str(), "/island2/rack95");
        assert_eq!(t.island_topic(2).as_str(), "/island2");
        // Island node partitions cover every node exactly once.
        let mut seen = vec![false; t.total_nodes];
        for island in 0..t.islands {
            for n in t.island_nodes(island) {
                assert!(!seen[n]);
                seen[n] = true;
                assert_eq!(t.island_of_node(n), island);
                // Every sensor topic of the node lives under the
                // island's subtree — facility events cut one prefix.
                assert!(t
                    .node_topic(n)
                    .as_str()
                    .starts_with(t.island_topic(island).as_str()));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_island_topologies_keep_legacy_paths() {
        // islands=1 must not perturb any existing path (golden
        // compatibility for the seed-era tests and benches).
        let t = Topology::coolmuc3();
        assert_eq!(t.islands, 1);
        assert_eq!(t.node_topic(147).as_str(), "/rack03/node36");
        // And older serialized configs (no `islands` field) deserialize.
        let legacy = r#"{"racks":2,"nodes_per_rack":4,"total_nodes":8,"cores_per_node":4}"#;
        let parsed: Topology = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed, Topology::small());
    }
}
