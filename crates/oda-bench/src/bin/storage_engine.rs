//! Durable storage engine throughput: ingest / scan / recovery.
//!
//! ```text
//! cargo run --release -p oda-bench --bin storage_engine            # full run
//! cargo run --release -p oda-bench --bin storage_engine -- --quick # smoke run
//! cargo run --release -p oda-bench --bin storage_engine -- --fsync always
//! ```

use dcdb_storage::FsyncPolicy;
use oda_bench::storage_engine::{run, StorageEngineConfig};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut config = if quick {
        StorageEngineConfig::quick()
    } else {
        StorageEngineConfig::paper()
    };
    if let Some(i) = args.iter().position(|a| a == "--fsync") {
        let policy = args.get(i + 1).map(String::as_str).unwrap_or("batch");
        config.fsync = FsyncPolicy::parse(policy).expect("--fsync must be always|batch|never");
    }

    let mut dir = std::env::temp_dir();
    dir.push(format!("oda-bench-storage-engine-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "storage engine bench: {} sensors x {} readings (batch {}, fsync {:?})\n",
        config.sensors, config.readings_per_sensor, config.batch, config.fsync
    );
    let started = std::time::Instant::now();
    let result = run(&config, &dir);
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "ingest (durable)   : {:>12.0} readings/s",
        result.ingest_per_sec
    );
    println!(
        "ingest (memtable)  : {:>12.0} readings/s  (no WAL, no seals)",
        result.memtable_ingest_per_sec
    );
    println!(
        "scan (sealed)      : {:>12.0} readings/s",
        result.scan_per_sec
    );
    println!(
        "recovery           : {:>12.0} readings/s  ({:.1} ms for {} readings)",
        result.recovery_per_sec, result.recovery_ms, result.readings
    );
    println!(
        "on disk            : {:>12} bytes across {} segments ({} seals), {:.1}x compression",
        result.disk_bytes, result.segments, result.seals, result.compression_ratio
    );

    let meta = BenchMeta::new("storage_engine", None, &config, started);
    let path = write_json_report(&meta, &result).expect("write json");
    println!("\nraw data -> {}", path.display());
}
