//! Property-based tests over the core data structures and invariants,
//! spanning crates:
//!
//! * the sensor cache's absolute views agree with a naive reference;
//! * cache + storage stitching in the Query Engine loses nothing;
//! * the frame codec round-trips arbitrary batches;
//! * MQTT filter matching is consistent between the standalone matcher
//!   and the broker's trie routing;
//! * deciles are monotone and bounded for arbitrary inputs;
//! * topic normalization is idempotent;
//! * unit resolution binds only hierarchically-related, existing
//!   sensors.

use dcdb_wintermute::dcdb_bus::{decode_readings, encode_readings, Broker, TopicFilter};
use dcdb_wintermute::dcdb_common::{SensorCache, SensorReading, Timestamp, Topic};
use dcdb_wintermute::dcdb_storage::StorageBackend;
use dcdb_wintermute::oda_ml::stats::deciles;
use dcdb_wintermute::wintermute::prelude::*;
use proptest::prelude::*;

/// Strictly increasing timestamps with arbitrary values.
fn reading_sequence(max_len: usize) -> impl Strategy<Value = Vec<SensorReading>> {
    prop::collection::vec((any::<i64>(), 1u64..1000), 0..max_len).prop_map(|pairs| {
        let mut ts = 0u64;
        pairs
            .into_iter()
            .map(|(v, gap)| {
                ts += gap;
                SensorReading::new(v, Timestamp(ts * 1_000_000))
            })
            .collect()
    })
}

/// Valid topic segments.
fn segment() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,6}".prop_map(|s| s)
}

fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec(segment(), 1..5)
        .prop_map(|segs| Topic::parse(&format!("/{}", segs.join("/"))).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_absolute_view_matches_naive_filter(
        readings in reading_sequence(200),
        cap in 1usize..64,
        lo in 0u64..300_000_000,
        span in 0u64..300_000_000,
    ) {
        let mut cache = SensorCache::new(cap);
        for &r in &readings {
            cache.push(r);
        }
        let t0 = Timestamp(lo);
        let t1 = Timestamp(lo + span);
        let got: Vec<SensorReading> = cache.view_absolute(t0, t1).to_vec();
        // Reference: last `cap` readings, filtered by range.
        let kept: Vec<SensorReading> = readings
            .iter()
            .skip(readings.len().saturating_sub(cap))
            .copied()
            .filter(|r| r.ts >= t0 && r.ts <= t1)
            .collect();
        prop_assert_eq!(got, kept);
    }

    #[test]
    fn query_engine_stitching_is_lossless(
        readings in reading_sequence(300),
        cap in 2usize..32,
    ) {
        prop_assume!(!readings.is_empty());
        let storage = std::sync::Arc::new(StorageBackend::new());
        let qe = QueryEngine::with_storage(cap, storage);
        let topic = Topic::parse("/p/s").unwrap();
        for &r in &readings {
            qe.insert(&topic, r);
        }
        let got = qe.query(
            &topic,
            QueryMode::Absolute { t0: Timestamp::ZERO, t1: Timestamp::MAX },
        );
        // Full history must come back exactly once, in order.
        prop_assert_eq!(got, readings);
    }

    #[test]
    fn frame_codec_round_trips(readings in reading_sequence(100)) {
        let frame = encode_readings(&readings);
        let back = decode_readings(frame).unwrap();
        prop_assert_eq!(back, readings);
    }

    #[test]
    fn broker_routing_agrees_with_filter_matching(
        topic in topic_strategy(),
        filter_segs in prop::collection::vec(
            prop_oneof![segment(), Just("+".to_string())], 1..4),
        multi_tail in any::<bool>(),
    ) {
        let mut fstr = format!("/{}", filter_segs.join("/"));
        if multi_tail {
            fstr.push_str("/#");
        }
        let filter = TopicFilter::parse(&fstr).unwrap();
        let expected = filter.matches(&topic);

        let broker = Broker::new_sync();
        let bus = broker.handle();
        let sub = bus.subscribe(filter);
        bus.publish(topic.clone(), bytes::Bytes::new()).unwrap();
        let delivered = sub.try_recv().unwrap().is_some();
        prop_assert_eq!(delivered, expected, "filter {} topic {}", fstr, topic);
    }

    #[test]
    fn deciles_monotone_and_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let d = deciles(&xs);
        for w in d.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((d[0] - lo).abs() < 1e-9);
        prop_assert!((d[10] - hi).abs() < 1e-9);
    }

    #[test]
    fn topic_parse_is_idempotent(topic in topic_strategy()) {
        let reparsed = Topic::parse(topic.as_str()).unwrap();
        prop_assert_eq!(&reparsed, &topic);
        // Depth equals segment count; name is the last segment.
        prop_assert_eq!(reparsed.depth(), topic.segments().count());
        prop_assert_eq!(reparsed.name(), topic.segments().last().unwrap());
    }

    #[test]
    fn resolution_binds_only_related_existing_sensors(
        racks in 1usize..4,
        nodes in 1usize..5,
    ) {
        let mut topics = Vec::new();
        for r in 0..racks {
            for n in 0..nodes {
                topics.push(Topic::parse(&format!("/r{r}/n{n}/power")).unwrap());
                topics.push(Topic::parse(&format!("/r{r}/n{n}/temp")).unwrap());
            }
        }
        let nav = SensorNavigator::build(topics.iter());
        let template = UnitTemplate::parse(
            &["<bottomup>power", "<bottomup>temp"],
            &["<bottomup>score"],
        ).unwrap();
        let resolution = resolve_units(&template, &nav).unwrap();
        prop_assert_eq!(resolution.units.len(), racks * nodes);
        for unit in &resolution.units {
            prop_assert_eq!(unit.inputs.len(), 2);
            for input in &unit.inputs {
                prop_assert!(nav.has_sensor(input));
                prop_assert!(
                    SensorNavigator::hierarchically_related(
                        &unit.name,
                        &input.parent().unwrap()
                    )
                );
            }
        }
    }

    #[test]
    fn cache_latest_is_max_timestamp(readings in reading_sequence(100)) {
        let mut cache = SensorCache::new(32);
        for &r in &readings {
            cache.push(r);
        }
        if let Some(latest) = cache.latest() {
            prop_assert_eq!(latest.ts, readings.last().unwrap().ts);
        } else {
            prop_assert!(readings.is_empty());
        }
    }
}
