//! `ablate_pattern_resolution` — Unit System resolution cost against
//! sensor-tree size, backing §III's claim that pattern units make
//! large-scale instantiation cheap ("thousands of independent ODA
//! models ... using only a small configuration block"), plus sensor
//! tree construction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcdb_common::topic::Topic;
use std::hint::black_box;
use wintermute::prelude::*;

/// Builds a CooLMUC-3-like topic population: `nodes` compute nodes with
/// 4 node-level sensors and `cores` CPUs × 2 counters each.
fn topics(nodes: usize, cores: usize) -> Vec<Topic> {
    let mut out = Vec::new();
    for n in 0..nodes {
        let rack = n / 37;
        let base = format!("/rack{rack:02}/node{:02}", n % 37);
        for s in ["power", "temp", "memfree", "cpu-idle"] {
            out.push(Topic::parse(&format!("{base}/{s}")).unwrap());
        }
        for c in 0..cores {
            for s in ["cycles", "instructions"] {
                out.push(Topic::parse(&format!("{base}/cpu{c:02}/{s}")).unwrap());
            }
        }
    }
    out
}

fn tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensor_tree_build");
    group.sample_size(20);
    for nodes in [37usize, 148, 592] {
        let t = topics(nodes, 16);
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &t, |b, topics| {
            b.iter(|| black_box(SensorNavigator::build(topics.iter())))
        });
    }
    group.finish();
}

fn ablate_pattern_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_pattern_resolution");
    group.sample_size(20);
    // The paper's per-node health template: per-core inputs + chassis
    // power, one unit per node.
    let template = UnitTemplate::parse(
        &[
            "<bottomup-1>power",
            "<bottomup, filter cpu>cycles",
            "<bottomup, filter cpu>instructions",
        ],
        &["<bottomup-1>healthy"],
    )
    .unwrap();
    for nodes in [37usize, 148, 592] {
        let nav = SensorNavigator::build(topics(nodes, 16).iter());
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nav, |b, nav| {
            b.iter(|| {
                let resolution = resolve_units(black_box(&template), nav).unwrap();
                assert_eq!(resolution.units.len(), nodes);
                black_box(resolution)
            })
        });
    }
    group.finish();
}

fn pattern_parse(c: &mut Criterion) {
    c.bench_function("pattern_expr_parse", |b| {
        b.iter(|| {
            black_box(PatternExpr::parse(black_box(
                "<bottomup, filter ^cpu[0-9]+$>cache-misses",
            )))
        })
    });
}

criterion_group!(
    benches,
    tree_build,
    ablate_pattern_resolution,
    pattern_parse
);
criterion_main!(benches);
