//! Minimal HTTP/1.1 request/response types and codec.
//!
//! Every DCDB component exposes a RESTful control API (paper §IV-A);
//! Wintermute routes its management and on-demand-operator requests
//! through it (paper §V-A). Requests are one-shot (no keep-alive
//! pipelining, no chunked encoding; bodies carry `Content-Length`).
//! Two request decoders are provided: the blocking
//! [`Request::read_from`] for stream-oriented callers, and the
//! incremental [`RequestParser`] used by the non-blocking event-loop
//! server, which accepts bytes as they arrive.

use dcdb_common::error::DcdbError;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Invoke an action / submit data.
    Put,
    /// Invoke an action / submit data (treated like PUT by DCDB).
    Post,
    /// Remove a resource.
    Delete,
}

impl Method {
    /// Parses the method token.
    pub fn parse(s: &str) -> Result<Method, DcdbError> {
        match s {
            "GET" => Ok(Method::Get),
            "PUT" => Ok(Method::Put),
            "POST" => Ok(Method::Post),
            "DELETE" => Ok(Method::Delete),
            other => Err(DcdbError::Parse(format!("unsupported method {other:?}"))),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Put => "PUT",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        })
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path, without the query string.
    pub path: String,
    /// Query parameters in order-independent form.
    pub query: BTreeMap<String, String>,
    /// Header map, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
    /// Path parameters filled in by the router (`:name` segments).
    pub params: BTreeMap<String, String>,
}

impl Request {
    /// Builds a request programmatically (used by in-process dispatch
    /// and tests).
    pub fn new(method: Method, path_and_query: &str) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
            params: BTreeMap::new(),
        }
    }

    /// Builder-style body attachment.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// A query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// A router path parameter by name.
    pub fn path_param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Reads and parses one request from a stream.
    pub fn read_from<R: Read>(stream: R) -> Result<Request, DcdbError> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let target = parts
            .next()
            .ok_or_else(|| DcdbError::Parse("missing request target".into()))?;
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(DcdbError::Parse(format!("bad HTTP version {version:?}")));
        }
        let (path, query) = split_query(target);

        let mut headers = BTreeMap::new();
        loop {
            let mut hline = String::new();
            reader.read_line(&mut hline)?;
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            } else {
                return Err(DcdbError::Parse(format!("malformed header {trimmed:?}")));
            }
        }

        let len = content_length(&headers)?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            params: BTreeMap::new(),
        })
    }
}

/// Largest accepted request body.
const MAX_BODY: usize = 16 * 1024 * 1024;
/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;

fn content_length(headers: &BTreeMap<String, String>) -> Result<usize, DcdbError> {
    let len: usize = headers
        .get("content-length")
        .map(|v| {
            v.parse()
                .map_err(|_| DcdbError::Parse("bad Content-Length".into()))
        })
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(DcdbError::Parse(format!("body too large: {len} bytes")));
    }
    Ok(len)
}

/// Incremental HTTP/1.1 request parser for the non-blocking server.
///
/// Feed whatever bytes the socket yields; the parser buffers partial
/// heads and bodies across calls and returns the request once it is
/// complete. One parser decodes one request (connections are one-shot).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    head: Option<ParsedHead>,
}

#[derive(Debug)]
struct ParsedHead {
    method: Method,
    path: String,
    query: BTreeMap<String, String>,
    headers: BTreeMap<String, String>,
    body_start: usize,
    content_len: usize,
}

impl RequestParser {
    /// A parser with no buffered bytes.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends `bytes` and returns the request if it is now complete,
    /// `Ok(None)` if more bytes are needed, or an error for malformed
    /// or oversized input (the connection should then be closed after
    /// a `400`).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, DcdbError> {
        self.buf.extend_from_slice(bytes);
        if self.head.is_none() {
            let Some((head_len, body_start)) = find_head_end(&self.buf) else {
                if self.buf.len() > MAX_HEAD {
                    return Err(DcdbError::Parse("request head too large".into()));
                }
                return Ok(None);
            };
            self.head = Some(parse_head(&self.buf[..head_len], body_start)?);
        }
        let (body_start, content_len) = {
            let head = self.head.as_ref().expect("head parsed above");
            (head.body_start, head.content_len)
        };
        if self.buf.len() < body_start + content_len {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let body = self.buf[body_start..body_start + content_len].to_vec();
        self.buf.clear();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body,
            params: BTreeMap::new(),
        }))
    }
}

/// Finds the blank line ending the head; returns
/// `(head_len, body_start)`. Accepts both `\r\n\r\n` and bare `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        if buf.get(i + 1) == Some(&b'\n') {
            return Some((i + 1, i + 2));
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some((i + 1, i + 3));
        }
    }
    None
}

fn parse_head(head: &[u8], body_start: usize) -> Result<ParsedHead, DcdbError> {
    let text =
        std::str::from_utf8(head).map_err(|_| DcdbError::Parse("non-UTF-8 request head".into()))?;
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let line = lines.next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let target = parts
        .next()
        .ok_or_else(|| DcdbError::Parse("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(DcdbError::Parse(format!("bad HTTP version {version:?}")));
    }
    let (path, query) = split_query(target);
    let mut headers = BTreeMap::new();
    for hline in lines {
        if hline.is_empty() {
            continue;
        }
        if let Some((k, v)) = hline.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        } else {
            return Err(DcdbError::Parse(format!("malformed header {hline:?}")));
        }
    }
    let content_len = content_length(&headers)?;
    Ok(ParsedHead {
        method,
        path,
        query,
        headers,
        body_start,
        content_len,
    })
}

fn split_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (percent_decode(target), BTreeMap::new()),
        Some((p, q)) => {
            let mut map = BTreeMap::new();
            for pair in q.split('&').filter(|s| !s.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => map.insert(percent_decode(k), percent_decode(v)),
                    None => map.insert(percent_decode(pair), String::new()),
                };
            }
            (percent_decode(p), map)
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// HTTP status codes used by the DCDB control APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200
    Ok,
    /// 201
    Created,
    /// 204
    NoContent,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 409
    Conflict,
    /// 500
    InternalError,
    /// 503
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::NoContent => 204,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::Conflict => 409,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::NoContent => "No Content",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::Conflict => "Conflict",
            Status::InternalError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line code.
    pub status: Status,
    /// Content type header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// 200 with a JSON body.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
        }
    }

    /// An error response with a plain-text message.
    pub fn error(status: Status, msg: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: msg.into().into_bytes(),
        }
    }

    /// 204 without a body.
    pub fn no_content() -> Response {
        Response {
            status: Status::NoContent,
            content_type: String::new(),
            body: Vec::new(),
        }
    }

    /// Changes the status keeping body/type.
    pub fn with_status(mut self, status: Status) -> Response {
        self.status = status;
        self
    }

    /// Body interpreted as UTF-8 (tests / in-process callers).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// Serializes the response to a stream.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        )?;
        if !self.content_type.is_empty() {
            write!(w, "Content-Type: {}\r\n", self.content_type)?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_get() {
        let raw = b"GET /analytics/plugins?detail=full HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::read_from(&raw[..]).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/analytics/plugins");
        assert_eq!(req.query_param("detail"), Some("full"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parse_put_with_body() {
        let raw = b"PUT /analytics/start HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = Request::read_from(&raw[..]).unwrap();
        assert_eq!(req.method, Method::Put);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Request::read_from(&b"NOPE / HTTP/1.1\r\n\r\n"[..]).is_err());
        assert!(Request::read_from(&b"GET /\r\n\r\n"[..]).is_err());
        assert!(Request::read_from(&b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n"[..]).is_err());
        assert!(Request::read_from(&b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn parse_truncated_body_errors() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(Request::read_from(&raw[..]).is_err());
    }

    #[test]
    fn query_decoding() {
        let req = Request::new(Method::Get, "/q?a=1&b=two%20words&flag&c=x+y");
        assert_eq!(req.query_param("a"), Some("1"));
        assert_eq!(req.query_param("b"), Some("two words"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("c"), Some("x y"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("%2Fpath"), "/path");
        assert_eq!(percent_decode("a%"), "a%");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zz"), "a%zz");
    }

    #[test]
    fn incremental_parse_byte_at_a_time() {
        let raw = b"PUT /echo?x=1 HTTP/1.1\r\nHost: dcdb\r\nContent-Length: 5\r\n\r\nhello";
        let mut parser = RequestParser::new();
        for &b in &raw[..raw.len() - 1] {
            assert!(parser.feed(&[b]).unwrap().is_none());
        }
        let req = parser.feed(&raw[raw.len() - 1..]).unwrap().unwrap();
        assert_eq!(req.method, Method::Put);
        assert_eq!(req.path, "/echo");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("dcdb"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incremental_parse_single_feed_and_bare_lf() {
        let mut parser = RequestParser::new();
        let req = parser
            .feed(b"GET /ping HTTP/1.1\n\n")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/ping");
        assert!(req.body.is_empty());
    }

    #[test]
    fn incremental_parse_split_across_head_and_body() {
        let mut parser = RequestParser::new();
        assert!(parser
            .feed(b"POST /x HTTP/1.1\r\nContent-Length: 6\r\n\r\nab")
            .unwrap()
            .is_none());
        let req = parser.feed(b"cdef").unwrap().expect("complete");
        assert_eq!(req.body, b"abcdef");
    }

    #[test]
    fn incremental_parse_rejects_malformed_input() {
        assert!(RequestParser::new()
            .feed(b"NOPE / HTTP/1.1\r\n\r\n")
            .is_err());
        assert!(RequestParser::new().feed(b"GET /\r\n\r\n").is_err());
        assert!(RequestParser::new()
            .feed(b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n")
            .is_err());
        assert!(RequestParser::new()
            .feed(b"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n")
            .is_err());
    }

    #[test]
    fn incremental_parse_bounds_head_size() {
        let mut parser = RequestParser::new();
        let chunk = vec![b'a'; 16 * 1024];
        assert!(parser.feed(b"GET / HTTP/1.1\r\nX: ").unwrap().is_none());
        let mut result = Ok(None);
        for _ in 0..8 {
            result = parser.feed(&chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(result.is_err(), "oversized head must be rejected");
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json("{\"ok\":true}");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Type: application/json"));
        assert!(s.contains("Content-Length: 11"));
        assert!(s.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn response_constructors() {
        assert_eq!(Response::no_content().status.code(), 204);
        assert_eq!(Response::error(Status::NotFound, "x").status.code(), 404);
        assert_eq!(
            Response::text("t")
                .with_status(Status::Created)
                .status
                .code(),
            201
        );
        assert_eq!(Status::InternalError.reason(), "Internal Server Error");
    }
}
