//! A small regular-expression engine for Unit System filters.
//!
//! Pattern expressions in Wintermute configurations carry a `filter`
//! clause that restricts, by name, which sensor-tree nodes a pattern
//! matches (paper §III-B, "horizontal navigation"). DCDB uses full
//! regular expressions there; this module implements the subset that
//! covers every filter in the paper and the DCDB documentation, from
//! scratch, with guaranteed linear-time matching:
//!
//! * literals, `.`
//! * postfix `*`, `+`, `?`
//! * character classes `[abc]`, ranges `[a-z0-9]`, negation `[^...]`
//! * alternation `|` and grouping `(...)`
//! * anchors `^` and `$`
//! * escapes `\.` `\*` etc., plus `\d`, `\w`, `\s` shorthands
//!
//! The implementation is a classic Thompson construction: the pattern is
//! parsed into an AST, compiled to an NFA, and matched by breadth-first
//! simulation (no backtracking, so pathological patterns cannot blow up
//! an operator's sampling interval).
//!
//! Matching is *unanchored* (`is_match` finds the pattern anywhere)
//! unless anchors are used, mirroring common regex library behaviour.

use crate::error::DcdbError;
use std::fmt;

/// A parsed, compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Vec<Inst>,
    start: usize,
}

/// AST of the pattern language.
#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Char(char),
    AnyChar,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Optional(Box<Ast>),
    AnchorStart,
    AnchorEnd,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClassItem {
    Single(char),
    Range(char, char),
}

/// NFA instruction set (Thompson VM).
#[derive(Debug, Clone)]
enum Inst {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Split(usize, usize),
    Jmp(usize),
    AssertStart,
    AssertEnd,
    Match,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn err(&self, msg: &str) -> DcdbError {
        DcdbError::Parse(format!("regex {:?}: {msg}", self.pattern))
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternate(&mut self) -> Result<Ast, DcdbError> {
        let mut branches = vec![self.parse_concat()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, DcdbError> {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().unwrap()),
            _ => Ok(Ast::Concat(items)),
        }
    }

    /// repeat := atom ('*' | '+' | '?')*
    fn parse_repeat(&mut self) -> Result<Ast, DcdbError> {
        let mut node = self.parse_atom()?;
        while let Some(&c) = self.chars.peek() {
            match c {
                '*' | '+' | '?' => {
                    if matches!(node, Ast::AnchorStart | Ast::AnchorEnd) {
                        return Err(self.err("quantifier applied to anchor"));
                    }
                    self.chars.next();
                    node = match c {
                        '*' => Ast::Star(Box::new(node)),
                        '+' => Ast::Plus(Box::new(node)),
                        _ => Ast::Optional(Box::new(node)),
                    };
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Ast, DcdbError> {
        let c = self
            .chars
            .next()
            .ok_or_else(|| self.err("unexpected end"))?;
        match c {
            '(' => {
                let inner = self.parse_alternate()?;
                if self.chars.next() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            '[' => self.parse_class(),
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::AnchorStart),
            '$' => Ok(Ast::AnchorEnd),
            '\\' => {
                let e = self
                    .chars
                    .next()
                    .ok_or_else(|| self.err("dangling escape"))?;
                Ok(match e {
                    'd' => Ast::Class {
                        negated: false,
                        items: vec![ClassItem::Range('0', '9')],
                    },
                    'w' => Ast::Class {
                        negated: false,
                        items: vec![
                            ClassItem::Range('a', 'z'),
                            ClassItem::Range('A', 'Z'),
                            ClassItem::Range('0', '9'),
                            ClassItem::Single('_'),
                        ],
                    },
                    's' => Ast::Class {
                        negated: false,
                        items: vec![
                            ClassItem::Single(' '),
                            ClassItem::Single('\t'),
                            ClassItem::Single('\n'),
                            ClassItem::Single('\r'),
                        ],
                    },
                    other => Ast::Char(other),
                })
            }
            '*' | '+' | '?' => Err(self.err("quantifier with nothing to repeat")),
            ')' => Err(self.err("unmatched ')'")),
            other => Ok(Ast::Char(other)),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, DcdbError> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            negated = true;
            self.chars.next();
        }
        let mut items = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') if !items.is_empty() || negated => break,
                Some(']') => ']', // literal ']' as the first item
                Some('\\') => self
                    .chars
                    .next()
                    .ok_or_else(|| self.err("dangling escape in class"))?,
                Some(c) => c,
                None => return Err(self.err("unclosed character class")),
            };
            if self.chars.peek() == Some(&'-') {
                // Lookahead: range only if a non-']' follows the '-'.
                self.chars.next();
                match self.chars.peek() {
                    Some(&']') | None => {
                        items.push(ClassItem::Single(c));
                        items.push(ClassItem::Single('-'));
                    }
                    Some(&hi) => {
                        self.chars.next();
                        if hi < c {
                            return Err(self.err("invalid class range"));
                        }
                        items.push(ClassItem::Range(c, hi));
                    }
                }
            } else {
                items.push(ClassItem::Single(c));
            }
        }
        Ok(Ast::Class { negated, items })
    }
}

/// Compiles an AST into NFA instructions appended to `prog`.
fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::AnyChar => prog.push(Inst::Any),
        Ast::Class { negated, items } => prog.push(Inst::Class {
            negated: *negated,
            items: items.clone(),
        }),
        Ast::AnchorStart => prog.push(Inst::AssertStart),
        Ast::AnchorEnd => prog.push(Inst::AssertEnd),
        Ast::Concat(items) => {
            for item in items {
                compile(item, prog);
            }
        }
        Ast::Alternate(branches) => {
            // Chain of splits; each branch jumps to the common end.
            let mut jmp_slots = Vec::new();
            let n = branches.len();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < n {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0)); // patched below
                    let b_start = prog.len();
                    compile(b, prog);
                    jmp_slots.push(prog.len());
                    prog.push(Inst::Jmp(0)); // patched below
                    let next_branch = prog.len();
                    prog[split_at] = Inst::Split(b_start, next_branch);
                } else {
                    compile(b, prog);
                }
            }
            let end = prog.len();
            for slot in jmp_slots {
                prog[slot] = Inst::Jmp(end);
            }
        }
        Ast::Star(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            let body = prog.len();
            compile(inner, prog);
            prog.push(Inst::Jmp(split_at));
            let end = prog.len();
            prog[split_at] = Inst::Split(body, end);
        }
        Ast::Plus(inner) => {
            let body = prog.len();
            compile(inner, prog);
            let split_at = prog.len();
            prog.push(Inst::Split(body, 0));
            let end = prog.len();
            prog[split_at] = Inst::Split(body, end);
        }
        Ast::Optional(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            let body = prog.len();
            compile(inner, prog);
            let end = prog.len();
            prog[split_at] = Inst::Split(body, end);
        }
    }
}

fn class_matches(negated: bool, items: &[ClassItem], c: char) -> bool {
    let hit = items.iter().any(|it| match *it {
        ClassItem::Single(s) => s == c,
        ClassItem::Range(lo, hi) => (lo..=hi).contains(&c),
    });
    hit != negated
}

impl Regex {
    /// Parses and compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, DcdbError> {
        let mut parser = Parser::new(pattern);
        let ast = parser.parse_alternate()?;
        if parser.chars.next().is_some() {
            return Err(DcdbError::Parse(format!(
                "regex {pattern:?}: trailing characters (unmatched ')'?)"
            )));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
            start: 0,
        })
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if the pattern matches anywhere in `text` (unanchored unless
    /// the pattern itself uses `^`/`$`).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        for start_pos in 0..=chars.len() {
            if self.match_from(&chars, start_pos) {
                return true;
            }
            // An initial `^` can only match at position 0; skip the scan.
            if matches!(self.prog.first(), Some(Inst::AssertStart)) {
                break;
            }
        }
        false
    }

    /// True if the pattern matches the *entire* input, regardless of
    /// anchors. This is the semantics Unit System filters use when a
    /// filter is declared `exact`.
    pub fn is_full_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        self.match_exact(&chars)
    }

    /// BFS simulation from a fixed starting offset; accepts as soon as
    /// `Match` is reached (prefix match).
    fn match_from(&self, chars: &[char], start_pos: usize) -> bool {
        let mut current = SparseSet::new(self.prog.len());
        let mut next = SparseSet::new(self.prog.len());
        self.add_thread(&mut current, self.start, chars, start_pos);
        let mut pos = start_pos;
        loop {
            if current
                .iter()
                .any(|pc| matches!(self.prog[pc], Inst::Match))
            {
                return true;
            }
            if pos >= chars.len() || current.is_empty() {
                return false;
            }
            let c = chars[pos];
            next.clear();
            for pc in current.iter() {
                let advance = match &self.prog[pc] {
                    Inst::Char(x) => *x == c,
                    Inst::Any => true,
                    Inst::Class { negated, items } => class_matches(*negated, items, c),
                    _ => false,
                };
                if advance {
                    self.add_thread(&mut next, pc + 1, chars, pos + 1);
                }
            }
            std::mem::swap(&mut current, &mut next);
            pos += 1;
        }
    }

    /// Simulation accepting only if `Match` is reached exactly at the end
    /// of the input.
    fn match_exact(&self, chars: &[char]) -> bool {
        let mut current = SparseSet::new(self.prog.len());
        let mut next = SparseSet::new(self.prog.len());
        self.add_thread(&mut current, self.start, chars, 0);
        for pos in 0..chars.len() {
            if current.is_empty() {
                return false;
            }
            let c = chars[pos];
            next.clear();
            for pc in current.iter() {
                let advance = match &self.prog[pc] {
                    Inst::Char(x) => *x == c,
                    Inst::Any => true,
                    Inst::Class { negated, items } => class_matches(*negated, items, c),
                    _ => false,
                };
                if advance {
                    self.add_thread(&mut next, pc + 1, chars, pos + 1);
                }
            }
            std::mem::swap(&mut current, &mut next);
        }
        let matched = current
            .iter()
            .any(|pc| matches!(self.prog[pc], Inst::Match));
        matched
    }

    /// Follows epsilon transitions (splits, jumps, satisfied anchors).
    fn add_thread(&self, set: &mut SparseSet, pc: usize, chars: &[char], pos: usize) {
        // Every pc is marked visited, including epsilon instructions:
        // patterns like `(a*)*` produce epsilon cycles that would
        // otherwise recurse forever.
        if set.contains(pc) {
            return;
        }
        set.insert(pc);
        match &self.prog[pc] {
            Inst::Jmp(t) => self.add_thread(set, *t, chars, pos),
            Inst::Split(a, b) => {
                self.add_thread(set, *a, chars, pos);
                self.add_thread(set, *b, chars, pos);
            }
            Inst::AssertStart if pos == 0 => {
                self.add_thread(set, pc + 1, chars, pos);
            }
            Inst::AssertEnd if pos == chars.len() => {
                self.add_thread(set, pc + 1, chars, pos);
            }
            _ => {}
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

/// Sparse integer set for NFA thread lists: O(1) insert/contains/clear.
struct SparseSet {
    dense: Vec<usize>,
    sparse: Vec<usize>,
}

impl SparseSet {
    fn new(universe: usize) -> Self {
        SparseSet {
            dense: Vec::with_capacity(universe),
            sparse: vec![usize::MAX; universe],
        }
    }
    fn insert(&mut self, v: usize) {
        if !self.contains(v) {
            self.sparse[v] = self.dense.len();
            self.dense.push(v);
        }
    }
    fn contains(&self, v: usize) -> bool {
        self.sparse
            .get(v)
            .map(|&i| i < self.dense.len() && self.dense[i] == v)
            .unwrap_or(false)
    }
    fn clear(&mut self) {
        self.dense.clear();
    }
    fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.dense.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
    }

    #[test]
    fn literal_substring_semantics() {
        let r = re("cpu");
        assert!(r.is_match("cpu"));
        assert!(r.is_match("cpu0"));
        assert!(r.is_match("xcpu7"));
        assert!(!r.is_match("cp"));
        assert!(!r.is_match(""));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(re("c.u").is_match("cpu"));
        assert!(re("c.u").is_match("ccu"));
        assert!(!re("c.u").is_match("cu"));
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbc"));
        assert!(re("ab+c").is_match("abc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
    }

    #[test]
    fn classes_and_ranges() {
        let r = re("cpu[0-9]+");
        assert!(r.is_match("cpu0"));
        assert!(r.is_match("cpu63"));
        assert!(!r.is_match("cpux"));
        let neg = re("[^0-9]+");
        assert!(neg.is_match("abc"));
        assert!(!neg.is_match("123"));
        let multi = re("[a-cx-z]");
        assert!(multi.is_match("b"));
        assert!(multi.is_match("y"));
        assert!(!multi.is_match("m"));
    }

    #[test]
    fn class_edge_cases() {
        // ']' as the first item is a literal.
        assert!(re("[]]").is_match("]"));
        // trailing '-' is a literal.
        assert!(re("[a-]").is_match("-"));
        assert!(re("[a-]").is_match("a"));
        // escape inside class.
        assert!(re(r"[\]]").is_match("]"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("power|temp");
        assert!(r.is_match("power"));
        assert!(r.is_match("temperature"));
        assert!(!r.is_match("energy"));
        let g = re("s(0[12]|99)");
        assert!(g.is_match("s01"));
        assert!(g.is_match("s02"));
        assert!(g.is_match("s99"));
        assert!(!g.is_match("s03"));
        let three = re("a|b|c");
        assert!(three.is_match("xbz"));
        assert!(!three.is_match("xyz"));
    }

    #[test]
    fn anchors() {
        let r = re("^cpu$");
        assert!(r.is_match("cpu"));
        assert!(!r.is_match("cpu0"));
        assert!(!r.is_match("xcpu"));
        let s = re("^rack");
        assert!(s.is_match("rack4"));
        assert!(!s.is_match("arack"));
        let e = re("power$");
        assert!(e.is_match("node-power"));
        assert!(!e.is_match("powerx"));
    }

    #[test]
    fn escapes_and_shorthands() {
        assert!(re(r"\d+").is_match("node42"));
        assert!(!re(r"^\d+$").is_match("node42"));
        assert!(re(r"^\w+$").is_match("cache_misses"));
        assert!(!re(r"^\w+$").is_match("a b"));
        assert!(re(r"\s").is_match("a b"));
        assert!(re(r"a\.b").is_match("a.b"));
        assert!(!re(r"a\.b").is_match("axb"));
        assert!(re(r"a\*").is_match("a*"));
    }

    #[test]
    fn full_match_semantics() {
        let r = re("cpu[0-9]");
        assert!(r.is_full_match("cpu5"));
        assert!(!r.is_full_match("cpu55"));
        assert!(!r.is_full_match("xcpu5"));
        assert!(re("").is_full_match(""));
        assert!(!re("a").is_full_match(""));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let r = re("");
        assert!(r.is_match(""));
        assert!(r.is_match("anything"));
    }

    #[test]
    fn parse_errors() {
        for bad in ["*a", "+", "?x", "(ab", "a)", "[abc", "a\\", "[z-a]"] {
            assert!(Regex::new(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn nested_quantifiers_terminate() {
        // (a*)* style patterns are catastrophic for backtrackers; the
        // Thompson simulation must stay linear.
        let r = re("(a*)*b");
        let input = "a".repeat(2000);
        assert!(!r.is_match(&input));
        assert!(r.is_match(&format!("{input}b")));
    }

    #[test]
    fn unicode_input() {
        let r = re("^näme$");
        assert!(r.is_match("näme"));
        assert!(re(".").is_match("ü"));
    }

    #[test]
    fn paper_filter_examples() {
        // §III-C: `filter cpu` keeps cpu0, cpu1 at the bottom level.
        let f = re("cpu");
        assert!(f.is_match("cpu0"));
        assert!(f.is_match("cpu1"));
        assert!(!f.is_match("gpu0"));
        // A rack filter selecting rows r00-r03.
        let rack = re("^r0[0-3]$");
        assert!(rack.is_match("r02"));
        assert!(!rack.is_match("r04"));
    }
}
