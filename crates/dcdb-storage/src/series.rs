//! A single sensor's time series, partitioned by time.
//!
//! DCDB's Storage Backend is Apache Cassandra with rows partitioned by
//! (sensor, time window); this module reproduces the same layout in
//! memory: readings live in fixed-duration *partitions* keyed by their
//! start timestamp, so range queries touch only the partitions that
//! overlap the requested window and retention eviction drops whole
//! partitions at once.

use dcdb_common::batch::ReadingBatch;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use std::collections::BTreeMap;

/// Default partition duration: 10 minutes, mirroring DCDB's Cassandra
/// schema granularity.
pub const DEFAULT_PARTITION_NS: u64 = 600 * 1_000_000_000;

/// One sensor's partitioned series.
#[derive(Debug, Clone)]
pub struct Series {
    partition_ns: u64,
    /// partition start timestamp (ns) -> readings sorted by timestamp.
    partitions: BTreeMap<u64, Vec<SensorReading>>,
    len: usize,
}

impl Series {
    /// Creates a series with the given partition duration.
    pub fn new(partition_ns: u64) -> Self {
        assert!(partition_ns > 0, "partition duration must be positive");
        Series {
            partition_ns,
            partitions: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of stored readings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no readings are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions currently held.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn partition_start(&self, ts: Timestamp) -> u64 {
        ts.as_nanos() / self.partition_ns * self.partition_ns
    }

    /// Inserts one reading. Readings may arrive out of order (facility
    /// data is asynchronous, paper §II-B); each partition keeps itself
    /// sorted. Duplicate timestamps overwrite the previous value, which
    /// makes replays idempotent.
    pub fn insert(&mut self, r: SensorReading) {
        let key = self.partition_start(r.ts);
        let part = self.partitions.entry(key).or_default();
        match part.binary_search_by_key(&r.ts, |x| x.ts) {
            Ok(i) => part[i] = r,
            Err(i) => {
                part.insert(i, r);
                self.len += 1;
            }
        }
    }

    /// Inserts a batch (the collect agent's normal write path).
    ///
    /// Consecutive readings with strictly ascending timestamps that land
    /// in the same partition are detected as a *run* and bulk-appended
    /// when they extend the partition's tail — the shape in-order
    /// samplers produce — skipping the per-reading binary search.
    /// Out-of-order or duplicate readings fall back to [`Series::insert`]
    /// semantics (sorted insert, duplicate timestamps overwrite).
    pub fn insert_batch(&mut self, readings: &[SensorReading]) {
        let mut i = 0;
        while i < readings.len() {
            let key = self.partition_start(readings[i].ts);
            let end = key.saturating_add(self.partition_ns);
            let mut j = i + 1;
            while j < readings.len()
                && readings[j].ts > readings[j - 1].ts
                && readings[j].ts.as_nanos() < end
            {
                j += 1;
            }
            let part = self.partitions.entry(key).or_default();
            if part.last().is_none_or(|last| last.ts < readings[i].ts) {
                part.extend_from_slice(&readings[i..j]);
                self.len += j - i;
            } else {
                for &r in &readings[i..j] {
                    match part.binary_search_by_key(&r.ts, |x| x.ts) {
                        Ok(p) => part[p] = r,
                        Err(p) => {
                            part.insert(p, r);
                            self.len += 1;
                        }
                    }
                }
            }
            i = j;
        }
    }

    /// Inserts a columnar batch without materializing rows first.
    ///
    /// Same run detection as [`Series::insert_batch`]: ascending
    /// stretches that extend a partition's tail are appended straight
    /// from the packed columns.
    pub fn insert_columns(&mut self, batch: &ReadingBatch) {
        let (ts, values) = (&batch.ts, &batch.values);
        let mut i = 0;
        while i < ts.len() {
            let key = ts[i] / self.partition_ns * self.partition_ns;
            let end = key.saturating_add(self.partition_ns);
            let mut j = i + 1;
            while j < ts.len() && ts[j] > ts[j - 1] && ts[j] < end {
                j += 1;
            }
            let part = self.partitions.entry(key).or_default();
            if part.last().is_none_or(|last| last.ts.as_nanos() < ts[i]) {
                part.reserve(j - i);
                for k in i..j {
                    part.push(SensorReading::new(values[k], Timestamp(ts[k])));
                }
                self.len += j - i;
            } else {
                for k in i..j {
                    let r = SensorReading::new(values[k], Timestamp(ts[k]));
                    match part.binary_search_by_key(&r.ts, |x| x.ts) {
                        Ok(p) => part[p] = r,
                        Err(p) => {
                            part.insert(p, r);
                            self.len += 1;
                        }
                    }
                }
            }
            i = j;
        }
    }

    /// All readings with `t0 <= ts <= t1`, in timestamp order.
    pub fn query(&self, t0: Timestamp, t1: Timestamp) -> Vec<SensorReading> {
        if t1 < t0 || self.len == 0 {
            return Vec::new();
        }
        let first_part = self.partition_start(t0);
        let mut out = Vec::new();
        for (_, part) in self.partitions.range(first_part..=t1.as_nanos()) {
            let lo = part.partition_point(|r| r.ts < t0);
            let hi = part.partition_point(|r| r.ts <= t1);
            out.extend_from_slice(&part[lo..hi]);
        }
        out
    }

    /// The most recent reading.
    pub fn latest(&self) -> Option<SensorReading> {
        self.partitions
            .iter()
            .next_back()
            .and_then(|(_, p)| p.last())
            .copied()
    }

    /// The oldest stored reading.
    pub fn oldest(&self) -> Option<SensorReading> {
        self.partitions
            .iter()
            .next()
            .and_then(|(_, p)| p.first())
            .copied()
    }

    /// Drops all partitions that end before `cutoff` (retention).
    /// Returns the number of readings evicted.
    pub fn evict_before(&mut self, cutoff: Timestamp) -> usize {
        let mut evicted = 0;
        // A partition [start, start + partition_ns) ends at or before the
        // cutoff iff start <= cutoff - partition_ns.
        let Some(last_evictable) = cutoff.as_nanos().checked_sub(self.partition_ns) else {
            return 0;
        };
        let keys: Vec<u64> = self
            .partitions
            .range(..=last_evictable)
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            if let Some(p) = self.partitions.remove(&k) {
                evicted += p.len();
            }
        }
        self.len -= evicted;
        evicted
    }

    /// Iterates all readings in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &SensorReading> {
        self.partitions.values().flat_map(|p| p.iter())
    }
}

impl Default for Series {
    fn default() -> Self {
        Series::new(DEFAULT_PARTITION_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::time::NS_PER_SEC;

    fn r(v: i64, s: u64) -> SensorReading {
        SensorReading::new(v, Timestamp::from_secs(s))
    }

    #[test]
    fn insert_and_query_in_order() {
        let mut s = Series::new(100 * NS_PER_SEC);
        for i in 0..500 {
            s.insert(r(i as i64, i));
        }
        assert_eq!(s.len(), 500);
        assert_eq!(s.partition_count(), 5);
        let q = s.query(Timestamp::from_secs(98), Timestamp::from_secs(103));
        let vals: Vec<i64> = q.iter().map(|x| x.value).collect();
        assert_eq!(vals, vec![98, 99, 100, 101, 102, 103]);
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let mut s = Series::default();
        for &sec in &[5u64, 1, 9, 3, 7] {
            s.insert(r(sec as i64, sec));
        }
        let q = s.query(Timestamp::ZERO, Timestamp::from_secs(100));
        let ts: Vec<u64> = q.iter().map(|x| x.ts.as_secs()).collect();
        assert_eq!(ts, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicate_timestamp_overwrites() {
        let mut s = Series::default();
        s.insert(r(1, 10));
        s.insert(r(2, 10));
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest().unwrap().value, 2);
    }

    #[test]
    fn query_boundaries_inclusive() {
        let mut s = Series::default();
        s.insert_batch(&[r(1, 1), r(2, 2), r(3, 3)]);
        let q = s.query(Timestamp::from_secs(2), Timestamp::from_secs(2));
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].value, 2);
        assert!(s
            .query(Timestamp::from_secs(3), Timestamp::from_secs(1))
            .is_empty());
    }

    #[test]
    fn query_across_partition_boundary() {
        let mut s = Series::new(10 * NS_PER_SEC);
        for i in 0..30 {
            s.insert(r(i as i64, i));
        }
        let q = s.query(Timestamp::from_secs(8), Timestamp::from_secs(21));
        assert_eq!(q.len(), 14);
        assert_eq!(q.first().unwrap().value, 8);
        assert_eq!(q.last().unwrap().value, 21);
    }

    #[test]
    fn latest_and_oldest() {
        let mut s = Series::new(10 * NS_PER_SEC);
        assert!(s.latest().is_none());
        assert!(s.oldest().is_none());
        s.insert_batch(&[r(5, 5), r(25, 25), r(15, 15)]);
        assert_eq!(s.latest().unwrap().value, 25);
        assert_eq!(s.oldest().unwrap().value, 5);
    }

    #[test]
    fn eviction_drops_whole_partitions() {
        let mut s = Series::new(10 * NS_PER_SEC);
        for i in 0..40 {
            s.insert(r(i as i64, i));
        }
        // Partitions: [0,10) [10,20) [20,30) [30,40).
        let evicted = s.evict_before(Timestamp::from_secs(20));
        assert_eq!(evicted, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.oldest().unwrap().ts.as_secs(), 20);
        // Cutoff inside a partition does not evict it.
        let evicted = s.evict_before(Timestamp::from_secs(35));
        assert_eq!(evicted, 10);
        assert_eq!(s.oldest().unwrap().ts.as_secs(), 30);
    }

    #[test]
    fn columnar_insert_matches_row_insert() {
        // In-order, out-of-order, duplicate and cross-partition shapes
        // must all agree with the per-reading insert path.
        let shapes: Vec<Vec<(i64, u64)>> = vec![
            (0..500).map(|i| (i as i64, i as u64)).collect(),
            vec![(1, 5), (2, 1), (3, 9), (4, 3), (5, 7)],
            vec![(1, 10), (2, 10), (3, 10)],
            vec![(1, 95), (2, 105), (3, 99), (4, 101), (5, 250)],
            vec![],
        ];
        for shape in shapes {
            let rows: Vec<SensorReading> = shape.iter().map(|&(v, s)| r(v, s)).collect();
            let mut by_row = Series::new(100 * NS_PER_SEC);
            for &x in &rows {
                by_row.insert(x);
            }
            let mut by_col = Series::new(100 * NS_PER_SEC);
            by_col.insert_columns(&ReadingBatch::from_readings(&rows));
            let mut by_batch = Series::new(100 * NS_PER_SEC);
            by_batch.insert_batch(&rows);
            let want: Vec<SensorReading> = by_row.iter().copied().collect();
            assert_eq!(by_col.iter().copied().collect::<Vec<_>>(), want);
            assert_eq!(by_batch.iter().copied().collect::<Vec<_>>(), want);
            assert_eq!(by_col.len(), by_row.len());
            assert_eq!(by_batch.len(), by_row.len());
        }
    }

    #[test]
    fn columnar_insert_appends_across_calls() {
        let mut s = Series::new(10 * NS_PER_SEC);
        s.insert_columns(&ReadingBatch::from_columns(vec![1, 2, 3], vec![10, 20, 30]));
        // Second batch extends the same partition's tail: still a run.
        s.insert_columns(&ReadingBatch::from_columns(vec![4, 5], vec![40, 50]));
        // Overwrite of an existing timestamp takes the slow path.
        s.insert_columns(&ReadingBatch::from_columns(vec![3], vec![99]));
        assert_eq!(s.len(), 5);
        let q = s.query(Timestamp::ZERO, Timestamp::MAX);
        assert_eq!(
            q.iter().map(|x| x.value).collect::<Vec<_>>(),
            vec![10, 20, 99, 40, 50]
        );
        assert!(q.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn iter_is_globally_sorted() {
        let mut s = Series::new(NS_PER_SEC);
        for &sec in &[9u64, 2, 7, 4, 0] {
            s.insert(r(0, sec));
        }
        let ts: Vec<u64> = s.iter().map(|x| x.ts.as_secs()).collect();
        assert_eq!(ts, vec![0, 2, 4, 7, 9]);
    }
}
