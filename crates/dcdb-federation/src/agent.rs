//! The federated agent: N Collect Agents, each owning one shard of the
//! topic space.
//!
//! A [`FederatedAgent`] runs one broker + Collect Agent pair per shard
//! node and implements [`MessageBus`], so Pushers publish *through the
//! federation*: each reading is routed to the shard owning its topic
//! (per the current [`ShardMap`]) exactly as a production DCDB fans
//! pushers out across Collect Agents. A refused publish (owner down,
//! not yet failed over) surfaces as an error, which the Pusher's
//! supervised connection answers with store-and-forward spooling — the
//! PR-4 machinery applies unchanged.
//!
//! Membership changes go through an **epoch-based cutover**: a
//! join/leave builds the next [`ShardMap`] (epoch + 1), swaps it in,
//! then bounded-waits for queries pinned to the old epoch to drain
//! before declaring the rebalance complete. Queries pin an epoch with
//! [`FederatedAgent::begin_query`] so a rebalance can never pull the
//! map out from under a scatter in flight.
//!
//! With a replication factor of 2 each shard is a **primary/replica
//! pair**: the primary serves ingest and queries while its acked
//! journal stream (see [`dcdb_storage::TappedEngine`]) is pumped into a
//! journal-tailing standby ([`crate::replica::ReplicaLink`]).
//! [`FederatedAgent::kill`] is an honest crash — it *drops* the
//! victim's in-process broker, agent, and memtable; only on-disk state
//! survives. Nothing rebalances at the moment of the crash: failure is
//! *detected*, by consecutive refused publishes, supervision passes
//! ([`FederatedAgent::supervise`]), or the query router's timeout
//! supervision, and past the configured threshold the federation fails
//! over — the standby drains the in-flight stream, is promoted to
//! primary (role epoch + promotion counter bump, map epoch bump through
//! the normal cutover), and ingest for the shard's keys flows to it.
//! The crashed node can later [`FederatedAgent::rejoin`] as a fresh
//! standby that catches up from the new primary under per-sensor
//! watermarks. A shard with no standby degrades the PR-6 way: it is
//! removed from the ring and queries return partial results.

use crate::replica::{self, ReplicaLink, ReplicaLinkStats, ReplicationConfig};
use crate::ring::{ShardMap, DEFAULT_SHARD_KEY_DEPTH, DEFAULT_VNODES};
use bytes::Bytes;
use dcdb_bus::{
    Broker, BusHandle, BusStatsSnapshot, FilterSegment, MessageBus, SubscribeOptions, Subscription,
    TopicFilter,
};
use dcdb_collectagent::{CollectAgent, CollectAgentConfig, ShardAssignment, ShardRole};
use dcdb_common::error::{DcdbError, Result};
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_storage::{StorageBackend, StorageEngine, TappedEngine};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use wintermute::prelude::TickReport;

/// Federation sizing and behaviour.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of shards (Collect Agents) to run.
    pub agents: usize,
    /// Virtual nodes per agent on the hash ring.
    pub vnodes: usize,
    /// Leading topic segments forming the shard key.
    pub shard_key_depth: usize,
    /// Template for each shard's Collect Agent (`agent_id` is replaced
    /// with the node's id).
    pub agent: CollectAgentConfig,
    /// How long a rebalance waits for queries pinned to the outgoing
    /// epoch before giving up on the drain (the cutover itself has
    /// already happened; a timeout only means an old-epoch reader was
    /// still running and is counted in the stats).
    pub drain_timeout_ms: u64,
    /// Replica pairs, journal-tail sizing, and the failover threshold.
    pub replication: ReplicationConfig,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            agents: 4,
            vnodes: DEFAULT_VNODES,
            shard_key_depth: DEFAULT_SHARD_KEY_DEPTH,
            agent: CollectAgentConfig::default(),
            drain_timeout_ms: 1_000,
            replication: ReplicationConfig::default(),
        }
    }
}

/// The live half of one shard node: everything [`FederatedAgent::kill`]
/// drops. Only the engine's on-disk state (if any) outlives it.
struct NodeRuntime {
    broker: Broker,
    agent: Arc<CollectAgent>,
    engine: Arc<TappedEngine>,
}

/// One node of a shard's replica pair (or the only node of an
/// unreplicated shard).
struct ShardNode {
    /// Node id: the shard id for slot 0 (`agent-00`), the shard id plus
    /// `-r` for the standby slot (`agent-00-r`). The id doubles as the
    /// storage-factory key, so each node owns its own journal
    /// directory.
    id: String,
    runtime: RwLock<Option<NodeRuntime>>,
}

impl ShardNode {
    fn alive(&self) -> bool {
        self.runtime.read().is_some()
    }
}

/// One shard: a primary (plus optional journal-tailing standby) and the
/// failure-detection state around it.
pub struct Shard {
    /// Stable shard id (`agent-00`, `agent-01`, …) — the ring member
    /// name, independent of which node is currently primary.
    pub id: String,
    index: usize,
    nodes: Vec<ShardNode>,
    /// Slot of the node currently serving as primary.
    primary: AtomicUsize,
    /// Bumped whenever the identity behind [`Shard::agent`] changes
    /// (promotion, rejoin-as-primary); the router invalidates its
    /// per-shard route tables against this.
    role_epoch: AtomicU64,
    /// The replication stream feeding the standby, when one is wired.
    link: Mutex<Option<ReplicaLink>>,
    /// Times a standby of this shard was promoted to primary.
    promotions: AtomicU64,
    /// Consecutive failures observed against the current primary
    /// (refused publishes, supervision passes); reset by any success.
    strikes: AtomicU64,
    /// Test hook: artificial per-query delay, nanoseconds. Lets tests
    /// and the chaos smoke drive a shard into scatter timeouts
    /// deterministically without touching the query path.
    query_delay_ns: AtomicU64,
}

impl Shard {
    /// The Collect Agent currently serving as primary; `None` while the
    /// primary is crashed and not yet failed over.
    pub fn agent(&self) -> Option<Arc<CollectAgent>> {
        self.nodes[self.primary.load(Ordering::Acquire)]
            .runtime
            .read()
            .as_ref()
            .map(|rt| Arc::clone(&rt.agent))
    }

    /// A publish/subscribe handle onto the primary's bus, when alive.
    pub fn bus(&self) -> Option<BusHandle> {
        self.nodes[self.primary.load(Ordering::Acquire)]
            .runtime
            .read()
            .as_ref()
            .map(|rt| rt.broker.handle())
    }

    /// Liveness: whether the node currently designated primary is
    /// actually running. False between a crash and the failover (or
    /// rejoin) that resolves it.
    pub fn is_up(&self) -> bool {
        self.nodes[self.primary.load(Ordering::Acquire)].alive()
    }

    /// Id of the node currently designated primary.
    pub fn primary_node_id(&self) -> &str {
        &self.nodes[self.primary.load(Ordering::Acquire)].id
    }

    /// Whether a standby node is alive (and would absorb a failover).
    pub fn standby_alive(&self) -> bool {
        self.standby_slot().is_some()
    }

    /// Bumped on every primary change; see [`Shard::agent`].
    pub fn role_epoch(&self) -> u64 {
        self.role_epoch.load(Ordering::Acquire)
    }

    /// Times this shard promoted its standby.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Replication stream counters, when a standby link is wired.
    pub fn replication_stats(&self) -> Option<ReplicaLinkStats> {
        self.link.lock().as_ref().map(|l| l.stats())
    }

    /// Sets the artificial query delay (test/chaos hook).
    pub fn set_query_delay_ms(&self, ms: u64) {
        self.query_delay_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Release);
    }

    /// The artificial query delay, if any.
    pub fn query_delay(&self) -> Option<std::time::Duration> {
        match self.query_delay_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(std::time::Duration::from_nanos(ns)),
        }
    }

    /// The slot of a live node other than the current primary.
    fn standby_slot(&self) -> Option<usize> {
        let primary = self.primary.load(Ordering::Acquire);
        (0..self.nodes.len()).find(|&slot| slot != primary && self.nodes[slot].alive())
    }

    fn engine_of(&self, slot: usize) -> Option<Arc<TappedEngine>> {
        self.nodes[slot]
            .runtime
            .read()
            .as_ref()
            .map(|rt| Arc::clone(&rt.engine))
    }

    fn note_ok(&self) {
        self.strikes.store(0, Ordering::Release);
    }
}

/// One epoch of the shard map plus the number of queries pinned to it.
struct EpochState {
    map: Arc<ShardMap>,
    inflight: AtomicU64,
}

/// Pins the shard map of the epoch a query started under; the rebalance
/// drain waits for these to drop.
pub struct QueryGuard {
    epoch: Arc<EpochState>,
}

impl QueryGuard {
    /// The shard map this query runs against.
    pub fn map(&self) -> &Arc<ShardMap> {
        &self.epoch.map
    }
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        self.epoch.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Federation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Current shard-map epoch.
    pub epoch: u64,
    /// Shards configured.
    pub shards_total: usize,
    /// Shards with a live primary.
    pub shards_up: usize,
    /// Rebalances performed (failovers + rejoins).
    pub rebalances: u64,
    /// Rebalances whose old-epoch drain hit the timeout with queries
    /// still pinned.
    pub drains_timed_out: u64,
    /// Readings routed to a shard via [`MessageBus::publish`].
    pub publishes: u64,
    /// Publishes refused (owner crashed or no shard in the ring) — the
    /// caller's spool takes over.
    pub publishes_refused: u64,
    /// Standby promotions performed across all shards.
    pub promotions: u64,
    /// Failovers that found no standby and degraded the shard out of
    /// the ring instead (the PR-6 partial-results tier).
    pub degraded_removals: u64,
    /// Journal-tail entries currently queued across all shards
    /// (federation-wide replication lag).
    pub replication_lag_entries: usize,
}

type StorageFactory = dyn Fn(usize, &str) -> Result<Arc<dyn StorageEngine>> + Send + Sync;

/// N Collect Agents behind one [`MessageBus`], sharded by topic,
/// optionally running each shard as a primary/replica pair.
pub struct FederatedAgent {
    shards: Vec<Arc<Shard>>,
    current: RwLock<Arc<EpochState>>,
    drain_timeout_ms: u64,
    replication: ReplicationConfig,
    agent_template: CollectAgentConfig,
    /// Rebuilds a node's engine on rejoin — durable engines reopen
    /// their journal directory and recover; volatile engines come back
    /// empty and refill through catch-up.
    storage_factory: Box<StorageFactory>,
    /// Serializes membership transitions (kill, rejoin, failover) so a
    /// publish-driven failover and a supervision-driven one can never
    /// promote twice.
    membership: Mutex<()>,
    /// Subscriptions with no live home shard attach here and stay
    /// silent instead of panicking.
    fallback_broker: Broker,
    rebalances: AtomicU64,
    drains_timed_out: AtomicU64,
    publishes: AtomicU64,
    publishes_refused: AtomicU64,
    degraded_removals: AtomicU64,
}

impl FederatedAgent {
    /// Builds a federation of `config.agents` shards over in-memory
    /// storage.
    pub fn new(config: FederationConfig) -> Result<FederatedAgent> {
        FederatedAgent::new_with(config, |_, _| {
            Ok(Arc::new(StorageBackend::new()) as Arc<dyn StorageEngine>)
        })
    }

    /// Builds a federation with one storage engine per shard node from
    /// `storage` — `(node ordinal, node id)` in, engine out. With a
    /// replication factor of `f`, shard `i`'s primary node has ordinal
    /// `i * f` and id `agent-0i`; its standby has ordinal `i * f + 1`
    /// and id `agent-0i-r`. This is how the bench and the durable sim
    /// give each node its own journal directory (and, for chaos runs,
    /// its own fault-injecting device).
    pub fn new_with(
        config: FederationConfig,
        storage: impl Fn(usize, &str) -> Result<Arc<dyn StorageEngine>> + Send + Sync + 'static,
    ) -> Result<FederatedAgent> {
        let n = config.agents.max(1);
        let factor = config.replication.replication_factor.clamp(1, 2);
        let replication = ReplicationConfig {
            replication_factor: factor,
            ..config.replication.clone()
        };
        let storage_factory: Box<StorageFactory> = Box::new(storage);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let id = format!("agent-{i:02}");
            let mut nodes = Vec::with_capacity(factor);
            for slot in 0..factor {
                let node_id = if slot == 0 {
                    id.clone()
                } else {
                    format!("{id}-r")
                };
                let runtime = build_node(
                    &config.agent,
                    storage_factory.as_ref(),
                    i * factor + slot,
                    &node_id,
                )?;
                nodes.push(ShardNode {
                    id: node_id,
                    runtime: RwLock::new(Some(runtime)),
                });
            }
            let link = if factor > 1 {
                // The standby tails the primary from the first acked
                // write; both start empty, so no catch-up is needed.
                let primary_engine = nodes[0]
                    .runtime
                    .read()
                    .as_ref()
                    .map(|rt| Arc::clone(&rt.engine))
                    .expect("just built");
                Some(ReplicaLink::attach(
                    &primary_engine,
                    replication.tail_capacity,
                ))
            } else {
                None
            };
            shards.push(Arc::new(Shard {
                id,
                index: i,
                nodes,
                primary: AtomicUsize::new(0),
                role_epoch: AtomicU64::new(0),
                link: Mutex::new(link),
                promotions: AtomicU64::new(0),
                strikes: AtomicU64::new(0),
                query_delay_ns: AtomicU64::new(0),
            }));
        }
        let ids: Vec<String> = shards.iter().map(|s| s.id.clone()).collect();
        let map = Arc::new(ShardMap::build(&ids, config.vnodes, config.shard_key_depth));
        let fed = FederatedAgent {
            shards,
            current: RwLock::new(Arc::new(EpochState {
                map: Arc::clone(&map),
                inflight: AtomicU64::new(0),
            })),
            drain_timeout_ms: config.drain_timeout_ms,
            replication,
            agent_template: config.agent,
            storage_factory,
            membership: Mutex::new(()),
            fallback_broker: Broker::new_sync(),
            rebalances: AtomicU64::new(0),
            drains_timed_out: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            publishes_refused: AtomicU64::new(0),
            degraded_removals: AtomicU64::new(0),
        };
        fed.apply_assignments(&map);
        Ok(fed)
    }

    /// All shards, up or down, in creation order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard with `id`, if configured.
    pub fn shard(&self, id: &str) -> Option<&Arc<Shard>> {
        self.shards.iter().find(|s| s.id == id)
    }

    /// The replication configuration this federation runs with.
    pub fn replication_config(&self) -> &ReplicationConfig {
        &self.replication
    }

    /// The current shard map.
    pub fn shard_map(&self) -> Arc<ShardMap> {
        Arc::clone(&self.current.read().map)
    }

    /// Pins the current epoch for the duration of one query. The
    /// returned guard carries the map the query must use; a rebalance
    /// started after this call waits (bounded) for the guard to drop.
    pub fn begin_query(&self) -> QueryGuard {
        // Increment under the read lock: a rebalance swaps the epoch
        // under the write lock, so the drain can never miss a query
        // that pinned the old epoch.
        let current = self.current.read();
        current.inflight.fetch_add(1, Ordering::AcqRel);
        let epoch = Arc::clone(&current);
        drop(current);
        QueryGuard { epoch }
    }

    /// Crashes shard `id`'s current primary: its broker, agent, and
    /// memtable are dropped on the spot — only on-disk state survives.
    /// Nothing rebalances here; the ring still routes to the shard
    /// until failure *detection* (refused publishes, supervision, or
    /// router timeouts) crosses the threshold and triggers
    /// [`FederatedAgent::failover`]. Returns false if the shard is
    /// unknown or its primary is already down.
    pub fn kill(&self, id: &str) -> bool {
        let _membership = self.membership.lock();
        let Some(shard) = self.shard(id) else {
            return false;
        };
        let slot = shard.primary.load(Ordering::Acquire);
        let crashed = shard.nodes[slot].runtime.write().take();
        if crashed.is_none() {
            return false;
        }
        shard.strikes.store(0, Ordering::Release);
        // `crashed` drops here: broker gone, agent gone, memtable gone.
        true
    }

    /// Fails over shard `index` after detection: if a standby is alive,
    /// the in-flight replication stream is drained into it (bounded by
    /// the tail capacity — the stream cannot grow while its primary is
    /// dead), the standby is promoted (role epoch + promotion counters
    /// bump) and the map epoch advances through the normal cutover. A
    /// shard with no standby is removed from the ring instead — the
    /// PR-6 degraded tier, where its keys rehash to the surviving
    /// shards and queries report partial results. A shard whose primary
    /// is alive, or that already left the ring, is left untouched (so a
    /// probe that triggers on a recovered shard can never
    /// double-promote). Returns true when a standby was promoted.
    pub fn failover(&self, index: usize) -> bool {
        let _membership = self.membership.lock();
        let Some(shard) = self.shards.get(index) else {
            return false;
        };
        if shard.is_up() {
            return false;
        }
        if !self.shard_map().agents.iter().any(|a| *a == shard.id) {
            return false;
        }
        match shard.standby_slot() {
            Some(slot) => {
                self.promote_locked(shard, slot);
                true
            }
            None => {
                self.degraded_removals.fetch_add(1, Ordering::Relaxed);
                shard.strikes.store(0, Ordering::Release);
                self.rebalance();
                false
            }
        }
    }

    /// Promotes the live node in `slot` to primary. Caller holds the
    /// membership lock.
    fn promote_locked(&self, shard: &Arc<Shard>, slot: usize) {
        if let Some(link) = shard.link.lock().take() {
            if let Some(engine) = shard.engine_of(slot) {
                // The drain applies the `replicating` term of the
                // conservation identity before the standby serves its
                // first query.
                let _ = link.drain(engine.as_ref());
            }
        }
        shard.primary.store(slot, Ordering::Release);
        shard.role_epoch.fetch_add(1, Ordering::AcqRel);
        shard.promotions.fetch_add(1, Ordering::Relaxed);
        shard.strikes.store(0, Ordering::Release);
        self.rebalance();
    }

    /// One failure-detection pass: every shard whose designated primary
    /// is dead but still in the ring accrues one strike; a shard at the
    /// failover threshold is failed over. Called from
    /// [`FederatedAgent::tick`]; tests and harnesses can call it
    /// directly to advance detection deterministically. Returns the
    /// number of shards acted on (promoted or degraded).
    pub fn supervise(&self) -> usize {
        let map = self.shard_map();
        let mut acted = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.is_up() {
                continue;
            }
            if !map.agents.iter().any(|a| *a == shard.id) {
                continue; // already degraded out; waiting for rejoin
            }
            let strikes = shard.strikes.fetch_add(1, Ordering::AcqRel) + 1;
            if strikes >= self.replication.failover_threshold {
                let promoted = self.failover(i);
                if promoted || !self.shard_map().agents.iter().any(|a| *a == shard.id) {
                    acted += 1;
                }
            }
        }
        acted
    }

    /// Restarts the dead node of shard `id` from its storage factory.
    /// If the shard has a live primary (it failed over), the restarted
    /// node becomes the journal-tailing standby: the stream is attached
    /// *first*, then an anti-entropy catch-up copies everything past
    /// the node's per-sensor watermarks (the overlap dedups, so the
    /// node can never double-apply an acked reading). If the whole
    /// shard was down, the node resumes as primary and the shard
    /// re-enters the ring. Returns false if the shard is unknown or
    /// fully up.
    pub fn rejoin(&self, id: &str) -> bool {
        let _membership = self.membership.lock();
        let Some(shard) = self.shard(id) else {
            return false;
        };
        let Some(slot) = (0..shard.nodes.len()).find(|&s| !shard.nodes[s].alive()) else {
            return false;
        };
        let factor = self.replication.replication_factor;
        let Ok(runtime) = build_node(
            &self.agent_template,
            self.storage_factory.as_ref(),
            shard.index * factor + slot,
            &shard.nodes[slot].id,
        ) else {
            return false;
        };
        // A restarted node never outranks a live standby: if the shard
        // is down but its standby still holds the acked data (detection
        // has not fired yet), promote the standby first and let the
        // restarted node come back as the new standby — reviving an
        // empty node as primary would strand the acked readings.
        if !shard.is_up() {
            if let Some(live) = shard.standby_slot() {
                self.promote_locked(shard, live);
            }
        }
        if shard.is_up() {
            // Standby path: tail first, catch up second (idempotent
            // overlap); the pump resyncs again if catch-up failed.
            let primary_slot = shard.primary.load(Ordering::Acquire);
            let primary_engine = shard.engine_of(primary_slot).expect("primary is up");
            let link = ReplicaLink::attach(&primary_engine, self.replication.tail_capacity);
            link.mark_dirty();
            if replica::catch_up(primary_engine.as_ref(), runtime.engine.as_ref()).is_ok() {
                link.note_resynced();
            }
            *shard.nodes[slot].runtime.write() = Some(runtime);
            *shard.link.lock() = Some(link);
            self.apply_assignments(&self.shard_map());
        } else {
            *shard.nodes[slot].runtime.write() = Some(runtime);
            shard.primary.store(slot, Ordering::Release);
            shard.role_epoch.fetch_add(1, Ordering::AcqRel);
            shard.strikes.store(0, Ordering::Release);
            self.rebalance();
        }
        true
    }

    /// Ids of the shards with a live primary.
    pub fn up_ids(&self) -> Vec<String> {
        self.shards
            .iter()
            .filter(|s| s.is_up())
            .map(|s| s.id.clone())
            .collect()
    }

    /// Rebuilds the map over the live shard set, swaps it in, and
    /// drains the outgoing epoch: new queries immediately see the new
    /// map; queries pinned to the old one get up to `drain_timeout_ms`
    /// to finish. Returns the new epoch.
    fn rebalance(&self) -> u64 {
        let live = self.up_ids();
        let old = {
            let mut current = self.current.write();
            let next = Arc::new(EpochState {
                map: Arc::new(current.map.rebalanced(&live)),
                inflight: AtomicU64::new(0),
            });
            let old = Arc::clone(&current);
            *current = next;
            old
        };
        let map = self.shard_map();
        self.apply_assignments(&map);
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        // Bounded drain: wait for old-epoch queries to finish so callers
        // can treat "rebalance returned" as "no query still reads the
        // retired map" (barring the counted timeout case).
        let deadline =
            std::time::Instant::now() + std::time::Duration::from_millis(self.drain_timeout_ms);
        while old.inflight.load(Ordering::Acquire) > 0 {
            if std::time::Instant::now() >= deadline {
                self.drains_timed_out.fetch_add(1, Ordering::Relaxed);
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        map.epoch
    }

    /// Pushes each node's position in `map` (and its role within the
    /// pair) down into its agent so `/health` and `/metrics` report the
    /// assignment.
    fn apply_assignments(&self, map: &ShardMap) {
        for shard in &self.shards {
            let position = map.agents.iter().position(|a| *a == shard.id);
            let primary_slot = shard.primary.load(Ordering::Acquire);
            for (slot, node) in shard.nodes.iter().enumerate() {
                let rt = node.runtime.read();
                let Some(rt) = rt.as_ref() else { continue };
                let assignment = position.map(|index| ShardAssignment {
                    index,
                    total: map.len(),
                    epoch: map.epoch,
                    vnodes: map.vnodes,
                    role: if slot == primary_slot {
                        ShardRole::Primary
                    } else {
                        ShardRole::Replica
                    },
                });
                rt.agent.set_shard_assignment(assignment);
            }
        }
    }

    /// One replication pass: for every shard with a wired standby, the
    /// pump applies queued journal-tail entries (bounded by the
    /// configured budget) and, if the stream gapped (tail overflow or a
    /// failed join-time catch-up), re-runs the watermark-bounded
    /// anti-entropy scan first. Returns entries applied.
    pub fn pump_replication(&self) -> usize {
        let mut applied = 0;
        for shard in &self.shards {
            let link_guard = shard.link.lock();
            let Some(link) = link_guard.as_ref() else {
                continue;
            };
            let Some(slot) = shard.standby_slot() else {
                continue;
            };
            let Some(standby) = shard.engine_of(slot) else {
                continue;
            };
            if link.needs_resync() {
                let primary_slot = shard.primary.load(Ordering::Acquire);
                if let Some(primary) = shard.engine_of(primary_slot) {
                    if replica::catch_up(primary.as_ref(), standby.as_ref()).is_ok() {
                        link.note_resynced();
                    }
                }
            }
            applied += link
                .pump(standby.as_ref(), self.replication.pump_budget)
                .unwrap_or(0);
        }
        applied
    }

    /// Drains pending bus messages on every live shard, then pumps
    /// replication. Returns total readings ingested by primaries.
    pub fn process_pending(&self) -> usize {
        let ingested = self
            .shards
            .iter()
            .filter_map(|s| s.agent())
            .map(|a| a.process_pending())
            .sum();
        self.pump_replication();
        ingested
    }

    /// Ticks every live node (ingest + operators + storage maintenance
    /// — standbys tick too, so replica engines seal and roll up), pumps
    /// replication, and runs one failure-detection pass. Returns
    /// `(shard index, report)` per live primary.
    pub fn tick(&self, now: Timestamp) -> Vec<(usize, TickReport)> {
        let mut reports = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(agent) = shard.agent() {
                reports.push((i, agent.tick(now)));
            }
            if let Some(slot) = shard.standby_slot() {
                if let Some(rt) = shard.nodes[slot].runtime.read().as_ref() {
                    let _ = rt.agent.tick(now);
                }
            }
        }
        self.pump_replication();
        self.supervise();
        reports
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FederationStats {
        let map = self.shard_map();
        FederationStats {
            epoch: map.epoch,
            shards_total: self.shards.len(),
            shards_up: self.shards.iter().filter(|s| s.is_up()).count(),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            drains_timed_out: self.drains_timed_out.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            publishes_refused: self.publishes_refused.load(Ordering::Relaxed),
            promotions: self.shards.iter().map(|s| s.promotions()).sum(),
            degraded_removals: self.degraded_removals.load(Ordering::Relaxed),
            replication_lag_entries: self
                .shards
                .iter()
                .filter_map(|s| s.replication_stats())
                .map(|r| r.lag_entries)
                .sum(),
        }
    }

    /// Federation status as JSON: the shard map, per-shard liveness,
    /// role, replication lag and ingest counters, and the
    /// rebalance/drain counters. Served by the router's
    /// `GET /federation` and the sim's status line.
    pub fn status_json(&self) -> serde_json::Value {
        let map = self.shard_map();
        let stats = self.stats();
        let shards: Vec<serde_json::Value> = self
            .shards
            .iter()
            .map(|s| {
                let agent = s.agent();
                let (readings, messages, backlog, sensors) = agent
                    .map(|a| {
                        let st = a.stats();
                        (
                            st.readings,
                            st.messages,
                            a.ingest_backlog(),
                            a.query_engine().sensor_count(),
                        )
                    })
                    .unwrap_or((0, 0, 0, 0));
                let replication = s.replication_stats();
                serde_json::json!({
                    "id": s.id,
                    "up": s.is_up(),
                    "in_ring": map.agents.iter().any(|m| *m == s.id),
                    "role": "primary",
                    "primary_node": s.primary_node_id(),
                    "standby_alive": s.standby_alive(),
                    "promotions": s.promotions(),
                    "replication_lag_entries": replication.map(|r| r.lag_entries),
                    "replication_lag_ms": replication.map(|r| r.lag_ms),
                    "readings": readings,
                    "messages": messages,
                    "ingest_backlog": backlog,
                    "sensors": sensors,
                })
            })
            .collect();
        serde_json::json!({
            "epoch": map.epoch,
            "vnodes": map.vnodes,
            "shard_key_depth": map.shard_key_depth,
            "ring": map.agents,
            "replication_factor": self.replication.replication_factor,
            "shards_total": stats.shards_total,
            "shards_up": stats.shards_up,
            "rebalances": stats.rebalances,
            "drains_timed_out": stats.drains_timed_out,
            "publishes": stats.publishes,
            "publishes_refused": stats.publishes_refused,
            "promotions": stats.promotions,
            "degraded_removals": stats.degraded_removals,
            "replication_lag_entries": stats.replication_lag_entries,
            "shards": shards,
        })
    }

    /// The shard the ring assigns `topic` to, regardless of liveness.
    fn ring_owner(&self, topic: &Topic) -> Option<Arc<Shard>> {
        let map = self.shard_map();
        let id = map.assign_id(topic)?;
        self.shard(id).map(Arc::clone)
    }
}

/// Builds one node's runtime: broker, tapped engine, Collect Agent.
fn build_node(
    template: &CollectAgentConfig,
    storage: &StorageFactory,
    ordinal: usize,
    node_id: &str,
) -> Result<NodeRuntime> {
    // Synchronous brokers keep per-node ingest deterministic;
    // concurrency lives at the federation tier (scatter threads and
    // per-shard I/O), not inside each node's bus.
    let broker = Broker::new_sync();
    let engine = TappedEngine::wrap(storage(ordinal, node_id)?);
    let agent = Arc::new(CollectAgent::new(
        CollectAgentConfig {
            agent_id: node_id.to_string(),
            ..template.clone()
        },
        &broker.handle(),
        Arc::clone(&engine) as Arc<dyn StorageEngine>,
    )?);
    Ok(NodeRuntime {
        broker,
        agent,
        engine,
    })
}

impl MessageBus for FederatedAgent {
    fn publish(&self, topic: Topic, payload: Bytes) -> std::result::Result<(), DcdbError> {
        match self.ring_owner(&topic) {
            Some(shard) => match shard.bus() {
                Some(bus) => {
                    self.publishes.fetch_add(1, Ordering::Relaxed);
                    shard.note_ok();
                    bus.publish(topic, payload)
                }
                None => {
                    // The owner's primary is crashed: refuse (the
                    // caller's spool takes over) and let the failure
                    // feed detection — enough consecutive refusals
                    // trigger the failover that re-routes these keys.
                    self.publishes_refused.fetch_add(1, Ordering::Relaxed);
                    let strikes = shard.strikes.fetch_add(1, Ordering::AcqRel) + 1;
                    if strikes >= self.replication.failover_threshold {
                        self.failover(shard.index);
                    }
                    Err(DcdbError::Disconnected(format!(
                        "shard {} owning {topic} is down",
                        shard.id
                    )))
                }
            },
            None => {
                self.publishes_refused.fetch_add(1, Ordering::Relaxed);
                Err(DcdbError::Disconnected(format!(
                    "no live shard owns {topic}"
                )))
            }
        }
    }

    /// Attaches the subscription to the shard owning the filter's
    /// literal prefix (so `/rack00/node03/#` lands where that node's
    /// data is ingested), falling back to the first live shard for
    /// filters with no literal prefix. Limitation: a cross-shard filter
    /// (`/#` on a multi-agent federation) only sees its home shard's
    /// traffic — fan-in subscribers should query through the router
    /// instead.
    fn subscribe_with(&self, filter: TopicFilter, opts: SubscribeOptions) -> Subscription {
        let prefix: String = filter
            .segments()
            .iter()
            .map_while(|s| match s {
                FilterSegment::Literal(l) => Some(format!("/{l}")),
                _ => None,
            })
            .collect();
        let bus = Topic::parse(&prefix)
            .ok()
            .and_then(|t| self.ring_owner(&t))
            .and_then(|s| s.bus())
            .or_else(|| self.shards.iter().find_map(|s| s.bus()))
            .unwrap_or_else(|| self.fallback_broker.handle());
        bus.subscribe_with(filter, opts)
    }

    fn stats(&self) -> BusStatsSnapshot {
        let mut total = BusStatsSnapshot {
            published: 0,
            delivered: 0,
            dropped: 0,
            router_dropped: 0,
        };
        for shard in &self.shards {
            for node in &shard.nodes {
                if let Some(rt) = node.runtime.read().as_ref() {
                    let s = rt.broker.handle().stats();
                    total.published += s.published;
                    total.delivered += s.delivered;
                    total.dropped += s.dropped;
                    total.router_dropped += s.router_dropped;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::reading::SensorReading;
    use wintermute::prelude::QueryMode;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn publish_node(fed: &FederatedAgent, node: usize, secs: std::ops::RangeInclusive<u64>) {
        for i in secs {
            fed.publish_readings(
                t(&format!("/rack00/node{node:02}/power")),
                &[SensorReading::new(
                    (node * 1000) as i64 + i as i64,
                    Timestamp::from_secs(i),
                )],
            )
            .unwrap();
        }
    }

    fn replicated(agents: usize) -> FederatedAgent {
        FederatedAgent::new(FederationConfig {
            agents,
            replication: ReplicationConfig::pair(),
            ..FederationConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn readings_route_to_the_owning_shard() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 4,
            ..FederationConfig::default()
        })
        .unwrap();
        for node in 0..8 {
            publish_node(&fed, node, 1..=10);
        }
        assert_eq!(fed.process_pending(), 80);
        let map = fed.shard_map();
        // Every shard's sensors are exactly the topics the ring assigns
        // to it.
        for shard in fed.shards() {
            for node in 0..8 {
                let topic = t(&format!("/rack00/node{node:02}/power"));
                let here = shard.agent().unwrap().query_engine().knows(&topic);
                let owns = map.assign_id(&topic) == Some(shard.id.as_str());
                assert_eq!(here, owns, "{topic} on {}", shard.id);
            }
        }
        assert_eq!(fed.stats().publishes, 80);
    }

    #[test]
    fn kill_is_an_honest_crash_detection_degrades_and_rejoin_restores_routing() {
        // Unreplicated tier: a crash must degrade to the PR-6 partial
        // tier (ring removal) — and because the memtable really died,
        // the in-memory shard's pre-kill readings are genuinely gone.
        let fed = FederatedAgent::new(FederationConfig {
            agents: 3,
            ..FederationConfig::default()
        })
        .unwrap();
        let topic = t("/rack00/node00/power");
        let owner = fed.shard_map().assign_id(&topic).unwrap().to_string();

        publish_node(&fed, 0, 1..=5);
        fed.process_pending();

        assert!(fed.kill(&owner));
        assert!(!fed.kill(&owner), "double kill is a no-op");
        // The crash itself does not rebalance: the ring still routes to
        // the dead shard and publishes are refused (spool territory).
        assert_eq!(fed.shard_map().epoch, 0);
        assert!(fed.publish(topic.clone(), Bytes::new()).is_err());
        assert!(fed.stats().publishes_refused >= 1);

        // Detection: supervision strikes accumulate to the threshold,
        // then the shard (no standby) degrades out of the ring.
        let threshold = fed.replication_config().failover_threshold;
        for _ in 0..threshold {
            fed.supervise();
        }
        let map = fed.shard_map();
        assert_eq!(map.epoch, 1);
        assert_ne!(map.assign_id(&topic), Some(owner.as_str()));
        assert_eq!(fed.stats().degraded_removals, 1);
        assert_eq!(fed.stats().shards_up, 2);

        // Interim publishes land on the new owner.
        publish_node(&fed, 0, 6..=8);
        fed.process_pending();
        let interim = map.assign_id(&topic).unwrap();
        assert!(fed
            .shard(interim)
            .unwrap()
            .agent()
            .unwrap()
            .query_engine()
            .knows(&topic));

        // Rejoin: placement returns to the original owner. The crash
        // dropped its memtable, so (volatile storage) its history is
        // empty — honest loss the replicated tier exists to prevent.
        assert!(fed.rejoin(&owner));
        let map = fed.shard_map();
        assert_eq!(map.epoch, 2);
        assert_eq!(map.assign_id(&topic), Some(owner.as_str()));
        let back = fed
            .shard(&owner)
            .unwrap()
            .agent()
            .unwrap()
            .query_engine()
            .query(
                &topic,
                QueryMode::Absolute {
                    t0: Timestamp::from_secs(1),
                    t1: Timestamp::from_secs(5),
                },
            );
        assert!(back.is_empty(), "volatile state really died with the kill");
    }

    #[test]
    fn replicated_shard_promotes_standby_with_zero_acked_loss() {
        let fed = replicated(3);
        let topic = t("/rack00/node00/power");
        let owner = fed.shard_map().assign_id(&topic).unwrap().to_string();

        publish_node(&fed, 0, 1..=20);
        fed.process_pending(); // acks + pumps the stream to the standby

        // More acked writes that are still in flight on the tail when
        // the primary dies: publish, ingest, but do not pump.
        for i in 21..=25u64 {
            fed.publish_readings(
                topic.clone(),
                &[SensorReading::new(i as i64, Timestamp::from_secs(i))],
            )
            .unwrap();
        }
        let shard = Arc::clone(fed.shard(&owner).unwrap());
        shard.agent().unwrap().process_pending();
        assert!(
            shard.replication_stats().unwrap().lag_entries > 0,
            "in-flight entries exist at crash time"
        );

        assert!(fed.kill(&owner));
        let threshold = fed.replication_config().failover_threshold;
        for _ in 0..threshold {
            fed.supervise();
        }
        // Promotion: same ring membership, bumped epochs, counted.
        let map = fed.shard_map();
        assert_eq!(map.epoch, 1);
        assert_eq!(map.assign_id(&topic), Some(owner.as_str()));
        assert_eq!(shard.promotions(), 1);
        assert_eq!(shard.role_epoch(), 1);
        assert_eq!(fed.stats().promotions, 1);
        assert!(shard.is_up());
        assert_eq!(shard.primary_node_id(), format!("{owner}-r"));

        // Zero acked-durable loss: every acked reading — including the
        // in-flight tail entries drained at promotion — answers on the
        // promoted primary, exactly once.
        let back = shard.agent().unwrap().query_engine().query(
            &topic,
            QueryMode::Absolute {
                t0: Timestamp::from_secs(1),
                t1: Timestamp::from_secs(25),
            },
        );
        assert_eq!(back.len(), 25, "all acked readings, no duplicates");

        // Ingest for the shard's keys flows to the promoted node.
        publish_node(&fed, 0, 26..=30);
        fed.process_pending();
        let back = shard.agent().unwrap().query_engine().query(
            &topic,
            QueryMode::Absolute {
                t0: Timestamp::from_secs(1),
                t1: Timestamp::from_secs(30),
            },
        );
        assert_eq!(back.len(), 30);

        // The crashed node rejoins as a fresh standby and catches up.
        assert!(fed.rejoin(&owner));
        fed.pump_replication();
        let stats = shard.replication_stats().unwrap();
        assert_eq!(stats.lag_entries, 0, "standby caught up");
        let standby_engine = shard.engine_of(0).unwrap();
        assert_eq!(
            standby_engine
                .query(&topic, Timestamp::ZERO, Timestamp::MAX)
                .len(),
            30,
            "catch-up replayed history without duplicates"
        );
    }

    #[test]
    fn refused_publishes_drive_detection_to_failover() {
        let fed = replicated(2);
        let topic = t("/rack00/node00/power");
        let owner = fed.shard_map().assign_id(&topic).unwrap().to_string();
        publish_node(&fed, 0, 1..=5);
        fed.process_pending();
        fed.kill(&owner);

        // Each refused publish is a strike; the pusher's spool rides
        // the refusals until the threshold promotes the standby.
        let threshold = fed.replication_config().failover_threshold;
        let mut refusals = 0;
        for i in 0..threshold + 2 {
            let r = fed.publish_readings(
                topic.clone(),
                &[SensorReading::new(
                    100 + i as i64,
                    Timestamp::from_secs(100 + i),
                )],
            );
            if r.is_err() {
                refusals += 1;
            } else {
                break;
            }
        }
        assert_eq!(refusals, threshold, "failover fired at the threshold");
        assert!(fed.shard(&owner).unwrap().is_up(), "standby promoted");
        assert!(fed
            .publish_readings(topic, &[SensorReading::new(7, Timestamp::from_secs(200))])
            .is_ok());
    }

    #[test]
    fn publish_with_all_shards_down_is_refused_not_lost_silently() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 2,
            ..FederationConfig::default()
        })
        .unwrap();
        fed.kill("agent-00");
        fed.kill("agent-01");
        let err = fed.publish(t("/rack00/node00/power"), Bytes::new());
        assert!(err.is_err());
        assert_eq!(fed.stats().publishes_refused, 1);
        // Rejoin: the node restarts as primary and publishes flow again.
        fed.rejoin("agent-00");
        assert!(fed.publish(t("/rack00/node00/power"), Bytes::new()).is_ok());
    }

    #[test]
    fn rebalance_waits_for_pinned_queries_then_counts_timeouts() {
        let fed = Arc::new(
            FederatedAgent::new(FederationConfig {
                agents: 2,
                drain_timeout_ms: 50,
                ..FederationConfig::default()
            })
            .unwrap(),
        );
        let threshold = fed.replication_config().failover_threshold;
        // A query pinned to epoch 0 that outlives the drain budget: the
        // cutover still happens, and the timeout is counted.
        let guard = fed.begin_query();
        assert_eq!(guard.map().epoch, 0);
        fed.kill("agent-01");
        for _ in 0..threshold {
            fed.supervise();
        }
        assert_eq!(fed.shard_map().epoch, 1);
        assert_eq!(fed.stats().drains_timed_out, 1);
        drop(guard);

        // A query that finishes promptly lets the drain complete
        // without a timeout.
        let fed2 = Arc::clone(&fed);
        let guard = fed.begin_query();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            drop(guard);
        });
        fed2.rejoin("agent-01");
        h.join().unwrap();
        assert_eq!(fed.stats().drains_timed_out, 1, "no new drain timeout");
        assert_eq!(fed.shard_map().epoch, 2);
    }

    #[test]
    fn assignments_and_roles_are_visible_in_shard_health() {
        let fed = replicated(2);
        let a = fed.shard("agent-00").unwrap().agent().unwrap();
        let assignment = a.shard_assignment().expect("assigned at construction");
        assert_eq!(assignment.total, 2);
        assert_eq!(assignment.epoch, 0);
        assert_eq!(assignment.role, ShardRole::Primary);

        fed.kill("agent-00");
        let threshold = fed.replication_config().failover_threshold;
        for _ in 0..threshold {
            fed.supervise();
        }
        // Promoted standby reports primary at the bumped epoch.
        let promoted = fed.shard("agent-00").unwrap().agent().unwrap();
        let assignment = promoted.shard_assignment().unwrap();
        assert_eq!(assignment.role, ShardRole::Primary);
        assert_eq!(assignment.epoch, 1);
        assert_eq!(assignment.total, 2, "promotion keeps the ring membership");

        // The rejoined old primary reports replica.
        fed.rejoin("agent-00");
        let shard = fed.shard("agent-00").unwrap();
        let standby_slot = shard.standby_slot().unwrap();
        let standby = shard.nodes[standby_slot]
            .runtime
            .read()
            .as_ref()
            .map(|rt| Arc::clone(&rt.agent))
            .unwrap();
        assert_eq!(standby.shard_assignment().unwrap().role, ShardRole::Replica);
    }

    #[test]
    fn subscriptions_attach_to_the_owning_shard() {
        let fed = FederatedAgent::new(FederationConfig {
            agents: 4,
            ..FederationConfig::default()
        })
        .unwrap();
        let topic = t("/rack00/node05/power");
        let sub = fed.subscribe_with(
            TopicFilter::parse("/rack00/node05/#").unwrap(),
            SubscribeOptions::default(),
        );
        fed.publish_readings(topic, &[SensorReading::new(7, Timestamp::from_secs(1))])
            .unwrap();
        let msg = sub.try_recv().unwrap().expect("delivered on home shard");
        assert_eq!(msg.topic.as_str(), "/rack00/node05/power");
    }
}
