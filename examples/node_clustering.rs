//! Case Study 3 (paper §VI-D): clustering node behaviour with a
//! Bayesian gaussian mixture.
//!
//! Long-horizon, coarse-grained monitoring of all 148 simulated
//! CooLMUC-3 nodes; a clustering operator averages each node's power,
//! temperature and CPU idle time over the window and fits a BGMM that
//! chooses the number of clusters autonomously and flags outliers below
//! the paper's 0.001 density threshold — among them the planted node
//! drawing ~20% more power than its idle time predicts.
//!
//! Run with:
//! ```text
//! cargo run --release --example node_clustering
//! ```

use oda_bench::fig8::{run, Fig8Config};

fn main() {
    let config = Fig8Config {
        duration_s: 1800,
        sample_interval_s: 15,
        seed: 0xE8,
    };
    println!(
        "simulating 148 nodes for {} virtual seconds at {} s sampling...\n",
        config.duration_s, config.sample_interval_s
    );
    let result = run(&config);

    println!("discovered {} clusters:", result.clusters.len());
    println!(
        "{:>6} | {:>5} | {:>9} | {:>8} | {:>12}",
        "label", "nodes", "power[W]", "temp[C]", "idle[ms/s]"
    );
    println!("-------+-------+-----------+----------+-------------");
    for c in &result.clusters {
        println!(
            "{:>6} | {:>5} | {:>9.0} | {:>8.1} | {:>12.0}",
            c.label, c.nodes, c.mean_power_w, c.mean_temp_c, c.mean_idle_ms_per_s
        );
    }

    println!("\noutlier nodes: {:?}", result.outliers);
    for &node in &result.outliers {
        let p = &result.points[node];
        println!(
            "  node {node}: {:.0} W at {:.0} ms/s idle (profile: {})",
            p.power_w, p.idle_ms_per_s, p.profile
        );
    }
    println!(
        "\nagreement with ground-truth behavioural profiles: {:.0}%",
        result.profile_agreement * 100.0
    );
    println!(
        "planted power anomalies flagged: {}",
        if result.anomalies_flagged {
            "yes"
        } else {
            "NO"
        }
    );
}
