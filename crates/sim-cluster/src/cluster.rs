//! Whole-cluster simulation: nodes + scheduler + workload, ticked on a
//! virtual clock.
//!
//! [`ClusterSimulator`] is what the figure harnesses drive: it owns one
//! [`NodeSimulator`](crate::node::NodeSimulator) per compute node, keeps
//! the node's running application in sync with the job table, and
//! produces the full system's sensor samples each tick — the same
//! stream 148 real Pushers would publish.

use crate::apps::AppModel;
use crate::node::{NodeSimulator, ProfileClass, Sample};
use crate::scheduler::{JobScheduler, WorkloadGenerator};
use crate::topology::Topology;
use dcdb_common::time::Timestamp;

/// Configuration of a cluster simulation.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The cluster shape.
    pub topology: Topology,
    /// Master seed; every node derives its own stream.
    pub seed: u64,
    /// Enable the background workload generator.
    pub auto_workload: bool,
}

impl ClusterConfig {
    /// CooLMUC-3-scale simulation with automatic workload.
    pub fn coolmuc3(seed: u64) -> Self {
        ClusterConfig {
            topology: Topology::coolmuc3(),
            seed,
            auto_workload: true,
        }
    }

    /// Small deterministic cluster without background jobs (tests,
    /// examples and single-node case studies).
    pub fn small_manual(seed: u64) -> Self {
        ClusterConfig {
            topology: Topology::small(),
            seed,
            auto_workload: false,
        }
    }
}

/// The full simulated system.
pub struct ClusterSimulator {
    topology: Topology,
    nodes: Vec<NodeSimulator>,
    profiles: Vec<ProfileClass>,
    scheduler: JobScheduler,
    workload: Option<WorkloadGenerator>,
}

impl ClusterSimulator {
    /// Builds the simulator.
    pub fn new(config: ClusterConfig) -> Self {
        let profiles = ProfileClass::assign(config.topology.total_nodes, config.seed);
        let nodes = config
            .topology
            .nodes()
            .map(|n| NodeSimulator::new(config.topology.clone(), n, profiles[n], config.seed))
            .collect();
        let workload = config
            .auto_workload
            .then(|| WorkloadGenerator::new(profiles.clone(), config.seed ^ 0xA11C));
        ClusterSimulator {
            topology: config.topology,
            nodes,
            profiles,
            scheduler: JobScheduler::new(),
            workload,
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-node behavioural profiles (ground truth for evaluating the
    /// clustering case study).
    pub fn profiles(&self) -> &[ProfileClass] {
        &self.profiles
    }

    /// The job table.
    pub fn scheduler(&self) -> &JobScheduler {
        &self.scheduler
    }

    /// Mutable access to the job table (manual job submission).
    pub fn scheduler_mut(&mut self) -> &mut JobScheduler {
        &mut self.scheduler
    }

    /// Mutable access to the background workload generator (tuning job
    /// mix parameters), when auto-workload is enabled.
    pub fn workload_mut(&mut self) -> Option<&mut WorkloadGenerator> {
        self.workload.as_mut()
    }

    /// Direct access to one node's simulator.
    pub fn node_mut(&mut self, node: usize) -> &mut NodeSimulator {
        &mut self.nodes[node]
    }

    /// Submits a job and returns its id (manual workloads).
    pub fn submit_job(
        &mut self,
        user: &str,
        app: AppModel,
        nodes: Vec<usize>,
        start: Timestamp,
        end: Timestamp,
    ) -> u64 {
        self.scheduler.submit(user, app, nodes, start, end)
    }

    /// Advances the simulation to `now` and samples every sensor of
    /// every node. Apps on nodes are switched to match the job table
    /// before sampling.
    pub fn tick(&mut self, now: Timestamp) -> Vec<Sample> {
        if let Some(w) = self.workload.as_mut() {
            w.step(&mut self.scheduler, now);
        }
        self.sync_apps(now);
        let mut out = Vec::new();
        for node in &mut self.nodes {
            out.extend(node.sample(now));
        }
        out
    }

    /// Advances the simulation to `now` sampling only node-level
    /// sensors (power/temp/memfree/cpu-idle) — the cheap path for
    /// long-horizon, node-granularity experiments.
    pub fn tick_node_level(&mut self, now: Timestamp) -> Vec<Sample> {
        if let Some(w) = self.workload.as_mut() {
            w.step(&mut self.scheduler, now);
        }
        self.sync_apps(now);
        let mut out = Vec::with_capacity(self.nodes.len() * 4);
        for node in &mut self.nodes {
            out.extend(node.sample_node_level(now));
        }
        out
    }

    /// Advances and samples a single node (used by per-node Pushers).
    pub fn tick_node(&mut self, node: usize, now: Timestamp) -> Vec<Sample> {
        if let Some(w) = self.workload.as_mut() {
            w.step(&mut self.scheduler, now);
        }
        self.sync_apps(now);
        self.nodes[node].sample(now)
    }

    fn sync_apps(&mut self, now: Timestamp) {
        // Which app should each node be running right now?
        let mut desired: Vec<Option<AppModel>> = vec![None; self.nodes.len()];
        for job in self.scheduler.running_at(now) {
            for &n in &job.nodes {
                if n < desired.len() {
                    desired[n] = Some(job.app);
                }
            }
        }
        for (n, node) in self.nodes.iter_mut().enumerate() {
            match (node.current_app(), desired[n]) {
                (cur, Some(app)) if cur != Some(app) => node.start_app(app, now),
                (Some(_), None) => node.stop_app(),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn tick_produces_all_sensors() {
        let mut sim = ClusterSimulator::new(ClusterConfig::small_manual(1));
        let samples = sim.tick(ts(1));
        // 8 nodes × (4 node-level + 2 OPA + 4 cores × 4 counters).
        assert_eq!(samples.len(), 8 * (6 + 16));
    }

    #[test]
    fn jobs_drive_node_apps() {
        let mut sim = ClusterSimulator::new(ClusterConfig::small_manual(1));
        sim.submit_job("u", AppModel::Hpl, vec![0, 1], ts(10), ts(100));
        sim.tick(ts(5));
        assert_eq!(sim.node_mut(0).current_app(), None);
        sim.tick(ts(20));
        assert_eq!(sim.node_mut(0).current_app(), Some(AppModel::Hpl));
        assert_eq!(sim.node_mut(1).current_app(), Some(AppModel::Hpl));
        assert_eq!(sim.node_mut(2).current_app(), None);
        sim.tick(ts(150));
        assert_eq!(sim.node_mut(0).current_app(), None);
    }

    #[test]
    fn busy_nodes_draw_more_power_than_free_ones() {
        let mut sim = ClusterSimulator::new(ClusterConfig::small_manual(2));
        sim.submit_job("u", AppModel::Hpl, vec![0], ts(0), ts(1000));
        let mut busy_power = 0i64;
        let mut idle_power = 0i64;
        for s in 1..=10u64 {
            for (topic, reading) in sim.tick(ts(s)) {
                if topic.as_str() == "/rack00/node00/power" {
                    busy_power += reading.value;
                }
                if topic.as_str() == "/rack00/node03/power" {
                    idle_power += reading.value;
                }
            }
        }
        assert!(
            busy_power > idle_power * 2,
            "busy {busy_power} idle {idle_power}"
        );
    }

    #[test]
    fn auto_workload_populates_scheduler() {
        let mut sim = ClusterSimulator::new(ClusterConfig {
            topology: Topology::small(),
            seed: 3,
            auto_workload: true,
        });
        for s in 0..120u64 {
            sim.tick(ts(s * 10));
        }
        assert!(!sim.scheduler().all().is_empty());
    }

    #[test]
    fn coolmuc3_scale_tick() {
        let mut sim = ClusterSimulator::new(ClusterConfig::coolmuc3(7));
        let samples = sim.tick(ts(1));
        assert_eq!(samples.len(), 148 * (6 + 64 * 4));
    }

    #[test]
    fn tick_node_isolates_one_node() {
        let mut sim = ClusterSimulator::new(ClusterConfig::small_manual(4));
        let samples = sim.tick_node(5, ts(1));
        assert_eq!(samples.len(), 6 + 16);
        assert!(samples
            .iter()
            .all(|(t, _)| t.as_str().starts_with("/rack01/node01/")));
    }
}
