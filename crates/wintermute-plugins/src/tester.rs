//! Tester plugin (paper §VI-A).
//!
//! The overhead experiments of Figure 5 use two tester components:
//!
//! * a **monitoring** tester producing "a total of 1000 monotonic
//!   sensors with negligible overhead, so as to provide a reliable
//!   baseline" — implemented in `dcdb-pusher` as a monitoring plugin
//!   whose sensors live at `<prefix>/tNNN/value`;
//! * an **operator** tester that "simply perform[s] a certain number of
//!   queries over the input sensors of their units" at each computation
//!   interval — this module.
//!
//! Options:
//! * `queries` — queries per computation interval (paper sweeps
//!   2..1000);
//! * `mode` — `"relative"` or `"absolute"` (the Query Engine mode under
//!   test);
//! * `range_ms` — the temporal range of each query (paper sweeps
//!   0..100 000 ms; 0 = most recent value only).
//!
//! Each unit outputs the total number of readings retrieved, which the
//! harness uses to verify the experiment actually exercised the engine.

use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::NS_PER_MS;
use wintermute::prelude::*;

/// Which Query Engine path the tester exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TesterMode {
    /// Relative timestamps: O(1) cache views.
    Relative,
    /// Absolute timestamps: O(log N) binary search.
    Absolute,
}

/// The tester operator.
pub struct TesterOperator {
    name: String,
    units: Vec<Unit>,
    queries: usize,
    mode: TesterMode,
    range_ns: u64,
    /// Total readings retrieved over the operator's lifetime.
    total_retrieved: u64,
}

impl TesterOperator {
    /// Lifetime count of readings fetched.
    pub fn total_retrieved(&self) -> u64 {
        self.total_retrieved
    }
}

impl Operator for TesterOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn units(&self) -> &[Unit] {
        &self.units
    }

    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
        let unit = &self.units[i];
        if unit.inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut retrieved = 0u64;
        for q in 0..self.queries {
            let input = &unit.inputs[q % unit.inputs.len()];
            let readings = match self.mode {
                TesterMode::Relative => ctx.query.query(
                    input,
                    QueryMode::Relative {
                        offset_ns: self.range_ns,
                    },
                ),
                TesterMode::Absolute => ctx.query.query(
                    input,
                    QueryMode::Absolute {
                        t0: ctx.now.saturating_sub_ns(self.range_ns),
                        t1: ctx.now,
                    },
                ),
            };
            // Consume the data the way a real model would: fold over it
            // so the fetch cannot be optimized away.
            retrieved += readings.len() as u64;
            std::hint::black_box(&readings);
        }
        self.total_retrieved += retrieved;
        Ok(unit
            .outputs
            .iter()
            .map(|o| (o.clone(), SensorReading::new(retrieved as i64, ctx.now)))
            .collect())
    }
}

/// The plugin factory.
pub struct TesterPlugin;

impl OperatorPlugin for TesterPlugin {
    fn kind(&self) -> &str {
        "tester"
    }

    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>> {
        let queries = config.options.u64_or("queries", 10) as usize;
        let mode = match config.options.str_opt("mode").unwrap_or("relative") {
            "relative" => TesterMode::Relative,
            "absolute" => TesterMode::Absolute,
            other => return Err(DcdbError::Config(format!("unknown tester mode {other:?}"))),
        };
        let range_ns = config.options.u64_or("range_ms", 0) * NS_PER_MS;
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |name, units| {
            Ok(Box::new(TesterOperator {
                name,
                units,
                queries,
                mode,
                range_ns,
                total_retrieved: 0,
            }) as Box<dyn Operator>)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::{Timestamp, Topic};
    use std::sync::Arc;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// 10 monotonic tester sensors with 30 readings each.
    fn engine() -> Arc<QueryEngine> {
        let qe = Arc::new(QueryEngine::new(64));
        for i in 0..10 {
            let topic = t(&format!("/host/tester/t{i:03}/value"));
            for sec in 1..=30u64 {
                qe.insert(
                    &topic,
                    SensorReading::new(sec as i64, Timestamp::from_secs(sec)),
                );
            }
        }
        qe.rebuild_navigator();
        qe
    }

    fn config(queries: u64, mode: &str, range_ms: u64) -> PluginConfig {
        PluginConfig::online("tst", "tester", 1000)
            .with_patterns(
                &["<bottomup, filter ^t[0-9]+$>value"],
                &["<bottomup-1>tester-out"],
            )
            .with_option("queries", queries)
            .with_option("mode", mode)
            .with_option("range_ms", range_ms)
    }

    #[test]
    fn unit_gathers_all_tester_sensors() {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(TesterPlugin));
        mgr.load(config(5, "relative", 0)).unwrap();
        let units = mgr.units_of("tst").unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].as_str(), "/host/tester");
    }

    #[test]
    fn zero_range_fetches_latest_only() {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(TesterPlugin));
        mgr.load(config(7, "relative", 0)).unwrap();
        mgr.tick(Timestamp::from_secs(31));
        let out = mgr
            .query_engine()
            .query(&t("/host/tester/tester-out"), QueryMode::Latest);
        assert_eq!(out[0].value, 7); // 7 queries × 1 reading each
    }

    #[test]
    fn ranged_queries_fetch_windows() {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(TesterPlugin));
        mgr.load(config(4, "absolute", 10_000)).unwrap();
        mgr.tick(Timestamp::from_secs(30));
        let out = mgr
            .query_engine()
            .query(&t("/host/tester/tester-out"), QueryMode::Latest);
        // 4 queries × 11 readings (20..=30 inclusive).
        assert_eq!(out[0].value, 44);
    }

    #[test]
    fn relative_and_absolute_agree_on_counts_roughly() {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(TesterPlugin));
        mgr.load(config(10, "relative", 5_000)).unwrap();
        mgr.tick(Timestamp::from_secs(30));
        let rel = mgr
            .query_engine()
            .query(&t("/host/tester/tester-out"), QueryMode::Latest)[0]
            .value;
        // ~10 × 6 readings; the relative path may over/under-shoot by
        // one reading per query.
        assert!((40..=80).contains(&rel), "{rel}");
    }

    #[test]
    fn bad_mode_rejected() {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(TesterPlugin));
        assert!(mgr.load(config(1, "sideways", 0)).is_err());
    }

    #[test]
    fn queries_hit_every_sensor_round_robin() {
        let mgr = OperatorManager::new(engine());
        mgr.register_plugin(Box::new(TesterPlugin));
        mgr.load(config(20, "relative", 0)).unwrap();
        mgr.tick(Timestamp::from_secs(31));
        let stats = mgr.query_engine().stats();
        // 20 queries hit the cache (plus the verification queries).
        assert!(stats.cache_hits >= 20);
    }
}
