//! Failover resilience: replica-pair promotion, detection/promotion
//! latency in virtual time, and the replication-disabled degradation
//! cell.
//!
//! ```text
//! cargo run --release -p oda-bench --bin failover_resilience                    # full run
//! cargo run --release -p oda-bench --bin failover_resilience -- --quick        # CI gate
//! cargo run --release -p oda-bench --bin failover_resilience -- --fault-seed 7 # reseed all 3 lanes
//! ```
//!
//! All three fault layers (collector chaos-bus outages, journal device
//! seeds, kill schedule) split from the single `--fault-seed` via
//! splitmix64 lanes, so one number replays the whole scenario. Exits
//! nonzero unless the replicated cell promotes within 2 s of virtual
//! time with zero acked loss and zero duplicates, lag reconverges
//! after the rejoin, and the factor-1 cell degrades to an accounted
//! partial-result envelope.

use oda_bench::failover_resilience::{run, FailoverResilienceConfig};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let mut config = if quick {
        FailoverResilienceConfig::quick()
    } else {
        FailoverResilienceConfig::paper()
    };
    if let Some(i) = args.iter().position(|a| a == "--fault-seed") {
        config.fault_seed = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--fault-seed needs a u64 value");
                std::process::exit(2);
            });
    }

    println!(
        "failover resilience bench: {} shards x2 nodes, {} rounds x {} virtual ms, \
         kill @ {} / rejoin @ {}, fault seed {:#x}\n",
        config.agents,
        config.rounds,
        config.round_ms,
        config.kill_round,
        config.rejoin_round,
        config.fault_seed
    );
    let mut dir = std::env::temp_dir();
    dir.push(format!("oda-bench-failover-{}", std::process::id()));

    let started = std::time::Instant::now();
    let result = run(&config, &dir);
    let _ = std::fs::remove_dir_all(&dir);

    let r = &result.replicated;
    println!(
        "replicated: victim {} killed @ round {} | detection {} ms, promotion {} ms, \
         unavailable {} ms ({} refused)",
        r.victim,
        r.killed_at_round,
        r.detection_ms,
        r.promotion_ms,
        r.unavailability_ms,
        r.refused_publishes
    );
    println!(
        "            published {} (collector skipped {}), returned {}, lost {}, dup {}, \
         promotions {}",
        r.published, r.collector_outage_skips, r.returned, r.lost_acked, r.duplicates, r.promotions
    );
    println!(
        "            lag converged {} (final {} entries, {:?} rounds after rejoin), \
         accounted {}, complete after recovery {} -> {}",
        r.lag_converged,
        r.final_lag_entries,
        r.lag_rounds_to_converge,
        r.envelopes_accounted,
        r.complete_after_recovery,
        if r.ok { "OK" } else { "FAILED" }
    );
    let d = &result.degraded;
    println!(
        "degraded:   victim {} | removals {}, partial visible {}, accounted {}, \
         lost on survivors {}, unavailable {}, dup {} -> {}",
        d.victim,
        d.degraded_removals,
        d.partial_envelope_visible,
        d.envelopes_accounted,
        d.lost_on_survivors,
        d.unavailable_acked,
        d.duplicates,
        if d.ok { "OK" } else { "FAILED" }
    );
    println!(
        "lanes: collector {:#x}, disk {:#x}, kill {:#x}",
        result.sub_seeds[0], result.sub_seeds[1], result.sub_seeds[2]
    );

    let meta = BenchMeta::new(
        "failover_resilience",
        Some(config.fault_seed),
        &config,
        started,
    );
    match write_json_report(&meta, &result) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write results: {e}"),
    }

    if !result.ok {
        eprintln!("failover resilience FAILED");
        std::process::exit(1);
    }
}
