//! Request routing with path parameters.
//!
//! Routes are registered as `(method, pattern)` pairs where the pattern
//! may contain `:name` segments (captured into [`Request::params`]) and
//! a trailing `*rest` segment capturing the remainder of the path. The
//! Operator Manager mounts its management actions here, e.g.
//! `PUT /analytics/:plugin/:action` (paper §V-A).

use crate::http::{Method, Request, Response, Status};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A route handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

#[derive(Clone)]
enum Seg {
    Literal(String),
    Param(String),
    Rest(String),
}

struct Route {
    method: Method,
    segs: Vec<Seg>,
    handler: Handler,
}

/// An ordered route table: first match wins.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a handler for `method` + `pattern`.
    ///
    /// Pattern syntax: `/a/:x/b` captures segment 2 as `x`;
    /// `/files/*path` captures everything after `/files/` as `path`.
    pub fn route<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let segs = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Seg::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Seg::Rest(name.to_string())
                } else {
                    Seg::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push(Route {
            method,
            segs,
            handler: Arc::new(handler),
        });
        self
    }

    /// Convenience: GET route.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route(Method::Get, pattern, handler)
    }

    /// Convenience: PUT route.
    pub fn put<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route(Method::Put, pattern, handler)
    }

    /// Dispatches a request, filling `params` on a match.
    ///
    /// 404 when no pattern matches the path, 405 when a pattern matches
    /// but with a different method.
    pub fn dispatch(&self, mut req: Request) -> Response {
        let path_segs: Vec<&str> = req
            .path
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_segs(&route.segs, &path_segs) {
                path_matched = true;
                if route.method == req.method {
                    req.params = params;
                    return (route.handler)(&req);
                }
            }
        }
        if path_matched {
            Response::error(Status::MethodNotAllowed, "method not allowed")
        } else {
            Response::error(Status::NotFound, format!("no route for {}", req.path))
        }
    }
}

fn match_segs(pattern: &[Seg], path: &[&str]) -> Option<BTreeMap<String, String>> {
    let mut params = BTreeMap::new();
    let mut pi = 0;
    for (i, seg) in pattern.iter().enumerate() {
        match seg {
            Seg::Rest(name) => {
                params.insert(name.clone(), path[pi..].join("/"));
                return Some(params);
            }
            Seg::Literal(l) => {
                if path.get(pi) != Some(&l.as_str()) {
                    return None;
                }
                pi += 1;
            }
            Seg::Param(name) => {
                let v = path.get(pi)?;
                params.insert(name.clone(), v.to_string());
                pi += 1;
            }
        }
        let _ = i;
    }
    if pi == path.len() {
        Some(params)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: Method, path: &str) -> Request {
        Request::new(method, path)
    }

    #[test]
    fn literal_routes() {
        let mut r = Router::new();
        r.get("/health", |_| Response::text("ok"));
        assert_eq!(r.dispatch(req(Method::Get, "/health")).body_str(), "ok");
        assert_eq!(r.dispatch(req(Method::Get, "/nope")).status.code(), 404);
    }

    #[test]
    fn params_are_captured() {
        let mut r = Router::new();
        r.put("/analytics/:plugin/:action", |rq| {
            Response::text(format!(
                "{}:{}",
                rq.path_param("plugin").unwrap(),
                rq.path_param("action").unwrap()
            ))
        });
        let resp = r.dispatch(req(Method::Put, "/analytics/regressor/start"));
        assert_eq!(resp.body_str(), "regressor:start");
    }

    #[test]
    fn rest_capture() {
        let mut r = Router::new();
        r.get("/sensors/*topic", |rq| {
            Response::text(rq.path_param("topic").unwrap().to_string())
        });
        let resp = r.dispatch(req(Method::Get, "/sensors/rack1/node2/power"));
        assert_eq!(resp.body_str(), "rack1/node2/power");
    }

    #[test]
    fn wrong_method_is_405() {
        let mut r = Router::new();
        r.get("/only-get", |_| Response::text("x"));
        assert_eq!(r.dispatch(req(Method::Put, "/only-get")).status.code(), 405);
    }

    #[test]
    fn first_match_wins() {
        let mut r = Router::new();
        r.get("/a/specific", |_| Response::text("specific"));
        r.get("/a/:x", |_| Response::text("param"));
        assert_eq!(
            r.dispatch(req(Method::Get, "/a/specific")).body_str(),
            "specific"
        );
        assert_eq!(r.dispatch(req(Method::Get, "/a/other")).body_str(), "param");
    }

    #[test]
    fn length_mismatch_no_match() {
        let mut r = Router::new();
        r.get("/a/:x", |_| Response::text("x"));
        assert_eq!(r.dispatch(req(Method::Get, "/a")).status.code(), 404);
        assert_eq!(r.dispatch(req(Method::Get, "/a/b/c")).status.code(), 404);
    }

    #[test]
    fn trailing_slashes_are_tolerated() {
        let mut r = Router::new();
        r.get("/x/y", |_| Response::text("ok"));
        assert_eq!(r.dispatch(req(Method::Get, "/x/y/")).body_str(), "ok");
    }
}
