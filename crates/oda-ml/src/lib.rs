//! # oda-ml — machine-learning kernels for operational data analytics
//!
//! From-scratch implementations of every model the Wintermute paper's
//! case studies rely on (Netti et al., HPDC 2020):
//!
//! * [`stats`] — quantiles/deciles, histograms, normal fits (persyst
//!   plugin, §VI-C; error PDFs, §VI-B);
//! * [`features`] — windowed feature extraction (regressor plugin, §VI-B);
//! * [`tree`] / [`forest`] — CART regression trees and bagged random
//!   forests (regressor plugin's model, §VI-B — substitute for OpenCV
//!   RTrees);
//! * [`kmeans`] — k-means++ (initialization + ablation baseline);
//! * [`linear`] — ridge regression (model-choice ablation baseline);
//! * [`gmm`] — maximum-likelihood gaussian mixtures (ablation baseline);
//! * [`bgmm`] — the variational *Bayesian* gaussian mixture with
//!   automatic component-count selection and density-threshold outlier
//!   detection (clustering plugin, §VI-D);
//! * [`linalg`] / [`special`] — the supporting numerics (Cholesky,
//!   digamma, log-gamma).

#![warn(missing_docs)]

pub mod bgmm;
pub mod features;
pub mod forest;
pub mod gmm;
pub mod kmeans;
pub mod linalg;
pub mod linear;
pub mod special;
pub mod stats;
pub mod tree;

pub use bgmm::{fit_bgmm, BgmmConfig, BgmmModel};
pub use features::{Feature, FeatureExtractor};
pub use forest::{ForestConfig, RandomForest};
pub use gmm::{fit_gmm, GaussianComponent, GmmConfig, GmmModel};
pub use kmeans::{kmeans, KMeansResult};
pub use linalg::SquareMatrix;
pub use linear::RidgeRegression;
pub use tree::{RegressionTree, TreeConfig};
