//! Exponential smoothing plugin.
//!
//! A small stateful operator used in production-style aggregation
//! pipelines: each unit maintains an exponentially weighted moving
//! average of its input sensor and publishes it as a derived sensor.
//! Where the [`aggregator`](crate::aggregator) recomputes over a window
//! each tick, the smoother carries state across ticks — it exists partly
//! to exercise and document that pattern for plugin authors.
//!
//! Options:
//! * `alpha` — smoothing factor in (0, 1]; higher = more reactive
//!   (default 0.2).

use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::SensorReading;
use wintermute::prelude::*;

/// The smoothing operator.
pub struct SmootherOperator {
    name: String,
    units: Vec<Unit>,
    alpha: f64,
    /// Per-unit EWMA state.
    state: Vec<Option<f64>>,
}

impl Operator for SmootherOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn units(&self) -> &[Unit] {
        &self.units
    }

    fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
        let unit = &self.units[i];
        let Some(latest) = ctx.latest_value(&unit.inputs[0]) else {
            return Ok(Vec::new());
        };
        let smoothed = match self.state[i] {
            None => latest,
            Some(prev) => prev + self.alpha * (latest - prev),
        };
        self.state[i] = Some(smoothed);
        let value = finite_output(&format!("smoother {}", self.name), smoothed)?;
        Ok(unit
            .outputs
            .iter()
            .map(|o| (o.clone(), SensorReading::new(value, ctx.now)))
            .collect())
    }
}

/// The plugin factory.
pub struct SmootherPlugin;

impl OperatorPlugin for SmootherPlugin {
    fn kind(&self) -> &str {
        "smoother"
    }

    fn configure(
        &self,
        config: &PluginConfig,
        nav: &SensorNavigator,
    ) -> Result<Vec<Box<dyn Operator>>> {
        let alpha = config.options.f64_or("alpha", 0.2);
        if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
            return Err(DcdbError::Config(format!("alpha {alpha} outside (0, 1]")));
        }
        let resolution = config.resolve(nav)?;
        instantiate(config, resolution.units, |name, units| {
            let state = vec![None; units.len()];
            Ok(Box::new(SmootherOperator {
                name,
                units,
                alpha,
                state,
            }) as Box<dyn Operator>)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::{Timestamp, Topic};
    use std::sync::Arc;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn setup(alpha: f64) -> Arc<OperatorManager> {
        let qe = Arc::new(QueryEngine::new(32));
        qe.insert(
            &t("/n0/power"),
            SensorReading::new(100, Timestamp::from_secs(1)),
        );
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(SmootherPlugin));
        mgr.load(
            PluginConfig::online("sm", "smoother", 1000)
                .with_patterns(&["<bottomup>power"], &["<bottomup>power-smooth"])
                .with_option("alpha", alpha),
        )
        .unwrap();
        mgr
    }

    #[test]
    fn first_sample_initializes_state() {
        let mgr = setup(0.5);
        mgr.tick(Timestamp::from_secs(2));
        let got = mgr
            .query_engine()
            .query(&t("/n0/power-smooth"), QueryMode::Latest);
        assert_eq!(got[0].value, 100);
    }

    #[test]
    fn smoothing_lags_step_changes() {
        let mgr = setup(0.5);
        mgr.tick(Timestamp::from_secs(2)); // ewma = 100
        mgr.query_engine().insert(
            &t("/n0/power"),
            SensorReading::new(200, Timestamp::from_secs(3)),
        );
        mgr.tick(Timestamp::from_secs(3)); // ewma = 150
        let got = mgr
            .query_engine()
            .query(&t("/n0/power-smooth"), QueryMode::Latest);
        assert_eq!(got[0].value, 150);
        mgr.query_engine().insert(
            &t("/n0/power"),
            SensorReading::new(200, Timestamp::from_secs(4)),
        );
        mgr.tick(Timestamp::from_secs(4)); // ewma = 175
        let got = mgr
            .query_engine()
            .query(&t("/n0/power-smooth"), QueryMode::Latest);
        assert_eq!(got[0].value, 175);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let qe = Arc::new(QueryEngine::new(8));
        qe.insert(
            &t("/n0/power"),
            SensorReading::new(1, Timestamp::from_secs(1)),
        );
        qe.rebuild_navigator();
        let mgr = OperatorManager::new(qe);
        mgr.register_plugin(Box::new(SmootherPlugin));
        for alpha in [0.0, -0.5, 1.5] {
            let cfg = PluginConfig::online(&format!("sm{alpha}"), "smoother", 1000)
                .with_patterns(&["<bottomup>power"], &["<bottomup>out"])
                .with_option("alpha", alpha);
            assert!(mgr.load(cfg).is_err(), "alpha {alpha}");
        }
    }
}
