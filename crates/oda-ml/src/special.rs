//! Special functions needed by the variational Bayesian machinery.
//!
//! The variational GMM update equations (Bishop, PRML §10.2) need the
//! digamma function ψ(x) for the expected log mixing weights and log
//! precision determinants, and ln Γ(x) for the evidence lower bound.
//! Both are implemented with standard numeric recipes: Lanczos for
//! ln Γ, recurrence + asymptotic series for ψ.

/// Natural log of the Gamma function, Lanczos approximation (g = 7,
/// n = 9), accurate to ~1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x) for x > 0.
///
/// Uses the recurrence ψ(x) = ψ(x+1) − 1/x to push the argument above 6,
/// then the asymptotic expansion.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma defined here for x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic series: ln x − 1/(2x) − Σ B_2n / (2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!((ln_gamma(n) - f.ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
        // Γ(3/2) = sqrt(pi)/2.
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn digamma_known_values() {
        let euler = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + euler).abs() < 1e-10);
        // ψ(1/2) = −γ − 2 ln 2.
        assert!((digamma(0.5) + euler + 2.0 * 2.0f64.ln()).abs() < 1e-10);
        // ψ(2) = 1 − γ.
        assert!((digamma(2.0) - (1.0 - euler)).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence_holds() {
        for &x in &[0.3, 1.7, 4.2, 11.0, 123.4] {
            let lhs = digamma(x + 1.0);
            let rhs = digamma(x) + 1.0 / x;
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.8, 2.5, 7.0, 30.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!((digamma(x) - numeric).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "digamma")]
    fn digamma_rejects_nonpositive() {
        digamma(0.0);
    }
}
