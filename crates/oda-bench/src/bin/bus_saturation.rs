//! Bus saturation: bounded queues under publisher overload.
//!
//! ```text
//! cargo run --release -p oda-bench --bin bus_saturation            # full run
//! cargo run --release -p oda-bench --bin bus_saturation -- --quick # smoke run
//! ```

use oda_bench::bus_saturation::{run, BusSaturationConfig};
use oda_bench::{write_json_report, BenchMeta};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        BusSaturationConfig::quick()
    } else {
        BusSaturationConfig::paper()
    };

    println!(
        "bus saturation bench: bound {} msgs, consumer drains {}/tick ({} ticks of {} us)\n",
        config.bound, config.drain_per_tick, config.ticks, config.tick_us
    );
    let started = std::time::Instant::now();
    let result = run(&config);

    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>11} {:>11} {:>9} {:>8} {:>7}",
        "policy",
        "factor",
        "published",
        "consumed",
        "dropped@sub",
        "dropped@rtr",
        "highwater",
        "drop%",
        "ok"
    );
    for c in &result.cells {
        println!(
            "{:<12} {:>5}x {:>10} {:>10} {:>11} {:>11} {:>9} {:>7.2}% {:>7}",
            c.policy,
            c.factor,
            c.published,
            c.consumed,
            c.dropped_sub,
            c.dropped_router,
            c.sub_high_water.max(c.router_high_water),
            c.drop_ratio * 100.0,
            if c.bound_respected && c.conserved && c.ordered {
                "yes"
            } else {
                "NO"
            },
        );
    }

    let all_ok = result
        .cells
        .iter()
        .all(|c| c.bound_respected && c.conserved && c.ordered);
    let meta = BenchMeta::new("bus_saturation", None, &config, started);
    let path = write_json_report(&meta, &result).expect("write json");
    println!("\nraw data -> {}", path.display());
    if !all_ok {
        eprintln!("FAIL: an invariant was violated (see table)");
        std::process::exit(1);
    }
    println!(
        "all invariants held: depth <= bound at every overload factor, all messages accounted"
    );
}
