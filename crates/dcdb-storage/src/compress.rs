//! Gorilla-style compression for runs of [`SensorReading`]s.
//!
//! Sealed segments store each sensor's readings as one compressed
//! block. Monitoring data is extremely regular — near-constant sampling
//! intervals and slowly drifting values — so the classic time-series
//! tricks (Facebook's Gorilla, §4.1) apply directly:
//!
//! * **timestamps**: delta-of-delta. The first timestamp is stored raw;
//!   every subsequent one stores the *change in sampling interval*,
//!   zig-zag + varint encoded, which is `0` (one byte) for perfectly
//!   periodic data.
//! * **values**: delta against the previous value, zig-zag + varint
//!   encoded — sensor values are integers here (fixed-point for real
//!   valued metrics), so integer deltas compress better than the
//!   float-oriented XOR scheme and remain byte-exact.
//!
//! ```text
//! block := [u32 count]                      (0 terminates immediately)
//!          [u64 first_ts] [i64 first_value]
//!          (count-1) × { varint zz(ddts) , varint zz(dvalue) }
//! ```
//!
//! Decompression reproduces the input byte-identically: this is a
//! lossless code over arbitrary `(i64, u64)` sequences, not just sorted
//! ones, so replays and proptests can exercise any input.

use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;

/// Zig-zag encodes a signed 64-bit integer into an unsigned one.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as a LEB128 varint.
#[inline]
fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint, advancing `pos`.
#[inline]
fn get_uvarint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long varint
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Compresses a run of readings into one block.
pub fn compress_block(readings: &[SensorReading]) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + readings.len() * 2);
    out.extend_from_slice(&(readings.len() as u32).to_le_bytes());
    let Some(first) = readings.first() else {
        return out;
    };
    out.extend_from_slice(&first.ts.as_nanos().to_le_bytes());
    out.extend_from_slice(&first.value.to_le_bytes());
    let mut prev_ts = first.ts.as_nanos();
    let mut prev_delta = 0i64;
    let mut prev_value = first.value;
    for r in &readings[1..] {
        let delta = r.ts.as_nanos().wrapping_sub(prev_ts) as i64;
        put_uvarint(&mut out, zigzag(delta.wrapping_sub(prev_delta)));
        put_uvarint(&mut out, zigzag(r.value.wrapping_sub(prev_value)));
        prev_ts = r.ts.as_nanos();
        prev_delta = delta;
        prev_value = r.value;
    }
    out
}

/// Decompresses a block produced by [`compress_block`].
pub fn decompress_block(data: &[u8]) -> Result<Vec<SensorReading>> {
    let corrupt = || DcdbError::Parse("corrupt compressed block".into());
    if data.len() < 4 {
        return Err(corrupt());
    }
    let count = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    if count == 0 {
        return Ok(Vec::new());
    }
    if data.len() < 20 {
        return Err(corrupt());
    }
    let mut prev_ts = u64::from_le_bytes(data[4..12].try_into().unwrap());
    let mut prev_value = i64::from_le_bytes(data[12..20].try_into().unwrap());
    let mut out = Vec::with_capacity(count);
    out.push(SensorReading::new(prev_value, Timestamp(prev_ts)));
    let mut pos = 20;
    let mut prev_delta = 0i64;
    for _ in 1..count {
        let ddts = unzigzag(get_uvarint(data, &mut pos).ok_or_else(corrupt)?);
        let dvalue = unzigzag(get_uvarint(data, &mut pos).ok_or_else(corrupt)?);
        let delta = prev_delta.wrapping_add(ddts);
        prev_ts = prev_ts.wrapping_add(delta as u64);
        prev_value = prev_value.wrapping_add(dvalue);
        prev_delta = delta;
        out.push(SensorReading::new(prev_value, Timestamp(prev_ts)));
    }
    if pos != data.len() {
        return Err(corrupt()); // trailing garbage
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_common::time::NS_PER_SEC;

    fn r(v: i64, ns: u64) -> SensorReading {
        SensorReading::new(v, Timestamp(ns))
    }

    #[test]
    fn round_trips_periodic_data_compactly() {
        // Perfectly periodic sampling with a slow ramp: the common case.
        let readings: Vec<SensorReading> = (0..1000)
            .map(|i| {
                r(
                    100_000 + i as i64,
                    1_700_000_000 * NS_PER_SEC + i * NS_PER_SEC,
                )
            })
            .collect();
        let block = compress_block(&readings);
        assert_eq!(decompress_block(&block).unwrap(), readings);
        // 16 B/reading raw → ~2 B/reading compressed for this shape.
        let raw = readings.len() * 16;
        assert!(
            block.len() * 4 < raw,
            "block {} B vs raw {} B — expected >4x compression",
            block.len(),
            raw
        );
    }

    #[test]
    fn round_trips_adversarial_sequences() {
        let cases: Vec<Vec<SensorReading>> = vec![
            vec![],
            vec![r(0, 0)],
            vec![r(i64::MAX, u64::MAX), r(i64::MIN, 0)],
            vec![r(-5, 10), r(-5, 10), r(-5, 10)],
            vec![r(7, 3), r(-900, 1), r(12345, u64::MAX / 2)],
        ];
        for case in cases {
            let block = compress_block(&case);
            assert_eq!(decompress_block(&block).unwrap(), case, "case {case:?}");
        }
    }

    #[test]
    fn round_trips_randomized_sequences() {
        // Deterministic xorshift so the test needs no external crate.
        let mut state = 0x853C_49E6_748F_EA9Bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 2, 3, 17, 256, 1024] {
            let readings: Vec<SensorReading> = (0..len).map(|_| r(next() as i64, next())).collect();
            let block = compress_block(&readings);
            assert_eq!(decompress_block(&block).unwrap(), readings, "len {len}");
        }
    }

    #[test]
    fn rejects_truncated_blocks() {
        let readings: Vec<SensorReading> = (0..50).map(|i| r(i, i as u64 * 100)).collect();
        let block = compress_block(&readings);
        for cut in [0, 3, 10, block.len() - 1] {
            assert!(
                decompress_block(&block[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Trailing garbage is also rejected.
        let mut extended = block.clone();
        extended.push(0);
        assert!(decompress_block(&extended).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
