//! Fault detection: the taxonomy's resiliency use case (paper §II-A)
//! and the `healthy` output sensor of the paper's Fig. 2 example.
//!
//! A health operator watches each node's power and CPI-bearing counters
//! against rolling baselines and publishes a per-node `healthy` flag.
//! The example runs a steady workload, then injects a power anomaly on
//! one node (the simulator's excess-power behaviour) and shows the flag
//! tripping on exactly that node.
//!
//! Run with:
//! ```text
//! cargo run --example fault_detection
//! ```

use dcdb_common::time::{Timestamp, NS_PER_SEC};
use dcdb_common::topic::Topic;
use dcdb_wintermute::sim_cluster::{
    AppModel, ClusterConfig, ClusterSimulator, ProfileClass, Topology,
};
use parking_lot::Mutex;
use std::sync::Arc;
use wintermute::prelude::*;
use wintermute_plugins::HealthPlugin;

fn main() {
    // --- 4 nodes, all running the same steady workload. ---
    let topology = Topology::new(1, 4, 4);
    let mut sim = ClusterSimulator::new(ClusterConfig {
        topology: topology.clone(),
        seed: 0xFD,
        auto_workload: false,
    });
    sim.submit_job(
        "steady",
        AppModel::Lammps,
        vec![0, 1, 2, 3],
        Timestamp::from_secs(1),
        Timestamp::from_secs(10_000),
    );
    let sim = Arc::new(Mutex::new(sim));

    // --- An engine fed directly by the simulator + a health plugin. ---
    let qe = Arc::new(QueryEngine::new(256));
    let tick_all = |now: Timestamp| {
        for (topic, reading) in sim.lock().tick(now) {
            qe.insert(&topic, reading);
        }
    };
    tick_all(Timestamp::from_secs(1));
    qe.rebuild_navigator();

    let mgr = OperatorManager::new(Arc::clone(&qe));
    mgr.register_plugin(Box::new(HealthPlugin));
    mgr.load(
        PluginConfig::online("node-health", "health", 1000)
            .with_patterns(&["<bottomup-1>power"], &["<bottomup-1>healthy"])
            .with_option("z_threshold", 5.0)
            .with_option("window_ms", 3000u64)
            .with_option("warmup", 5u64),
    )
    .expect("health plugin loads");

    let health_of = |node: usize| -> String {
        let topic = topology.node_topic(node).child("healthy").unwrap();
        match qe.query(&topic, QueryMode::Latest).first() {
            Some(r) if r.value == 1 => "ok".into(),
            Some(_) => "ANOMALOUS".into(),
            None => "-".into(),
        }
    };

    println!(
        "{:>5} | {:>9} {:>9} {:>9} {:>9}",
        "t[s]", "node00", "node01", "node02", "node03"
    );
    println!("------+----------------------------------------");
    let mut now = Timestamp::from_secs(2);
    for sec in 2..=40u64 {
        // At t=25 node02 develops the paper's excess-power anomaly:
        // a fresh simulator state with the anomalous profile.
        if sec == 25 {
            let mut locked = sim.lock();
            *locked.node_mut(2) = dcdb_wintermute::sim_cluster::NodeSimulator::new(
                topology.clone(),
                2,
                ProfileClass::ExcessPower,
                0xFD,
            );
            locked.node_mut(2).start_app(AppModel::Lammps, now);
            println!("------+---- node02 starts drawing +22% power ----");
        }
        tick_all(now);
        mgr.tick(now);
        if sec % 4 == 0 || (25..=30).contains(&sec) {
            println!(
                "{:>5} | {:>9} {:>9} {:>9} {:>9}",
                sec,
                health_of(0),
                health_of(1),
                health_of(2),
                health_of(3)
            );
        }
        now = now.saturating_add_ns(NS_PER_SEC);
    }

    let anomalies = qe.query(
        &Topic::parse("/analytics/node-health/anomalies").unwrap(),
        QueryMode::Latest,
    );
    println!(
        "\ntotal anomalous verdicts: {}",
        anomalies.first().map(|r| r.value).unwrap_or(0)
    );
}
