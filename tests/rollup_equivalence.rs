//! Property tests for the continuous-aggregation rollup path: the
//! tier-aware planner must be an *optimisation*, never a different
//! answer. For any seeded series — duplicates, out-of-order arrivals,
//! seals straddling tier boundaries — and any (range, step) request,
//! the tier-served aggregate equals the same aggregate computed from
//! raw readings, both before and after a crash-recovery replay
//! (rollup frames are rebuilt from the WAL-recovered raw truth, never
//! trusted across a crash).
//!
//! The harness mirrors the PR-5 failure-injection pattern: 48 seeds,
//! `std::mem::forget` as the crash, a reopen as the recovery.

use dcdb_wintermute::dcdb_common::{SensorReading, Timestamp, Topic};
use dcdb_wintermute::dcdb_storage::{
    DurableBackend, DurableConfig, FsyncPolicy, HealthConfig, StorageEngine,
};
use dcdb_wintermute::wintermute::prelude::*;
use std::sync::Arc;

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

const NS: u64 = 1_000_000_000;

/// Steps to exercise: raw-only (1 s and the indivisible 7 s), the 10 s
/// tier exactly, multiples served from it, and the 5 min tier.
const STEPS_NS: [u64; 6] = [NS, 7 * NS, 10 * NS, 30 * NS, 300 * NS, 600 * NS];

fn small_config() -> DurableConfig {
    DurableConfig {
        fsync: FsyncPolicy::Never,
        // Small memtable: seals happen mid-series, so tier frames end
        // up split across sealed rollup segments and hot accumulators,
        // and seal points straddle bucket boundaries.
        memtable_max_readings: 120,
        health: HealthConfig {
            retry_backoff_base_ms: 0,
            ..HealthConfig::default()
        },
        ..DurableConfig::default()
    }
}

/// Asserts the tier-planned answer equals the raw-scan answer for
/// every step width, on every topic — the frames must match bucket
/// for bucket (count, sum, min, max, and the derived avg).
fn assert_tier_equals_raw(qe: &QueryEngine, topics: &[Topic], seed: u64, phase: &str) {
    for topic in topics {
        for &step in &STEPS_NS {
            let tiered = qe.query_agg_planned(topic, Timestamp::ZERO, Timestamp::MAX, step, true);
            let raw = qe.query_agg_planned(topic, Timestamp::ZERO, Timestamp::MAX, step, false);
            assert_eq!(
                tiered.frames.len(),
                raw.frames.len(),
                "seed {seed} {phase} {topic} step {}s: bucket count diverged \
                 (plan: {:?})",
                step / NS,
                tiered.plan,
            );
            for (tf, rf) in tiered.frames.iter().zip(raw.frames.iter()) {
                assert_eq!(
                    (tf.bucket_ns, tf.count, tf.sum, tf.min, tf.max),
                    (rf.bucket_ns, rf.count, rf.sum, rf.min, rf.max),
                    "seed {seed} {phase} {topic} step {}s bucket {}: \
                     tier-served aggregate diverged from raw (plan: {:?})",
                    step / NS,
                    tf.bucket_ns / NS,
                    tiered.plan,
                );
                assert_eq!(
                    tf.avg(),
                    rf.avg(),
                    "seed {seed} {phase} {topic}: derived avg diverged"
                );
            }
        }
    }
}

/// 48 seeds × (in-flight check + post-crash check): tier-served
/// avg/min/max/count equals the raw-computed aggregate over any seeded
/// series, across tier boundaries, and again after the engine is
/// crashed and the rollups are rebuilt from WAL replay.
#[test]
fn tier_served_aggregates_equal_raw_across_seeds_and_crash_recovery() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dcdb-rollup-equiv-{}", std::process::id()));
    let topics: Vec<Topic> = (0..3).map(|n| t(&format!("/n{n}/power"))).collect();

    for seed in 1..=48u64 {
        std::fs::remove_dir_all(&dir).ok();
        let db = Arc::new(DurableBackend::open(&dir, small_config()).unwrap());
        // A small cache forces the recent-boundary stitch: old buckets
        // come from storage, the newest from the cache ring.
        let qe = QueryEngine::with_storage(32, Arc::clone(&db) as Arc<dyn StorageEngine>);
        let mut rng = Rng(0x5EED_0000_0000_0000 | seed);

        // A seeded series with everything the accumulator hates:
        // mostly-ascending timestamps with occasional out-of-order
        // jumps back, duplicate timestamps (overwrite semantics), and
        // values spanning sign changes. Time range ~0..1200 s crosses
        // many 10 s buckets and several 5 min buckets.
        let mut clock_s = 1u64;
        for _ in 0..300 {
            let topic = &topics[(rng.next() % topics.len() as u64) as usize];
            let ts_s = match rng.next() % 10 {
                // Out-of-order: jump back into an already-folded bucket.
                0 => clock_s.saturating_sub(1 + rng.next() % 40).max(1),
                // Duplicate: overwrite the reading at the current clock.
                1 => clock_s,
                _ => {
                    clock_s += 1 + rng.next() % 7;
                    clock_s
                }
            };
            let value = (rng.next() as i64) % 100_000 - 50_000;
            qe.insert(topic, SensorReading::new(value, Timestamp::from_secs(ts_s)));
        }
        // Maintenance seals segments (raw and rollup) mid-series.
        db.maintain(Timestamp::from_secs(clock_s)).unwrap();

        assert_tier_equals_raw(&qe, &topics, seed, "pre-crash");
        let stats = db.engine_stats();
        assert!(
            stats.rollup_folds + stats.rollup_recomputes > 0,
            "seed {seed}: rollups were never exercised"
        );

        // Crash: no Drop, no flush. The WAL tail is whatever is on
        // disk; rollup frames are NOT journaled and must be rebuilt.
        drop(qe);
        std::mem::forget(db);

        let db = Arc::new(DurableBackend::open(&dir, small_config()).unwrap());
        // Cold cache after the "restart": every answer now comes from
        // recovered storage + rebuilt rollups.
        let qe = QueryEngine::with_storage(32, Arc::clone(&db) as Arc<dyn StorageEngine>);
        assert_tier_equals_raw(&qe, &topics, seed, "post-recovery");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The tier/raw stitch boundary mirrors the PR-3 Absolute-mode test:
/// frames cover the sealed past, the raw tail covers the unsealed
/// recent window, and a reading at the boundary aggregates exactly
/// once — total count over the grid equals the number of distinct
/// readings, for every step.
#[test]
fn tier_raw_boundary_counts_each_reading_exactly_once() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dcdb-rollup-boundary-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Arc::new(DurableBackend::open(&dir, small_config()).unwrap());
    let qe = QueryEngine::with_storage(8, Arc::clone(&db) as Arc<dyn StorageEngine>);
    let topic = t("/n0/power");
    // One reading per second for 10 minutes; the small memtable seals
    // several times, so rollup segments, hot frames, raw segments and
    // the 8-slot cache ring all hold a share of the series.
    for i in 1..=600u64 {
        qe.insert(
            &topic,
            SensorReading::new(i as i64, Timestamp::from_secs(i)),
        );
    }
    db.maintain(Timestamp::from_secs(600)).unwrap();

    for &step in &STEPS_NS {
        let series = qe.query_agg(&topic, Timestamp::ZERO, Timestamp::MAX, step);
        let total: u64 = series.frames.iter().map(|f| f.count).sum();
        assert_eq!(
            total,
            600,
            "step {}s: readings double-counted or lost at the tier/raw \
             boundary (plan: {:?})",
            step / NS,
            series.plan
        );
        let sum: i64 = series.frames.iter().map(|f| f.sum).sum();
        assert_eq!(sum, (1..=600).sum::<i64>(), "step {}s: sum", step / NS);
    }
    std::fs::remove_dir_all(&dir).ok();
}
