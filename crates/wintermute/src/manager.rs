//! The Operator Manager (paper §V-A).
//!
//! "The Operator Manager is the central entity responsible for reading
//! Wintermute configuration files, loading requested plugins and
//! managing their life cycle." It also receives all ODA-related RESTful
//! requests forwarded by the component's HTTPS server: plugin start /
//! stop / reload, and on-demand operator invocations.
//!
//! Scheduling is tick-based: [`OperatorManager::tick`] runs every
//! *online* operator whose interval has elapsed, publishing its outputs
//! to the Query Engine (making pipelines possible) and to any attached
//! [`SensorSink`]s (MQTT bus, storage backend). Ticks can be driven by
//! a wall-clock thread ([`OperatorManager::start_thread`]) in production
//! or by a virtual clock in simulation — the manager itself is
//! clock-agnostic.
//!
//! The runtime is **fault-isolated**: a panic inside any
//! [`Operator::compute`] is caught ([`std::panic::catch_unwind`]) and
//! recorded instead of killing the scheduler; an operator failing
//! [`FaultPolicy::quarantine_threshold`] times in a row is *quarantined*
//! — skipped with exponential backoff on its `next_due` — until a
//! `PUT /analytics/plugins/:name/start` (or reload) resumes it; and an
//! operator still busy when it comes due again is skipped and counted as
//! an *overrun* rather than parking a rayon worker on its mutex.
//! Per-operator counters (runs, outputs, errors, panics, overruns,
//! latency EWMA, quarantine state) are exposed through
//! [`OperatorManager::metrics_json`].

use crate::operator::{compute_all_units, ComputeContext, Operator, Output};
use crate::plugin::{OperatorPlugin, PluginConfig};
use crate::query::QueryEngine;
use dcdb_common::error::{DcdbError, Result};
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_rest::{Method, Response, Router, Status};
use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A destination for operator outputs beyond the local caches — the
/// Pusher attaches an MQTT sink, the Collect Agent a storage sink.
pub trait SensorSink: Send + Sync {
    /// Publishes one output reading.
    fn publish(&self, topic: &Topic, reading: SensorReading);
}

/// Publishes operator outputs onto the DCDB bus (Pusher deployment).
pub struct BusSink {
    bus: Arc<dyn dcdb_bus::MessageBus>,
}

impl BusSink {
    /// Wraps a bus handle.
    pub fn new(bus: dcdb_bus::BusHandle) -> Self {
        BusSink { bus: Arc::new(bus) }
    }

    /// Wraps any [`dcdb_bus::MessageBus`] — in-band operator outputs
    /// must ride the same (possibly faulty) transport as the raw
    /// sensor data, or a broker outage is invisible to per-source
    /// staleness tracking downstream.
    pub fn over(bus: Arc<dyn dcdb_bus::MessageBus>) -> Self {
        BusSink { bus }
    }
}

impl SensorSink for BusSink {
    fn publish(&self, topic: &Topic, reading: SensorReading) {
        let _ = self.bus.publish_readings(topic.clone(), &[reading]);
    }
}

/// Fault-isolation policy of the operator runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Consecutive failures (errors or panics) after which an operator
    /// is quarantined.
    pub quarantine_threshold: u64,
    /// Cap on the quarantine backoff, as a multiple of the operator's
    /// interval (the backoff doubles on every skipped due event until
    /// it reaches this cap).
    pub backoff_cap: u64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            quarantine_threshold: 5,
            backoff_cap: 64,
        }
    }
}

/// Per-slot runtime counters. All fields are atomics so the rayon
/// workers, the due-scan and REST readers never contend on a lock.
#[derive(Default)]
struct SlotMetrics {
    runs: AtomicU64,
    successes: AtomicU64,
    outputs: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    overruns: AtomicU64,
    quarantined_skips: AtomicU64,
    consecutive_failures: AtomicU64,
    quarantined: AtomicBool,
    last_latency_ns: AtomicU64,
    ewma_latency_ns: AtomicU64,
    max_latency_ns: AtomicU64,
}

impl SlotMetrics {
    fn record_latency(&self, ns: u64) {
        self.last_latency_ns.store(ns, Ordering::Relaxed);
        self.max_latency_ns.fetch_max(ns, Ordering::Relaxed);
        let old = self.ewma_latency_ns.load(Ordering::Relaxed);
        // EWMA with alpha = 1/8, seeded by the first sample.
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.ewma_latency_ns.store(new, Ordering::Relaxed);
    }

    /// Registers a failed computation; true when this failure crossed
    /// the quarantine threshold (the caller arms the backoff).
    fn note_failure(&self, policy: FaultPolicy) -> bool {
        let fails = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        fails >= policy.quarantine_threshold && !self.quarantined.swap(true, Ordering::AcqRel)
    }

    fn note_success(&self) {
        self.consecutive_failures.store(0, Ordering::Release);
        self.quarantined.store(false, Ordering::Release);
    }

    fn reset_quarantine(&self) {
        self.quarantined.store(false, Ordering::Release);
        self.consecutive_failures.store(0, Ordering::Release);
    }

    fn snapshot(&self, name: &str) -> OperatorMetricsSnapshot {
        OperatorMetricsSnapshot {
            name: name.to_string(),
            runs: self.runs.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            outputs: self.outputs.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            overruns: self.overruns.load(Ordering::Relaxed),
            quarantined_skips: self.quarantined_skips.load(Ordering::Relaxed),
            consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Acquire),
            last_latency_ns: self.last_latency_ns.load(Ordering::Relaxed),
            ewma_latency_ns: self.ewma_latency_ns.load(Ordering::Relaxed),
            max_latency_ns: self.max_latency_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time runtime metrics of one operator slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorMetricsSnapshot {
    /// Operator name (unique within its plugin).
    pub name: String,
    /// Due events processed for this operator; every one resolves to
    /// exactly one of success / error / panic / overrun / quarantined
    /// skip, so `runs == successes + errors + panics + overruns +
    /// quarantined_skips` holds at all times.
    pub runs: u64,
    /// Successful computations.
    pub successes: u64,
    /// Output readings published by successful computations.
    pub outputs: u64,
    /// Computations that returned an error.
    pub errors: u64,
    /// Computations that panicked (caught and contained).
    pub panics: u64,
    /// Due events skipped because a previous computation (or a long
    /// on-demand request) still held the operator.
    pub overruns: u64,
    /// Due events skipped because the operator was quarantined.
    pub quarantined_skips: u64,
    /// Errors/panics since the last success or resume.
    pub consecutive_failures: u64,
    /// Whether the operator is currently quarantined.
    pub quarantined: bool,
    /// Latency of the most recent computation, nanoseconds.
    pub last_latency_ns: u64,
    /// Exponentially-weighted moving average latency (alpha 1/8), ns.
    pub ewma_latency_ns: u64,
    /// Maximum observed computation latency, nanoseconds.
    pub max_latency_ns: u64,
}

/// Runtime metrics of one plugin instance and its operators.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PluginMetricsSnapshot {
    /// Instance name.
    pub name: String,
    /// Plugin kind.
    pub kind: String,
    /// Whether online computation is enabled.
    pub running: bool,
    /// One snapshot per operator slot.
    pub operators: Vec<OperatorMetricsSnapshot>,
}

/// Aggregate runtime totals across every loaded operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorTotals {
    /// Due events processed (all outcomes).
    pub runs: u64,
    /// Successful computations.
    pub successes: u64,
    /// Output readings published.
    pub outputs: u64,
    /// Failed computations.
    pub errors: u64,
    /// Contained panics.
    pub panics: u64,
    /// Busy-operator skips.
    pub overruns: u64,
    /// Quarantine skips.
    pub quarantined_skips: u64,
    /// Operators currently quarantined.
    pub quarantined_operators: u64,
}

struct OperatorSlot {
    /// Cached operator name: readable without taking the operator lock
    /// (overrun reporting must not block on a busy operator).
    name: String,
    operator: Mutex<Box<dyn Operator>>,
    /// Next due time in ns; 0 = run at the first tick.
    next_due: AtomicU64,
    metrics: SlotMetrics,
}

struct LoadedPlugin {
    config: PluginConfig,
    operators: Vec<OperatorSlot>,
    running: AtomicBool,
}

/// How one due slot resolved inside a tick. The `quarantined` field
/// carries the operator name when this failure pushed it into
/// quarantine.
enum SlotOutcome {
    Success {
        outputs: usize,
    },
    Error {
        message: String,
        quarantined: Option<String>,
    },
    Panic {
        message: String,
        quarantined: Option<String>,
    },
    Overrun,
}

/// Summary of one tick. Every due event resolves to exactly one
/// outcome: `operators_run == successes + errors.len() + panics.len()
/// + overruns + quarantined_skips`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Due operator events processed this tick (all outcomes).
    pub operators_run: usize,
    /// Computations that completed successfully.
    pub successes: usize,
    /// Output readings published.
    pub outputs_published: usize,
    /// Per-operator errors (tick continues past failures).
    pub errors: Vec<String>,
    /// Per-operator contained panics (tick and scheduler survive).
    pub panics: Vec<String>,
    /// Due operators skipped because they were still computing.
    pub overruns: usize,
    /// Due operators skipped because they are quarantined.
    pub quarantined_skips: usize,
    /// Operators that entered quarantine during this tick.
    pub newly_quarantined: Vec<String>,
}

/// The manager. Typically owned inside a Pusher or Collect Agent and
/// shared as `Arc` with the REST router.
pub struct OperatorManager {
    registry: RwLock<HashMap<String, Box<dyn OperatorPlugin>>>,
    plugins: RwLock<HashMap<String, Arc<LoadedPlugin>>>,
    query: Arc<QueryEngine>,
    sinks: RwLock<Vec<Arc<dyn SensorSink>>>,
    time_source: Box<dyn Fn() -> Timestamp + Send + Sync>,
    fault_policy: RwLock<FaultPolicy>,
    ticks: AtomicU64,
}

impl OperatorManager {
    /// Creates a manager over a query engine, using wall-clock time for
    /// REST-triggered computations.
    pub fn new(query: Arc<QueryEngine>) -> Arc<OperatorManager> {
        Self::with_time_source(query, Box::new(Timestamp::now))
    }

    /// Creates a manager with a custom time source (virtual clocks in
    /// simulation).
    pub fn with_time_source(
        query: Arc<QueryEngine>,
        time_source: Box<dyn Fn() -> Timestamp + Send + Sync>,
    ) -> Arc<OperatorManager> {
        Arc::new(OperatorManager {
            registry: RwLock::new(HashMap::new()),
            plugins: RwLock::new(HashMap::new()),
            query,
            sinks: RwLock::new(Vec::new()),
            time_source,
            fault_policy: RwLock::new(FaultPolicy::default()),
            ticks: AtomicU64::new(0),
        })
    }

    /// The query engine the manager publishes into.
    pub fn query_engine(&self) -> &Arc<QueryEngine> {
        &self.query
    }

    /// Replaces the fault-isolation policy (quarantine threshold and
    /// backoff cap). Takes effect from the next tick.
    pub fn set_fault_policy(&self, policy: FaultPolicy) {
        *self.fault_policy.write() = policy;
    }

    /// The current fault-isolation policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        *self.fault_policy.read()
    }

    /// Ticks processed so far (any clock).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Registers a plugin factory; configurations with a matching
    /// `kind` can then be loaded.
    pub fn register_plugin(&self, plugin: Box<dyn OperatorPlugin>) {
        self.registry
            .write()
            .insert(plugin.kind().to_string(), plugin);
    }

    /// Attaches an output sink.
    pub fn add_sink(&self, sink: Arc<dyn SensorSink>) {
        self.sinks.write().push(sink);
    }

    /// Loads (configures and starts) a plugin instance.
    pub fn load(&self, config: PluginConfig) -> Result<()> {
        if self.plugins.read().contains_key(&config.name) {
            return Err(DcdbError::InvalidState(format!(
                "plugin instance {:?} already loaded",
                config.name
            )));
        }
        let loaded = self.configure(config)?;
        self.plugins
            .write()
            .insert(loaded.config.name.clone(), Arc::new(loaded));
        Ok(())
    }

    fn configure(&self, config: PluginConfig) -> Result<LoadedPlugin> {
        let registry = self.registry.read();
        let factory = registry.get(&config.kind).ok_or_else(|| {
            DcdbError::NotFound(format!("no registered plugin kind {:?}", config.kind))
        })?;
        let nav = self.query.navigator();
        let operators = factory.configure(&config, &nav)?;
        Ok(LoadedPlugin {
            config,
            operators: operators
                .into_iter()
                .map(|op| OperatorSlot {
                    name: op.name().to_string(),
                    operator: Mutex::new(op),
                    next_due: AtomicU64::new(0),
                    metrics: SlotMetrics::default(),
                })
                .collect(),
            running: AtomicBool::new(true),
        })
    }

    /// Unloads a plugin instance entirely.
    pub fn unload(&self, name: &str) -> Result<()> {
        self.plugins
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DcdbError::NotFound(format!("plugin {name:?}")))
    }

    /// Pauses an instance's online computation.
    pub fn stop(&self, name: &str) -> Result<()> {
        self.set_running(name, false)
    }

    /// Resumes an instance's online computation. Also clears any
    /// quarantine and re-arms every slot to run at the next tick — the
    /// REST escape hatch (`PUT /analytics/plugins/:name/start`) for an
    /// operator quarantined after repeated failures.
    pub fn start(&self, name: &str) -> Result<()> {
        let plugins = self.plugins.read();
        let plugin = plugins
            .get(name)
            .ok_or_else(|| DcdbError::NotFound(format!("plugin {name:?}")))?;
        plugin.running.store(true, Ordering::Release);
        for slot in &plugin.operators {
            slot.metrics.reset_quarantine();
            slot.next_due.store(0, Ordering::Release);
        }
        Ok(())
    }

    fn set_running(&self, name: &str, running: bool) -> Result<()> {
        let plugins = self.plugins.read();
        let plugin = plugins
            .get(name)
            .ok_or_else(|| DcdbError::NotFound(format!("plugin {name:?}")))?;
        plugin.running.store(running, Ordering::Release);
        Ok(())
    }

    /// Re-runs a plugin's configurator against the *current* sensor
    /// tree — the dynamic-reconfiguration path of the REST API.
    pub fn reload(&self, name: &str) -> Result<()> {
        let config = {
            let plugins = self.plugins.read();
            plugins
                .get(name)
                .ok_or_else(|| DcdbError::NotFound(format!("plugin {name:?}")))?
                .config
                .clone()
        };
        let reloaded = self.configure(config)?;
        self.plugins
            .write()
            .insert(name.to_string(), Arc::new(reloaded));
        Ok(())
    }

    /// True if the named instance is loaded and running.
    pub fn is_running(&self, name: &str) -> bool {
        self.plugins
            .read()
            .get(name)
            .map(|p| p.running.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// `(name, kind, running, operators, units)` for every instance.
    pub fn list(&self) -> Vec<(String, String, bool, usize, usize)> {
        let plugins = self.plugins.read();
        let mut out: Vec<_> = plugins
            .values()
            .map(|p| {
                let units = p
                    .operators
                    .iter()
                    .map(|s| s.operator.lock().units().len())
                    .sum();
                (
                    p.config.name.clone(),
                    p.config.kind.clone(),
                    p.running.load(Ordering::Acquire),
                    p.operators.len(),
                    units,
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Runs every due online operator. Due slots are processed in
    /// parallel with rayon — this is what makes [`UnitMode::Parallel`]
    /// (one operator per unit) scale across cores.
    ///
    /// The tick is fault-isolated: panics are caught and recorded,
    /// repeatedly failing operators are quarantined (skipped with
    /// exponential backoff), and operators still busy from a previous
    /// computation are skipped as overruns instead of blocking a rayon
    /// worker.
    ///
    /// [`UnitMode::Parallel`]: crate::operator::UnitMode::Parallel
    pub fn tick(&self, now: Timestamp) -> TickReport {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let policy = self.fault_policy();
        let mut report = TickReport::default();
        // Snapshot due work without holding the plugin map lock during
        // computation.
        let mut due: Vec<(Arc<LoadedPlugin>, usize, u64)> = Vec::new();
        {
            let plugins = self.plugins.read();
            for plugin in plugins.values() {
                if !plugin.running.load(Ordering::Acquire) {
                    continue;
                }
                let Some(interval_ms) = plugin.config.interval_ms() else {
                    continue; // on-demand plugins never tick
                };
                let interval_ns = interval_ms.max(1) * 1_000_000;
                for (i, slot) in plugin.operators.iter().enumerate() {
                    let next = slot.next_due.load(Ordering::Acquire);
                    if next > now.as_nanos() {
                        continue;
                    }
                    if slot.metrics.quarantined.load(Ordering::Acquire) {
                        // Quarantined: skip, doubling the backoff on
                        // every visit (capped) so the scan re-visits
                        // the slot ever more rarely until a REST
                        // start / reload resumes it.
                        slot.metrics.runs.fetch_add(1, Ordering::Relaxed);
                        let skips = slot
                            .metrics
                            .quarantined_skips
                            .fetch_add(1, Ordering::Relaxed)
                            + 1;
                        let mult = 1u64
                            .checked_shl((skips + 1).min(63) as u32)
                            .unwrap_or(u64::MAX)
                            .min(policy.backoff_cap.max(2));
                        slot.next_due.store(
                            now.as_nanos()
                                .saturating_add(interval_ns.saturating_mul(mult)),
                            Ordering::Release,
                        );
                        report.operators_run += 1;
                        report.quarantined_skips += 1;
                        continue;
                    }
                    // Schedule the next run; lagging operators skip
                    // missed intervals rather than bursting.
                    let mut new_next = if next == 0 { now.as_nanos() } else { next };
                    while new_next <= now.as_nanos() {
                        new_next += interval_ns;
                    }
                    slot.next_due.store(new_next, Ordering::Release);
                    due.push((Arc::clone(plugin), i, interval_ns));
                }
            }
        }

        report.operators_run += due.len();
        let results: Vec<SlotOutcome> = due
            .par_iter()
            .map(|(plugin, slot_idx, interval_ns)| {
                self.run_slot(plugin, *slot_idx, *interval_ns, now, policy)
            })
            .collect();

        for outcome in results {
            match outcome {
                SlotOutcome::Success { outputs } => {
                    report.successes += 1;
                    report.outputs_published += outputs;
                }
                SlotOutcome::Error {
                    message,
                    quarantined,
                } => {
                    report.newly_quarantined.extend(quarantined);
                    report.errors.push(message);
                }
                SlotOutcome::Panic {
                    message,
                    quarantined,
                } => {
                    report.newly_quarantined.extend(quarantined);
                    report.panics.push(message);
                }
                SlotOutcome::Overrun => report.overruns += 1,
            }
        }
        report
    }

    /// Runs one due slot through the fault-isolation machinery:
    /// `try_lock` (overrun if busy), `catch_unwind` around the
    /// computation, latency recording and quarantine bookkeeping.
    fn run_slot(
        &self,
        plugin: &LoadedPlugin,
        slot_idx: usize,
        interval_ns: u64,
        now: Timestamp,
        policy: FaultPolicy,
    ) -> SlotOutcome {
        let slot = &plugin.operators[slot_idx];
        slot.metrics.runs.fetch_add(1, Ordering::Relaxed);
        // A computation still running from a previous tick (or a long
        // on-demand request) holds the slot mutex; skip instead of
        // parking this rayon worker until it finishes.
        let Some(mut op) = slot.operator.try_lock() else {
            slot.metrics.overruns.fetch_add(1, Ordering::Relaxed);
            return SlotOutcome::Overrun;
        };
        let ctx = ComputeContext {
            query: &self.query,
            now,
        };
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| compute_all_units(op.as_mut(), &ctx)));
        slot.metrics
            .record_latency(start.elapsed().as_nanos() as u64);
        match result {
            Ok(Ok(outputs)) => {
                slot.metrics.note_success();
                slot.metrics.successes.fetch_add(1, Ordering::Relaxed);
                slot.metrics
                    .outputs
                    .fetch_add(outputs.len() as u64, Ordering::Relaxed);
                let n = outputs.len();
                self.publish(outputs);
                SlotOutcome::Success { outputs: n }
            }
            Ok(Err(e)) => {
                slot.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let quarantined = self
                    .quarantine_on_failure(slot, interval_ns, now, policy)
                    .then(|| slot.name.clone());
                SlotOutcome::Error {
                    message: format!("{}: {e}", slot.name),
                    quarantined,
                }
            }
            Err(payload) => {
                slot.metrics.panics.fetch_add(1, Ordering::Relaxed);
                let quarantined = self
                    .quarantine_on_failure(slot, interval_ns, now, policy)
                    .then(|| slot.name.clone());
                SlotOutcome::Panic {
                    message: format!(
                        "{}: panicked: {}",
                        slot.name,
                        panic_message(payload.as_ref())
                    ),
                    quarantined,
                }
            }
        }
    }

    /// Failure bookkeeping: true when this failure pushed the slot into
    /// quarantine (and armed the first backoff of 2x the interval).
    fn quarantine_on_failure(
        &self,
        slot: &OperatorSlot,
        interval_ns: u64,
        now: Timestamp,
        policy: FaultPolicy,
    ) -> bool {
        if slot.metrics.note_failure(policy) {
            slot.next_due.store(
                now.as_nanos().saturating_add(interval_ns.saturating_mul(2)),
                Ordering::Release,
            );
            true
        } else {
            false
        }
    }

    fn publish(&self, outputs: Vec<Output>) {
        let sinks = self.sinks.read();
        for (topic, reading) in outputs {
            self.query.insert(&topic, reading);
            for sink in sinks.iter() {
                sink.publish(&topic, reading);
            }
        }
    }

    /// Per-plugin, per-operator runtime metric snapshots, sorted by
    /// instance name.
    pub fn operator_metrics(&self) -> Vec<PluginMetricsSnapshot> {
        let plugins = self.plugins.read();
        let mut out: Vec<PluginMetricsSnapshot> = plugins
            .values()
            .map(|p| PluginMetricsSnapshot {
                name: p.config.name.clone(),
                kind: p.config.kind.clone(),
                running: p.running.load(Ordering::Acquire),
                operators: p
                    .operators
                    .iter()
                    .map(|s| s.metrics.snapshot(&s.name))
                    .collect(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Aggregate runtime totals across every loaded operator.
    pub fn metrics_totals(&self) -> OperatorTotals {
        let mut t = OperatorTotals::default();
        for plugin in self.operator_metrics() {
            for op in &plugin.operators {
                t.runs += op.runs;
                t.successes += op.successes;
                t.outputs += op.outputs;
                t.errors += op.errors;
                t.panics += op.panics;
                t.overruns += op.overruns;
                t.quarantined_skips += op.quarantined_skips;
                t.quarantined_operators += op.quarantined as u64;
            }
        }
        t
    }

    /// Full operator-runtime metrics as JSON — ticks, aggregate totals
    /// and per-plugin / per-operator counters, latencies (ns) and
    /// quarantine state. Hosts merge this into their `GET /metrics`.
    pub fn metrics_json(&self) -> serde_json::Value {
        let totals = self.metrics_totals();
        let plugins: Vec<serde_json::Value> = self
            .operator_metrics()
            .iter()
            .map(|p| {
                let ops: Vec<serde_json::Value> = p
                    .operators
                    .iter()
                    .map(|o| {
                        serde_json::json!({
                            "name": o.name,
                            "runs": o.runs,
                            "successes": o.successes,
                            "outputs": o.outputs,
                            "errors": o.errors,
                            "panics": o.panics,
                            "overruns": o.overruns,
                            "quarantined_skips": o.quarantined_skips,
                            "consecutive_failures": o.consecutive_failures,
                            "quarantined": o.quarantined,
                            "last_latency_ns": o.last_latency_ns,
                            "ewma_latency_ns": o.ewma_latency_ns,
                            "max_latency_ns": o.max_latency_ns,
                        })
                    })
                    .collect();
                serde_json::json!({
                    "name": p.name,
                    "kind": p.kind,
                    "status": if p.running { "running" } else { "stopped" },
                    "operators": ops,
                })
            })
            .collect();
        let totals_json = serde_json::json!({
            "runs": totals.runs,
            "successes": totals.successes,
            "outputs": totals.outputs,
            "errors": totals.errors,
            "panics": totals.panics,
            "overruns": totals.overruns,
            "quarantined_skips": totals.quarantined_skips,
            "quarantined_operators": totals.quarantined_operators,
        });
        serde_json::json!({
            "ticks": self.ticks(),
            "totals": totals_json,
            "plugins": plugins,
        })
    }

    /// On-demand invocation (paper §IV-B b): computes the unit named
    /// `unit_topic` in plugin `name`, returning (not publishing) its
    /// outputs — "output data is propagated only as a response".
    pub fn on_demand(&self, name: &str, unit_topic: &Topic, now: Timestamp) -> Result<Vec<Output>> {
        let plugin = {
            let plugins = self.plugins.read();
            Arc::clone(
                plugins
                    .get(name)
                    .ok_or_else(|| DcdbError::NotFound(format!("plugin {name:?}")))?,
            )
        };
        let ctx = ComputeContext {
            query: &self.query,
            now,
        };
        // A refresh failure in one slot must not make units in later
        // slots unreachable: record it, keep searching (the slot's
        // existing unit set is still searchable), and fail only when
        // the unit is found nowhere.
        let mut refresh_errors: Vec<String> = Vec::new();
        for slot in &plugin.operators {
            let mut op = slot.operator.lock();
            if let Err(e) = op.refresh_units(&ctx) {
                refresh_errors.push(format!("{}: {e}", op.name()));
            }
            let idx = op.units().iter().position(|u| &u.name == unit_topic);
            if let Some(idx) = idx {
                return op.compute(idx, &ctx);
            }
        }
        Err(DcdbError::NotFound(if refresh_errors.is_empty() {
            format!("unit {unit_topic} in plugin {name:?}")
        } else {
            format!(
                "unit {unit_topic} in plugin {name:?} (refresh errors: {})",
                refresh_errors.join("; ")
            )
        }))
    }

    /// Unit names of an instance (REST listing).
    pub fn units_of(&self, name: &str) -> Result<Vec<Topic>> {
        let plugins = self.plugins.read();
        let plugin = plugins
            .get(name)
            .ok_or_else(|| DcdbError::NotFound(format!("plugin {name:?}")))?;
        let mut out = Vec::new();
        for slot in &plugin.operators {
            out.extend(slot.operator.lock().units().iter().map(|u| u.name.clone()));
        }
        Ok(out)
    }

    /// Mounts the ODA RESTful API onto a router (paper §V-A):
    ///
    /// * `GET  /analytics/plugins` — list instances;
    /// * `PUT  /analytics/plugins/:name/:action` — start / stop / reload;
    /// * `GET  /analytics/plugins/:name/units` — unit listing;
    /// * `GET  /analytics/compute/:name?unit=<topic>` — on-demand
    ///   computation, outputs returned as JSON.
    pub fn mount_routes(self: &Arc<Self>, router: &mut Router) {
        let mgr = Arc::clone(self);
        router.get("/analytics/plugins", move |_req| {
            let metrics: HashMap<String, PluginMetricsSnapshot> = mgr
                .operator_metrics()
                .into_iter()
                .map(|p| (p.name.clone(), p))
                .collect();
            let list: Vec<serde_json::Value> = mgr
                .list()
                .into_iter()
                .map(|(name, kind, running, ops, units)| {
                    // Per-plugin fault summary folded from the slots.
                    let (mut errors, mut panics, mut overruns, mut quarantined) = (0, 0, 0, 0u64);
                    if let Some(m) = metrics.get(&name) {
                        for o in &m.operators {
                            errors += o.errors;
                            panics += o.panics;
                            overruns += o.overruns;
                            quarantined += o.quarantined as u64;
                        }
                    }
                    serde_json::json!({
                        "name": name,
                        "kind": kind,
                        "status": if running { "running" } else { "stopped" },
                        "operators": ops,
                        "units": units,
                        "errors": errors,
                        "panics": panics,
                        "overruns": overruns,
                        "quarantined_operators": quarantined,
                    })
                })
                .collect();
            Response::json(serde_json::Value::Array(list).to_string())
        });

        let mgr = Arc::clone(self);
        router.route(
            Method::Put,
            "/analytics/plugins/:name/:action",
            move |req| {
                let name = req.path_param("name").unwrap_or_default();
                let action = req.path_param("action").unwrap_or_default();
                let result = match action {
                    "start" => mgr.start(name),
                    "stop" => mgr.stop(name),
                    "reload" => mgr.reload(name),
                    other => Err(DcdbError::Config(format!("unknown action {other:?}"))),
                };
                match result {
                    // Built with json! so an arbitrary echoed path
                    // segment can never produce malformed JSON.
                    Ok(()) => Response::json(
                        serde_json::json!({"ok": true, "action": action}).to_string(),
                    ),
                    Err(e @ DcdbError::NotFound(_)) => {
                        Response::error(Status::NotFound, e.to_string())
                    }
                    Err(e) => Response::error(Status::BadRequest, e.to_string()),
                }
            },
        );

        let mgr = Arc::clone(self);
        router.route(Method::Delete, "/analytics/plugins/:name", move |req| {
            let name = req.path_param("name").unwrap_or_default();
            match mgr.unload(name) {
                Ok(()) => Response::no_content(),
                Err(e) => Response::error(Status::NotFound, e.to_string()),
            }
        });

        let mgr = Arc::clone(self);
        router.get("/analytics/plugins/:name/units", move |req| {
            let name = req.path_param("name").unwrap_or_default();
            match mgr.units_of(name) {
                Ok(units) => {
                    let names: Vec<String> = units.iter().map(|u| u.as_str().to_string()).collect();
                    Response::json(serde_json::to_string(&names).unwrap_or_default())
                }
                Err(e) => Response::error(Status::NotFound, e.to_string()),
            }
        });

        let mgr = Arc::clone(self);
        router.get("/analytics/compute/:name", move |req| {
            let name = req.path_param("name").unwrap_or_default();
            let Some(unit_str) = req.query_param("unit") else {
                return Response::error(Status::BadRequest, "missing ?unit= parameter");
            };
            let Ok(unit_topic) = Topic::parse(unit_str) else {
                return Response::error(Status::BadRequest, "malformed unit topic");
            };
            let now = (mgr.time_source)();
            match mgr.on_demand(name, &unit_topic, now) {
                Ok(outputs) => {
                    let body: Vec<serde_json::Value> = outputs
                        .iter()
                        .map(|(t, r)| {
                            serde_json::json!({
                                "sensor": t.as_str(),
                                "value": r.value,
                                "timestamp": r.ts.as_nanos(),
                            })
                        })
                        .collect();
                    Response::json(serde_json::Value::Array(body).to_string())
                }
                Err(e @ DcdbError::NotFound(_)) => Response::error(Status::NotFound, e.to_string()),
                Err(e) => Response::error(Status::InternalError, e.to_string()),
            }
        });
    }

    /// Spawns a wall-clock scheduler thread ticking every `period_ms`.
    /// The returned handle stops the thread when dropped.
    ///
    /// Scheduling is deadline-based: each wake-up is `period` after the
    /// *previous deadline*, not after the end of the tick, so the real
    /// cadence is `period` rather than `period + tick_duration` and
    /// does not drift under load. A tick slower than the period skips
    /// the missed deadlines (catch-up skip) instead of bursting.
    pub fn start_thread(self: &Arc<Self>, period_ms: u64) -> SchedulerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mgr = Arc::clone(self);
        let period_ms = period_ms.max(1);
        let period = std::time::Duration::from_millis(period_ms);
        let handle = std::thread::Builder::new()
            .name("wintermute-scheduler".into())
            .spawn(move || {
                let mut next_wake = Instant::now();
                while !stop2.load(Ordering::Acquire) {
                    let now = Instant::now();
                    if next_wake > now {
                        std::thread::sleep(next_wake - now);
                    }
                    mgr.tick(Timestamp::now());
                    next_wake += period;
                    let after = Instant::now();
                    if next_wake <= after {
                        // The tick overran one or more periods: realign
                        // to the next future deadline.
                        let behind = after.duration_since(next_wake).as_millis() as u64;
                        let skipped = (behind / period_ms + 1).min(u32::MAX as u64);
                        next_wake += period * skipped as u32;
                    }
                }
            })
            .expect("failed to spawn scheduler");
        SchedulerHandle {
            stop,
            thread: Some(handle),
        }
    }
}

/// Best-effort human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// Handle to the wall-clock scheduler thread; stops it on drop.
pub struct SchedulerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::instantiate;
    use crate::tree::SensorNavigator;
    use crate::unit::Unit;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// Test plugin: copies each unit's latest input to its output,
    /// multiplied by an option factor.
    struct ScalePlugin;

    struct ScaleOperator {
        name: String,
        units: Vec<Unit>,
        factor: i64,
    }

    impl Operator for ScaleOperator {
        fn name(&self) -> &str {
            &self.name
        }
        fn units(&self) -> &[Unit] {
            &self.units
        }
        fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
            let unit = &self.units[i];
            let latest = ctx
                .latest_value(&unit.inputs[0])
                .ok_or_else(|| DcdbError::NotFound(format!("no data: {}", unit.inputs[0])))?;
            Ok(vec![(
                unit.outputs[0].clone(),
                SensorReading::new(latest as i64 * self.factor, ctx.now),
            )])
        }
    }

    impl OperatorPlugin for ScalePlugin {
        fn kind(&self) -> &str {
            "scale"
        }
        fn configure(
            &self,
            config: &PluginConfig,
            nav: &SensorNavigator,
        ) -> Result<Vec<Box<dyn Operator>>> {
            let factor = config.options.u64_or("factor", 2) as i64;
            let resolution = config.resolve(nav)?;
            instantiate(config, resolution.units, |name, units| {
                Ok(Box::new(ScaleOperator {
                    name,
                    units,
                    factor,
                }) as Box<dyn Operator>)
            })
        }
    }

    fn manager_with_data() -> Arc<OperatorManager> {
        let qe = Arc::new(QueryEngine::new(32));
        for n in 0..3 {
            qe.insert(
                &t(&format!("/n{n}/power")),
                SensorReading::new(100 * (n as i64 + 1), Timestamp::from_secs(1)),
            );
        }
        qe.rebuild_navigator();
        let mgr = OperatorManager::with_time_source(qe, Box::new(|| Timestamp::from_secs(100)));
        mgr.register_plugin(Box::new(ScalePlugin));
        mgr
    }

    fn scale_config(name: &str, interval_ms: u64) -> PluginConfig {
        PluginConfig::online(name, "scale", interval_ms)
            .with_patterns(&["<topdown>power"], &["<topdown>power2"])
    }

    #[test]
    fn load_and_tick_publishes_outputs() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        let report = mgr.tick(Timestamp::from_secs(2));
        assert_eq!(report.operators_run, 1);
        assert_eq!(report.outputs_published, 3);
        assert!(report.errors.is_empty());
        // Outputs landed in the query engine (pipeline-visible).
        let got = mgr
            .query_engine()
            .query(&t("/n1/power2"), crate::query::QueryMode::Latest);
        assert_eq!(got[0].value, 400);
    }

    #[test]
    fn interval_gating() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 10_000)).unwrap();
        assert_eq!(mgr.tick(Timestamp::from_secs(1)).operators_run, 1);
        // Not due again within the interval.
        assert_eq!(mgr.tick(Timestamp::from_secs(5)).operators_run, 0);
        assert_eq!(mgr.tick(Timestamp::from_secs(12)).operators_run, 1);
    }

    #[test]
    fn stop_start_lifecycle() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        assert!(mgr.is_running("s1"));
        mgr.stop("s1").unwrap();
        assert!(!mgr.is_running("s1"));
        assert_eq!(mgr.tick(Timestamp::from_secs(2)).operators_run, 0);
        mgr.start("s1").unwrap();
        assert_eq!(mgr.tick(Timestamp::from_secs(3)).operators_run, 1);
        assert!(mgr.stop("ghost").is_err());
    }

    #[test]
    fn duplicate_and_unknown_loads_fail() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        assert!(mgr.load(scale_config("s1", 1000)).is_err());
        let bad = PluginConfig::online("x", "nope", 1000);
        assert!(mgr.load(bad).is_err());
    }

    #[test]
    fn parallel_unit_mode_spawns_per_unit_operators() {
        let mgr = manager_with_data();
        let cfg = scale_config("par", 1000).with_unit_mode(crate::operator::UnitMode::Parallel);
        mgr.load(cfg).unwrap();
        let list = mgr.list();
        assert_eq!(list.len(), 1);
        let (_, _, _, ops, units) = &list[0];
        assert_eq!(*ops, 3);
        assert_eq!(*units, 3);
        let report = mgr.tick(Timestamp::from_secs(2));
        assert_eq!(report.operators_run, 3);
        assert_eq!(report.outputs_published, 3);
    }

    #[test]
    fn reload_picks_up_new_sensors() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        assert_eq!(mgr.units_of("s1").unwrap().len(), 3);
        // A new node appears.
        mgr.query_engine().insert(
            &t("/n9/power"),
            SensorReading::new(900, Timestamp::from_secs(1)),
        );
        mgr.query_engine().rebuild_navigator();
        mgr.reload("s1").unwrap();
        assert_eq!(mgr.units_of("s1").unwrap().len(), 4);
    }

    #[test]
    fn on_demand_returns_without_publishing() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        let outputs = mgr
            .on_demand("s1", &t("/n0"), Timestamp::from_secs(50))
            .unwrap();
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].1.value, 200);
        // Not published to the engine.
        assert!(mgr
            .query_engine()
            .query(&t("/n0/power2"), crate::query::QueryMode::Latest)
            .is_empty());
        assert!(mgr.on_demand("s1", &t("/ghost"), Timestamp::ZERO).is_err());
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mgr = manager_with_data();
        mgr.load(scale_config("good", 1000)).unwrap();
        // A plugin whose input sensor never gets data.
        let cfg = PluginConfig::online("bad", "scale", 1000)
            .with_patterns(&["<topdown>power"], &["<topdown>out"]);
        mgr.load(cfg).unwrap();
        // Make one unit's input disappear logically by pointing at an
        // empty engine: instead, drop data by using an impossible unit.
        // Simpler: both plugins read the same inputs, so force an error
        // by computing before any data exists for a *new* sensor.
        let report = mgr.tick(Timestamp::from_secs(2));
        // Both plugins actually succeed here; verify the report shape.
        assert_eq!(report.errors.len(), 0);
        assert_eq!(report.operators_run, 2);
    }

    #[test]
    fn sink_receives_outputs() {
        struct CountingSink(std::sync::atomic::AtomicUsize);
        impl SensorSink for CountingSink {
            fn publish(&self, _t: &Topic, _r: SensorReading) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mgr = manager_with_data();
        let sink = Arc::new(CountingSink(Default::default()));
        mgr.add_sink(sink.clone());
        mgr.load(scale_config("s1", 1000)).unwrap();
        mgr.tick(Timestamp::from_secs(2));
        assert_eq!(sink.0.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn rest_routes_end_to_end() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        let mut router = Router::new();
        mgr.mount_routes(&mut router);

        let resp = router.dispatch(dcdb_rest::Request::new(Method::Get, "/analytics/plugins"));
        assert_eq!(resp.status.code(), 200);
        assert!(resp.body_str().contains("\"s1\""));
        assert!(resp.body_str().contains("running"));

        let resp = router.dispatch(dcdb_rest::Request::new(
            Method::Put,
            "/analytics/plugins/s1/stop",
        ));
        assert_eq!(resp.status.code(), 200);
        assert!(!mgr.is_running("s1"));

        let resp = router.dispatch(dcdb_rest::Request::new(
            Method::Put,
            "/analytics/plugins/ghost/start",
        ));
        assert_eq!(resp.status.code(), 404);

        let resp = router.dispatch(dcdb_rest::Request::new(
            Method::Get,
            "/analytics/plugins/s1/units",
        ));
        assert!(resp.body_str().contains("/n0"));

        let resp = router.dispatch(dcdb_rest::Request::new(
            Method::Get,
            "/analytics/compute/s1?unit=/n2",
        ));
        assert_eq!(resp.status.code(), 200);
        assert!(
            resp.body_str().contains("\"value\":600"),
            "{}",
            resp.body_str()
        );

        let resp = router.dispatch(dcdb_rest::Request::new(
            Method::Get,
            "/analytics/compute/s1",
        ));
        assert_eq!(resp.status.code(), 400);
    }

    /// Test plugin whose operator panics on every computation.
    struct PanicPlugin;

    struct PanicOperator {
        units: Vec<Unit>,
    }

    impl Operator for PanicOperator {
        fn name(&self) -> &str {
            "boom"
        }
        fn units(&self) -> &[Unit] {
            &self.units
        }
        fn compute(&mut self, _i: usize, _ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
            panic!("injected operator panic");
        }
    }

    impl OperatorPlugin for PanicPlugin {
        fn kind(&self) -> &str {
            "panic"
        }
        fn configure(
            &self,
            config: &PluginConfig,
            nav: &SensorNavigator,
        ) -> Result<Vec<Box<dyn Operator>>> {
            let resolution = config.resolve(nav)?;
            instantiate(config, resolution.units, |_, units| {
                Ok(Box::new(PanicOperator { units }) as Box<dyn Operator>)
            })
        }
    }

    fn assert_accounting(report: &TickReport) {
        assert_eq!(
            report.operators_run,
            report.successes
                + report.errors.len()
                + report.panics.len()
                + report.overruns
                + report.quarantined_skips,
            "{report:?}"
        );
    }

    #[test]
    fn panicking_operator_is_contained_not_fatal() {
        let mgr = manager_with_data();
        mgr.register_plugin(Box::new(PanicPlugin));
        mgr.load(scale_config("good", 1000)).unwrap();
        mgr.load(
            PluginConfig::online("bad", "panic", 1000)
                .with_patterns(&["<topdown>power"], &["<topdown>boom"]),
        )
        .unwrap();
        let report = mgr.tick(Timestamp::from_secs(2));
        assert_eq!(report.operators_run, 2);
        assert_eq!(report.successes, 1);
        assert_eq!(report.panics.len(), 1);
        assert!(report.panics[0].contains("injected operator panic"));
        assert_eq!(report.outputs_published, 3);
        assert_accounting(&report);
        // The healthy plugin's outputs made it through.
        let got = mgr
            .query_engine()
            .query(&t("/n1/power2"), crate::query::QueryMode::Latest);
        assert_eq!(got[0].value, 400);
    }

    #[test]
    fn quarantine_engages_backs_off_and_resumes_via_start() {
        let mgr = manager_with_data();
        mgr.register_plugin(Box::new(PanicPlugin));
        mgr.set_fault_policy(FaultPolicy {
            quarantine_threshold: 2,
            backoff_cap: 8,
        });
        mgr.load(
            PluginConfig::online("bad", "panic", 1000)
                .with_patterns(&["<topdown>power"], &["<topdown>boom"]),
        )
        .unwrap();

        // Two consecutive panics cross the threshold.
        assert_eq!(mgr.tick(Timestamp::from_secs(1)).panics.len(), 1);
        let report = mgr.tick(Timestamp::from_secs(2));
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.newly_quarantined, vec!["boom".to_string()]);

        // First backoff: 2x interval — not due before t=4.
        assert_eq!(mgr.tick(Timestamp::from_secs(3)).operators_run, 0);
        let report = mgr.tick(Timestamp::from_secs(4));
        assert_eq!(report.quarantined_skips, 1);
        assert!(
            report.panics.is_empty(),
            "quarantined operator must not run"
        );
        assert_accounting(&report);

        // Second visit backs off 4x: due again at t=8, then 8x (cap).
        assert_eq!(mgr.tick(Timestamp::from_secs(7)).operators_run, 0);
        assert_eq!(mgr.tick(Timestamp::from_secs(8)).quarantined_skips, 1);

        let m = &mgr.operator_metrics()[0].operators[0];
        assert_eq!(m.panics, 2);
        assert_eq!(m.quarantined_skips, 2);
        assert_eq!(m.runs, 4);
        assert!(m.quarantined);
        assert_eq!(
            m.runs,
            m.successes + m.errors + m.panics + m.overruns + m.quarantined_skips
        );
        let totals = mgr.metrics_totals();
        assert_eq!(totals.quarantined_operators, 1);

        // PUT .../start semantics: quarantine cleared, slot re-armed.
        mgr.start("bad").unwrap();
        assert!(!mgr.operator_metrics()[0].operators[0].quarantined);
        let report = mgr.tick(Timestamp::from_secs(9));
        assert_eq!(report.panics.len(), 1, "resumed operator runs again");
        // One failure since resume: below the threshold of 2.
        let m = &mgr.operator_metrics()[0].operators[0];
        assert_eq!(m.consecutive_failures, 1);
        assert!(!m.quarantined);
    }

    #[test]
    fn metrics_json_shape_and_latency() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        mgr.tick(Timestamp::from_secs(2));
        let v = mgr.metrics_json();
        assert_eq!(v.get("ticks").unwrap().as_u64(), Some(1));
        let totals = v.get("totals").unwrap();
        assert_eq!(totals.get("runs").unwrap().as_u64(), Some(1));
        assert_eq!(totals.get("successes").unwrap().as_u64(), Some(1));
        let plugins = v.get("plugins").unwrap().as_array().unwrap();
        let op = &plugins[0].get("operators").unwrap().as_array().unwrap()[0];
        assert_eq!(op.get("outputs").unwrap().as_u64(), Some(3));
        assert_eq!(op.get("quarantined").unwrap().as_bool(), Some(false));
        let last = op.get("last_latency_ns").unwrap().as_u64().unwrap();
        assert!(last > 0);
        assert!(op.get("ewma_latency_ns").unwrap().as_u64().unwrap() > 0);
        assert!(op.get("max_latency_ns").unwrap().as_u64().unwrap() >= last);
    }

    #[test]
    fn action_response_is_valid_json() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1000)).unwrap();
        let mut router = Router::new();
        mgr.mount_routes(&mut router);
        let resp = router.dispatch(dcdb_rest::Request::new(
            Method::Put,
            "/analytics/plugins/s1/stop",
        ));
        let v: serde_json::Value = serde_json::from_str(&resp.body_str()).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("action").unwrap().as_str(), Some("stop"));
        // The plugin listing carries the fault summary fields.
        let resp = router.dispatch(dcdb_rest::Request::new(Method::Get, "/analytics/plugins"));
        let v: serde_json::Value = serde_json::from_str(&resp.body_str()).unwrap();
        let first = &v.as_array().unwrap()[0];
        assert_eq!(
            first.get("quarantined_operators").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(first.get("panics").unwrap().as_u64(), Some(0));
    }

    /// Operator whose `refresh_units` fails; its pre-resolved units
    /// remain searchable.
    struct RefreshFailOperator {
        name: String,
        units: Vec<Unit>,
        fail_refresh: bool,
    }

    impl Operator for RefreshFailOperator {
        fn name(&self) -> &str {
            &self.name
        }
        fn units(&self) -> &[Unit] {
            &self.units
        }
        fn refresh_units(&mut self, _ctx: &ComputeContext<'_>) -> Result<()> {
            if self.fail_refresh {
                Err(DcdbError::InvalidState("refresh failed".into()))
            } else {
                Ok(())
            }
        }
        fn compute(&mut self, i: usize, ctx: &ComputeContext<'_>) -> Result<Vec<Output>> {
            Ok(vec![(
                self.units[i].outputs[0].clone(),
                SensorReading::new(7, ctx.now),
            )])
        }
    }

    /// Splits its units across two slots; the first slot's operator
    /// always fails `refresh_units`.
    struct TwoSlotPlugin;

    impl OperatorPlugin for TwoSlotPlugin {
        fn kind(&self) -> &str {
            "twoslot"
        }
        fn configure(
            &self,
            config: &PluginConfig,
            nav: &SensorNavigator,
        ) -> Result<Vec<Box<dyn Operator>>> {
            let mut units = config.resolve(nav)?.units;
            let rest = units.split_off(1);
            Ok(vec![
                Box::new(RefreshFailOperator {
                    name: "front".into(),
                    units,
                    fail_refresh: true,
                }),
                Box::new(RefreshFailOperator {
                    name: "back".into(),
                    units: rest,
                    fail_refresh: false,
                }),
            ])
        }
    }

    #[test]
    fn on_demand_searches_past_refresh_errors() {
        // Regression: a refresh_units error in an earlier slot used to
        // abort the search, making units in later slots permanently
        // unreachable on demand.
        let mgr = manager_with_data();
        mgr.register_plugin(Box::new(TwoSlotPlugin));
        mgr.load(
            PluginConfig::online("ts", "twoslot", 1000)
                .with_patterns(&["<topdown>power"], &["<topdown>out"]),
        )
        .unwrap();
        // /n1 lives in the second slot, behind the failing first slot.
        let outputs = mgr
            .on_demand("ts", &t("/n1"), Timestamp::from_secs(50))
            .unwrap();
        assert_eq!(outputs[0].1.value, 7);
        // A unit found nowhere reports the refresh errors it saw.
        let err = mgr
            .on_demand("ts", &t("/ghost"), Timestamp::from_secs(50))
            .unwrap_err();
        assert!(err.to_string().contains("refresh errors"), "{err}");
        assert!(err.to_string().contains("refresh failed"), "{err}");
    }

    #[test]
    fn scheduler_thread_ticks() {
        let mgr = manager_with_data();
        mgr.load(scale_config("s1", 1)).unwrap();
        {
            let _handle = mgr.start_thread(5);
            std::thread::sleep(std::time::Duration::from_millis(80));
        } // handle dropped: thread stopped
        let got = mgr
            .query_engine()
            .query(&t("/n0/power2"), crate::query::QueryMode::Latest);
        assert!(!got.is_empty(), "scheduler never ran");
    }
}
