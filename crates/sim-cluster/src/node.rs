//! Per-node hardware simulation.
//!
//! A [`NodeSimulator`] produces every sensor a CooLMUC-3 Pusher samples
//! on a real node — node power / temperature / free memory / CPU idle
//! time plus per-core performance counters — as deterministic functions
//! of the application model currently scheduled on the node and the
//! node's behavioural profile. Counters (cycles, instructions, cache
//! misses, flops) are **monotonic**, exactly like perfevent counters;
//! derived metrics such as CPI are computed downstream by the
//! perfmetrics plugin from counter deltas, as in the paper (§VI-C).

use crate::apps::{hash01, AppModel};
use crate::topology::Topology;
use dcdb_common::reading::{encode_f64, SensorReading};
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Nominal KNL core clock (Xeon Phi 7210 @ 1.3 GHz).
pub const CORE_HZ: f64 = 1.3e9;
/// Node idle power draw in watts.
pub const IDLE_POWER_W: f64 = 45.0;
/// Maximum dynamic power on top of idle, in watts.
pub const DYNAMIC_POWER_W: f64 = 230.0;
/// Inlet temperature in °C.
pub const AMBIENT_C: f64 = 38.0;
/// Node RAM in MiB (96 GB per CooLMUC-3 node).
pub const TOTAL_MEM_MIB: f64 = 96.0 * 1024.0;

/// Long-term behavioural class of a node, driving the clustering case
/// study's structure (paper §VI-D: one under-utilized cluster, one
/// normal, one heavily loaded, plus outliers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProfileClass {
    /// Scheduled rarely: high CPU idle time, low power and temperature.
    Underutilized,
    /// Typical duty cycle.
    Normal,
    /// Almost always busy; average power up to ~200 W.
    Heavy,
    /// Anomaly: draws ~20 % more power than its idle time predicts
    /// (the concerning outlier the paper reports investigating).
    ExcessPower,
}

impl ProfileClass {
    /// Fraction of time the node runs jobs under this profile.
    pub fn duty_cycle(self) -> f64 {
        match self {
            ProfileClass::Underutilized => 0.15,
            ProfileClass::Normal => 0.55,
            ProfileClass::Heavy => 0.95,
            ProfileClass::ExcessPower => 0.55,
        }
    }

    /// Multiplier applied to the node's power draw.
    pub fn power_factor(self) -> f64 {
        match self {
            ProfileClass::ExcessPower => 1.22,
            _ => 1.0,
        }
    }

    /// Assigns the paper-like profile mix across `n` nodes
    /// deterministically: ~20 % under-utilized, ~62 % normal, ~16 %
    /// heavy, plus a couple of anomalous nodes.
    pub fn assign(n: usize, seed: u64) -> Vec<ProfileClass> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let u = hash01(i as u64, seed);
            out.push(if u < 0.20 {
                ProfileClass::Underutilized
            } else if u < 0.82 {
                ProfileClass::Normal
            } else {
                ProfileClass::Heavy
            });
        }
        // Plant exactly two anomalous nodes (deterministic positions).
        if n >= 8 {
            let a = (hash01(seed, 1) * n as f64) as usize % n;
            let mut b = (hash01(seed, 2) * n as f64) as usize % n;
            if b == a {
                b = (b + 1) % n;
            }
            out[a] = ProfileClass::ExcessPower;
            out[b] = ProfileClass::ExcessPower;
        }
        out
    }
}

/// One sampled sensor value with its topic.
pub type Sample = (Topic, SensorReading);

/// Simulates one compute node's sensors.
#[derive(Debug)]
pub struct NodeSimulator {
    node: usize,
    topology: Topology,
    profile: ProfileClass,
    rng: StdRng,
    app: Option<AppModel>,
    app_start: Timestamp,
    /// Monotonic per-core counters.
    cycles: Vec<u64>,
    instructions: Vec<u64>,
    cache_misses: Vec<u64>,
    flops: Vec<u64>,
    /// Monotonic idle-time accumulator (milliseconds).
    idle_ms: u64,
    /// Monotonic Omni-Path byte counters.
    opa_xmit: u64,
    opa_rcv: u64,
    last_tick: Option<Timestamp>,
    /// Cached topics (computed once; sampling is on the hot path).
    node_topics: NodeTopics,
}

#[derive(Debug)]
struct NodeTopics {
    power: Topic,
    temp: Topic,
    memfree: Topic,
    cpu_idle: Topic,
    opa_xmit: Topic,
    opa_rcv: Topic,
    cores: Vec<CoreTopics>,
}

#[derive(Debug)]
struct CoreTopics {
    cycles: Topic,
    instructions: Topic,
    cache_misses: Topic,
    flops: Topic,
}

impl NodeSimulator {
    /// Creates the simulator for `node` in `topology`.
    pub fn new(topology: Topology, node: usize, profile: ProfileClass, seed: u64) -> Self {
        let cores = topology.cores_per_node;
        let node_topic = topology.node_topic(node);
        let node_topics = NodeTopics {
            power: node_topic.child("power").unwrap(),
            temp: node_topic.child("temp").unwrap(),
            memfree: node_topic.child("memfree").unwrap(),
            cpu_idle: node_topic.child("cpu-idle").unwrap(),
            opa_xmit: node_topic.child("opa-xmit-bytes").unwrap(),
            opa_rcv: node_topic.child("opa-rcv-bytes").unwrap(),
            cores: (0..cores)
                .map(|c| {
                    let ct = topology.core_topic(node, c);
                    CoreTopics {
                        cycles: ct.child("cycles").unwrap(),
                        instructions: ct.child("instructions").unwrap(),
                        cache_misses: ct.child("cache-misses").unwrap(),
                        flops: ct.child("flops").unwrap(),
                    }
                })
                .collect(),
        };
        NodeSimulator {
            node,
            topology,
            profile,
            rng: StdRng::seed_from_u64(seed ^ (node as u64).wrapping_mul(0x9E37)),
            app: None,
            app_start: Timestamp::ZERO,
            cycles: vec![0; cores],
            instructions: vec![0; cores],
            cache_misses: vec![0; cores],
            flops: vec![0; cores],
            idle_ms: 0,
            opa_xmit: 0,
            opa_rcv: 0,
            last_tick: None,
            node_topics,
        }
    }

    /// The node's global index.
    pub fn node_index(&self) -> usize {
        self.node
    }

    /// The node's behavioural profile.
    pub fn profile(&self) -> ProfileClass {
        self.profile
    }

    /// The application currently running, if any.
    pub fn current_app(&self) -> Option<AppModel> {
        self.app
    }

    /// Starts an application run at `now` (replaces any current one).
    pub fn start_app(&mut self, app: AppModel, now: Timestamp) {
        self.app = Some(app);
        self.app_start = now;
    }

    /// Stops the running application (node goes idle).
    pub fn stop_app(&mut self) {
        self.app = None;
    }

    /// Samples every sensor at `now`, advancing internal counters by the
    /// time elapsed since the previous tick.
    ///
    /// Values are encoded like DCDB would publish them:
    /// * `power` — watts (integer);
    /// * `temp` — fixed-point °C ([`encode_f64`]);
    /// * `memfree` — MiB (integer);
    /// * `cpu-idle` — monotonic idle milliseconds;
    /// * counters — raw monotonic counts.
    pub fn sample(&mut self, now: Timestamp) -> Vec<Sample> {
        let dt_s = match self.last_tick {
            Some(prev) => (now.elapsed_since(prev)) as f64 / 1e9,
            None => 0.0,
        };
        self.last_tick = Some(now);

        let app = self.app.unwrap_or(AppModel::Idle);
        let t_in_run = (now.elapsed_since(self.app_start)) as f64 / 1e9;
        let mut out = Vec::with_capacity(6 + self.node_topics.cores.len() * 4);

        // --- Advance per-core counters. ---
        let n_cores = self.node_topics.cores.len();
        let mut busy_frac_sum = 0.0;
        for core in 0..n_cores {
            let noise: f64 = self.rng.gen();
            let cpi = app.core_cpi(core, t_in_run, noise).max(0.25);
            let idle_frac = app.idle_fraction(t_in_run, noise).clamp(0.0, 1.0);
            busy_frac_sum += 1.0 - idle_frac;
            let d_cycles = (CORE_HZ * dt_s * (1.0 - idle_frac)) as u64;
            let d_instr = (d_cycles as f64 / cpi) as u64;
            // Cache misses rise with CPI (stalls) — a plausible coupling
            // that gives perfmetrics a second derived metric to chew on.
            let miss_rate = (0.001 * cpi).min(0.2);
            let d_miss = (d_instr as f64 * miss_rate) as u64;
            let d_flops = (d_instr as f64 * 0.35) as u64;
            self.cycles[core] += d_cycles;
            self.instructions[core] += d_instr;
            self.cache_misses[core] += d_miss;
            self.flops[core] += d_flops;

            let ct = &self.node_topics.cores[core];
            out.push((
                ct.cycles.clone(),
                SensorReading::new(self.cycles[core] as i64, now),
            ));
            out.push((
                ct.instructions.clone(),
                SensorReading::new(self.instructions[core] as i64, now),
            ));
            out.push((
                ct.cache_misses.clone(),
                SensorReading::new(self.cache_misses[core] as i64, now),
            ));
            out.push((
                ct.flops.clone(),
                SensorReading::new(self.flops[core] as i64, now),
            ));
        }
        let busy_frac = if n_cores > 0 {
            busy_frac_sum / n_cores as f64
        } else {
            0.0
        };

        // --- Node-level sensors. ---
        let u = app.power_utilization(t_in_run, self.rng.gen());
        // Short-lived turbo/noise spikes the paper's model fails to
        // predict (§VI-B): rare, brief, additive.
        let spike = if self.rng.gen::<f64>() < 0.03 {
            self.rng.gen_range(5.0..25.0)
        } else {
            0.0
        };
        let power_w = (IDLE_POWER_W + DYNAMIC_POWER_W * u) * self.profile.power_factor()
            + spike
            + self.rng.gen_range(-2.0..2.0);
        let temp_c = AMBIENT_C + 0.055 * power_w + self.rng.gen_range(-0.4..0.4);
        let mem_used = TOTAL_MEM_MIB * (0.08 + 0.6 * busy_frac);
        let memfree = (TOTAL_MEM_MIB - mem_used).max(0.0);
        let idle_now = 1.0 - busy_frac;
        self.idle_ms += (dt_s * 1000.0 * idle_now) as u64;
        // Omni-Path byte counters: symmetric traffic with a small skew.
        let net_rate = app.network_bytes_per_s(t_in_run, self.rng.gen());
        self.opa_xmit += (net_rate * dt_s) as u64;
        self.opa_rcv += (net_rate * dt_s * 0.97) as u64;

        out.push((
            self.node_topics.power.clone(),
            SensorReading::new(power_w.round() as i64, now),
        ));
        out.push((
            self.node_topics.temp.clone(),
            SensorReading::new(encode_f64(temp_c), now),
        ));
        out.push((
            self.node_topics.memfree.clone(),
            SensorReading::new(memfree.round() as i64, now),
        ));
        out.push((
            self.node_topics.cpu_idle.clone(),
            SensorReading::new(self.idle_ms as i64, now),
        ));
        out.push((
            self.node_topics.opa_xmit.clone(),
            SensorReading::new(self.opa_xmit as i64, now),
        ));
        out.push((
            self.node_topics.opa_rcv.clone(),
            SensorReading::new(self.opa_rcv as i64, now),
        ));
        out
    }

    /// Samples only the four node-level sensors (power, temp, memfree,
    /// cpu-idle), skipping the per-core counters. Long-horizon
    /// experiments that never read counters (the clustering case study)
    /// use this to avoid paying for 256 counter updates per node-tick.
    pub fn sample_node_level(&mut self, now: Timestamp) -> Vec<Sample> {
        let dt_s = match self.last_tick {
            Some(prev) => (now.elapsed_since(prev)) as f64 / 1e9,
            None => 0.0,
        };
        self.last_tick = Some(now);
        let app = self.app.unwrap_or(AppModel::Idle);
        let t_in_run = (now.elapsed_since(self.app_start)) as f64 / 1e9;

        let noise: f64 = self.rng.gen();
        let idle_frac = app.idle_fraction(t_in_run, noise).clamp(0.0, 1.0);
        let busy_frac = 1.0 - idle_frac;
        let u = app.power_utilization(t_in_run, self.rng.gen());
        let spike = if self.rng.gen::<f64>() < 0.03 {
            self.rng.gen_range(5.0..25.0)
        } else {
            0.0
        };
        let power_w = (IDLE_POWER_W + DYNAMIC_POWER_W * u) * self.profile.power_factor()
            + spike
            + self.rng.gen_range(-2.0..2.0);
        let temp_c = AMBIENT_C + 0.055 * power_w + self.rng.gen_range(-0.4..0.4);
        let mem_used = TOTAL_MEM_MIB * (0.08 + 0.6 * busy_frac);
        let memfree = (TOTAL_MEM_MIB - mem_used).max(0.0);
        self.idle_ms += (dt_s * 1000.0 * idle_frac) as u64;

        vec![
            (
                self.node_topics.power.clone(),
                SensorReading::new(power_w.round() as i64, now),
            ),
            (
                self.node_topics.temp.clone(),
                SensorReading::new(encode_f64(temp_c), now),
            ),
            (
                self.node_topics.memfree.clone(),
                SensorReading::new(memfree.round() as i64, now),
            ),
            (
                self.node_topics.cpu_idle.clone(),
                SensorReading::new(self.idle_ms as i64, now),
            ),
        ]
    }

    /// The topology this node belongs to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> NodeSimulator {
        NodeSimulator::new(Topology::small(), 1, ProfileClass::Normal, 42)
    }

    fn tick_many(sim: &mut NodeSimulator, ticks: usize) -> Vec<Vec<Sample>> {
        (0..ticks)
            .map(|i| sim.sample(Timestamp::from_secs(1 + i as u64)))
            .collect()
    }

    #[test]
    fn sample_covers_all_sensors() {
        let mut s = sim();
        let samples = s.sample(Timestamp::from_secs(1));
        // 4 node-level + 2 OPA + 4 cores × 4 counters.
        assert_eq!(samples.len(), 6 + 4 * 4);
        let topics: Vec<&str> = samples.iter().map(|(t, _)| t.as_str()).collect();
        assert!(topics.contains(&"/rack00/node01/power"));
        assert!(topics.contains(&"/rack00/node01/cpu03/flops"));
    }

    #[test]
    fn counters_are_monotonic() {
        let mut s = sim();
        s.start_app(AppModel::Lammps, Timestamp::from_secs(1));
        let runs = tick_many(&mut s, 20);
        let idx_cycles = runs[0]
            .iter()
            .position(|(t, _)| t.as_str() == "/rack00/node01/cpu00/cycles")
            .unwrap();
        let mut prev = -1i64;
        for r in &runs {
            let v = r[idx_cycles].1.value;
            assert!(v >= prev, "cycles went backwards: {prev} -> {v}");
            prev = v;
        }
        assert!(prev > 0, "cycles never advanced");
    }

    #[test]
    fn idle_node_draws_little_power() {
        let mut s = sim();
        let runs = tick_many(&mut s, 10);
        let powers: Vec<i64> = runs
            .iter()
            .flat_map(|r| r.iter())
            .filter(|(t, _)| t.name() == "power")
            .map(|(_, r)| r.value)
            .collect();
        let avg = powers.iter().sum::<i64>() as f64 / powers.len() as f64;
        assert!(avg < 90.0, "idle avg power {avg}");
    }

    #[test]
    fn busy_node_draws_much_more_power() {
        let mut s = sim();
        s.start_app(AppModel::Hpl, Timestamp::from_secs(1));
        let runs = tick_many(&mut s, 10);
        let powers: Vec<i64> = runs
            .iter()
            .flat_map(|r| r.iter())
            .filter(|(t, _)| t.name() == "power")
            .map(|(_, r)| r.value)
            .collect();
        let avg = powers.iter().sum::<i64>() as f64 / powers.len() as f64;
        assert!(avg > 220.0, "HPL avg power {avg}");
    }

    #[test]
    fn temperature_tracks_power() {
        let mut idle = NodeSimulator::new(Topology::small(), 0, ProfileClass::Normal, 1);
        let mut busy = NodeSimulator::new(Topology::small(), 0, ProfileClass::Normal, 1);
        busy.start_app(AppModel::Hpl, Timestamp::from_secs(1));
        let temp_of = |runs: &Vec<Vec<Sample>>| {
            let vals: Vec<f64> = runs
                .iter()
                .flat_map(|r| r.iter())
                .filter(|(t, _)| t.name() == "temp")
                .map(|(_, r)| dcdb_common::reading::decode_f64(r.value))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let ti = temp_of(&tick_many(&mut idle, 10));
        let tb = temp_of(&tick_many(&mut busy, 10));
        assert!(tb > ti + 5.0, "busy {tb} vs idle {ti}");
    }

    #[test]
    fn excess_power_profile_draws_more() {
        let mut normal = NodeSimulator::new(Topology::small(), 0, ProfileClass::Normal, 9);
        let mut anomalous = NodeSimulator::new(Topology::small(), 0, ProfileClass::ExcessPower, 9);
        normal.start_app(AppModel::Lammps, Timestamp::from_secs(1));
        anomalous.start_app(AppModel::Lammps, Timestamp::from_secs(1));
        let avg_power = |runs: &Vec<Vec<Sample>>| {
            let vals: Vec<i64> = runs
                .iter()
                .flat_map(|r| r.iter())
                .filter(|(t, _)| t.name() == "power")
                .map(|(_, r)| r.value)
                .collect();
            vals.iter().sum::<i64>() as f64 / vals.len() as f64
        };
        let pn = avg_power(&tick_many(&mut normal, 20));
        let pa = avg_power(&tick_many(&mut anomalous, 20));
        assert!(pa > pn * 1.12, "anomalous {pa} vs normal {pn}");
    }

    #[test]
    fn idle_counter_grows_only_when_idle() {
        let mut s = sim();
        s.start_app(AppModel::Hpl, Timestamp::from_secs(1));
        let runs = tick_many(&mut s, 5);
        let idle_vals: Vec<i64> = runs
            .iter()
            .flat_map(|r| r.iter())
            .filter(|(t, _)| t.name() == "cpu-idle")
            .map(|(_, r)| r.value)
            .collect();
        // Busy node: idle accumulates very slowly (< 10% of wall time).
        let total_idle = *idle_vals.last().unwrap();
        assert!(total_idle < 400, "idle ms {total_idle} over 4 s busy");
    }

    #[test]
    fn profile_assignment_mix() {
        let profiles = ProfileClass::assign(148, 7);
        let count = |p: ProfileClass| profiles.iter().filter(|&&x| x == p).count();
        let under = count(ProfileClass::Underutilized);
        let normal = count(ProfileClass::Normal);
        let heavy = count(ProfileClass::Heavy);
        let anom = count(ProfileClass::ExcessPower);
        assert_eq!(anom, 2);
        assert!(under > 15 && under < 45, "under {under}");
        assert!(normal > 70, "normal {normal}");
        assert!(heavy > 10, "heavy {heavy}");
        assert_eq!(under + normal + heavy + anom, 148);
    }

    #[test]
    fn node_level_sampling_matches_full_sampling_statistically() {
        let mut full = NodeSimulator::new(Topology::small(), 0, ProfileClass::Normal, 3);
        let mut lite = NodeSimulator::new(Topology::small(), 0, ProfileClass::Normal, 3);
        full.start_app(AppModel::Hpl, Timestamp::from_secs(1));
        lite.start_app(AppModel::Hpl, Timestamp::from_secs(1));
        let mut p_full = 0.0;
        let mut p_lite = 0.0;
        for s in 1..=30u64 {
            for (t, r) in full.sample(Timestamp::from_secs(s)) {
                if t.name() == "power" {
                    p_full += r.value as f64;
                }
            }
            let samples = lite.sample_node_level(Timestamp::from_secs(s));
            assert_eq!(samples.len(), 4);
            for (t, r) in samples {
                if t.name() == "power" {
                    p_lite += r.value as f64;
                }
            }
        }
        // Same app, same profile: averages agree within a few percent
        // (different RNG consumption, same model).
        let (a, b) = (p_full / 30.0, p_lite / 30.0);
        assert!((a - b).abs() / a < 0.05, "full {a} vs node-level {b}");
    }

    #[test]
    fn node_level_idle_counter_is_monotonic() {
        let mut sim = NodeSimulator::new(Topology::small(), 1, ProfileClass::Normal, 4);
        let mut prev = -1i64;
        for s in 1..=10u64 {
            let samples = sim.sample_node_level(Timestamp::from_secs(s));
            let idle = samples
                .iter()
                .find(|(t, _)| t.name() == "cpu-idle")
                .unwrap()
                .1
                .value;
            assert!(idle >= prev);
            prev = idle;
        }
        // Node is idle: counter grows near 1000 ms per second.
        assert!(prev > 8000, "idle {prev}");
    }

    #[test]
    fn deterministic_given_seed() {
        let runs_a = tick_many(
            &mut NodeSimulator::new(Topology::small(), 2, ProfileClass::Heavy, 5),
            5,
        );
        let runs_b = tick_many(
            &mut NodeSimulator::new(Topology::small(), 2, ProfileClass::Heavy, 5),
            5,
        );
        for (a, b) in runs_a.iter().zip(runs_b.iter()) {
            assert_eq!(a, b);
        }
    }
}
