//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, tiny generator. The exact output *stream* differs
//! from upstream rand's ChaCha12-based `StdRng`, so seeded sequences
//! are reproducible within this workspace but not bit-compatible with
//! upstream; workspace code asserts statistical properties, not
//! upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS "entropy" (here: a fixed seed —
    /// the workspace only uses explicitly seeded RNGs).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling. Keeping `SampleRange` generic
/// over one `T: SampleUniform` impl (instead of per-type range impls)
/// matters for inference: `f64_expr + rng.gen_range(-2.0..2.0)` must
/// unify the literal's type with the result type, like upstream rand.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (bias < 2⁻⁶⁴,
/// irrelevant for simulation workloads).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                if span == 0 {
                    // Full-width u64 inclusive range: any bit pattern.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod seq {
    //! Sequence-related extensions.
    use super::{uniform_below, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

/// A fresh, arbitrarily-seeded generator (not thread-local here).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::from_entropy()
}

pub mod prelude {
    //! Drop-in for `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x = a.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = a.gen();
            assert!((0.0..1.0).contains(&u));
            let i = a.gen_range(0..=3u64);
            assert!(i <= 3);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
