//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! This workspace vendors minimal implementations of its external
//! dependencies so it builds and tests on machines with no crates.io
//! access (see `vendor/README.md`). Only the API surface the workspace
//! uses is provided. Semantics match parking_lot where it matters:
//! locks are not poisoned — a panic while holding a guard simply
//! releases the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
