//! The Unit System: units, pattern units and their resolution
//! (paper §III-B, §III-C, §V-C.2).
//!
//! A *unit* is the atomic entity an operator computes on: a component
//! node of the sensor tree plus a set of input and output sensors. A
//! *pattern unit* describes units abstractly: each sensor is given only
//! by name, with a [`LevelSpec`] for vertical navigation and an optional
//! regex *filter* for horizontal navigation. Binding a pattern against a
//! concrete sensor tree instantiates one unit per node in the output
//! pattern's domain — "the instantiation of thousands of independent ODA
//! models ... using only a small configuration block".
//!
//! Pattern expression syntax, exactly as printed in the paper:
//!
//! ```text
//! <topdown+1>power
//! <bottomup, filter cpu>cpu-cycles
//! <bottomup-1>healthy
//! ```

use crate::tree::{LevelSpec, SensorNavigator};
use dcdb_common::error::DcdbError;
use dcdb_common::regex::Regex;
use dcdb_common::topic::Topic;
use std::fmt;

/// One pattern expression: where to look (level + filter) and what
/// sensor name to bind.
#[derive(Debug, Clone)]
pub struct PatternExpr {
    /// Vertical navigation: the tree level of the node the sensor
    /// belongs to.
    pub level: LevelSpec,
    /// Horizontal navigation: keep only nodes whose *name* (last path
    /// segment) matches this regex.
    pub filter: Option<Regex>,
    /// The sensor name (last topic segment).
    pub sensor: String,
}

impl PatternExpr {
    /// Parses `<levelspec[, filter re]>sensor-name`.
    pub fn parse(s: &str) -> Result<PatternExpr, DcdbError> {
        let s = s.trim();
        let rest = s
            .strip_prefix('<')
            .ok_or_else(|| DcdbError::Parse(format!("pattern {s:?}: expected '<'")))?;
        let (inside, sensor) = rest
            .split_once('>')
            .ok_or_else(|| DcdbError::Parse(format!("pattern {s:?}: missing '>'")))?;
        let sensor = sensor.trim();
        if sensor.is_empty() || sensor.contains('/') {
            return Err(DcdbError::Parse(format!(
                "pattern {s:?}: sensor name must be a single non-empty segment"
            )));
        }
        let mut parts = inside.split(',');
        let level_str = parts.next().unwrap_or("").trim();
        let level = Self::parse_level(level_str)
            .ok_or_else(|| DcdbError::Parse(format!("pattern {s:?}: bad level {level_str:?}")))?;
        let mut filter = None;
        for clause in parts {
            let clause = clause.trim();
            if let Some(expr) = clause.strip_prefix("filter") {
                let expr = expr.trim();
                if expr.is_empty() {
                    return Err(DcdbError::Parse(format!(
                        "pattern {s:?}: empty filter expression"
                    )));
                }
                filter = Some(Regex::new(expr)?);
            } else {
                return Err(DcdbError::Parse(format!(
                    "pattern {s:?}: unknown clause {clause:?}"
                )));
            }
        }
        Ok(PatternExpr {
            level,
            filter,
            sensor: sensor.to_string(),
        })
    }

    fn parse_level(s: &str) -> Option<LevelSpec> {
        if let Some(rest) = s.strip_prefix("topdown") {
            let off = match rest.trim() {
                "" => 0,
                r => r.strip_prefix('+')?.trim().parse::<i64>().ok()?,
            };
            return Some(LevelSpec::TopDown(off));
        }
        if let Some(rest) = s.strip_prefix("bottomup") {
            let off = match rest.trim() {
                "" => 0,
                r => r.strip_prefix('-')?.trim().parse::<i64>().ok()?,
            };
            return Some(LevelSpec::BottomUp(off));
        }
        None
    }

    /// The expression's *domain*: every node at the resolved level whose
    /// name passes the filter.
    pub fn domain(&self, nav: &SensorNavigator) -> Result<Vec<Topic>, DcdbError> {
        let level = nav.resolve_level(self.level)?;
        Ok(nav
            .nodes_at_level(level)
            .iter()
            .filter(|node| {
                self.filter
                    .as_ref()
                    .map(|f| f.is_match(node.name()))
                    .unwrap_or(true)
            })
            .cloned()
            .collect())
    }
}

impl fmt::Display for PatternExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.level {
            LevelSpec::TopDown(0) => "topdown".to_string(),
            LevelSpec::TopDown(n) => format!("topdown+{n}"),
            LevelSpec::BottomUp(0) => "bottomup".to_string(),
            LevelSpec::BottomUp(n) => format!("bottomup-{n}"),
        };
        match &self.filter {
            Some(re) => write!(f, "<{level}, filter {}>{}", re.pattern(), self.sensor),
            None => write!(f, "<{level}>{}", self.sensor),
        }
    }
}

/// A pattern unit: the abstract I/O specification of an operator.
#[derive(Debug, Clone)]
pub struct UnitTemplate {
    /// Input sensor patterns.
    pub inputs: Vec<PatternExpr>,
    /// Output sensor patterns. The **first** output's domain defines the
    /// set of units instantiated.
    pub outputs: Vec<PatternExpr>,
}

impl UnitTemplate {
    /// Parses the paper's configuration block form: lists of pattern
    /// strings for inputs and outputs.
    pub fn parse(inputs: &[&str], outputs: &[&str]) -> Result<UnitTemplate, DcdbError> {
        if outputs.is_empty() {
            return Err(DcdbError::Config(
                "a unit template needs at least one output pattern".into(),
            ));
        }
        Ok(UnitTemplate {
            inputs: inputs
                .iter()
                .map(|s| PatternExpr::parse(s))
                .collect::<Result<_, _>>()?,
            outputs: outputs
                .iter()
                .map(|s| PatternExpr::parse(s))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A concrete, resolved unit (paper §III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// The unit's name: the sensor-tree node it is bound to.
    pub name: Topic,
    /// Fully-resolved input sensor topics.
    pub inputs: Vec<Topic>,
    /// Fully-resolved output sensor topics.
    pub outputs: Vec<Topic>,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} in, {} out)",
            self.name,
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

/// Why a candidate unit could not be built (diagnostics surfaced through
/// the REST API; silently skipping units makes configs undebuggable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedUnit {
    /// The candidate unit name.
    pub name: Topic,
    /// The pattern whose domain contributed no sensor.
    pub pattern: String,
}

/// Result of binding a template against a tree.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Successfully built units.
    pub units: Vec<Unit>,
    /// Candidates dropped because an input pattern had no match.
    pub skipped: Vec<SkippedUnit>,
}

/// Binds `template` against the sensor tree, following the paper's
/// three-step generation (§V-C.2):
///
/// 1. the domain of the first output pattern is computed;
/// 2. one unit is instantiated per node in that domain;
/// 3. each unit's sensors are resolved from the respective pattern
///    domains, keeping only nodes *hierarchically related* to the unit
///    name. A unit with any unmatchable input pattern is skipped.
///
/// Output sensors need not pre-exist in the tree (operators create
/// them); inputs must name sensors that exist.
pub fn resolve_units(
    template: &UnitTemplate,
    nav: &SensorNavigator,
) -> Result<Resolution, DcdbError> {
    let first_output = template
        .outputs
        .first()
        .ok_or_else(|| DcdbError::Config("unit template has no outputs".into()))?;
    let unit_domain = first_output.domain(nav)?;

    // Pre-compute every input pattern's domain once; per-unit work is
    // then a hierarchical-relation scan.
    let input_domains: Vec<Vec<Topic>> = template
        .inputs
        .iter()
        .map(|p| p.domain(nav))
        .collect::<Result<_, _>>()?;
    let output_domains: Vec<Vec<Topic>> = template
        .outputs
        .iter()
        .map(|p| p.domain(nav))
        .collect::<Result<_, _>>()?;

    let mut units = Vec::with_capacity(unit_domain.len());
    let mut skipped = Vec::new();

    'units: for unit_name in unit_domain {
        let mut inputs = Vec::new();
        for (pattern, domain) in template.inputs.iter().zip(&input_domains) {
            let mut matched = false;
            for node in domain {
                if !SensorNavigator::hierarchically_related(&unit_name, node) {
                    continue;
                }
                let sensor = node.child(&pattern.sensor)?;
                if nav.has_sensor(&sensor) {
                    inputs.push(sensor);
                    matched = true;
                }
            }
            if !matched {
                skipped.push(SkippedUnit {
                    name: unit_name.clone(),
                    pattern: pattern.to_string(),
                });
                continue 'units;
            }
        }

        let mut outputs = Vec::new();
        for (pattern, domain) in template.outputs.iter().zip(&output_domains) {
            for node in domain {
                if SensorNavigator::hierarchically_related(&unit_name, node) {
                    outputs.push(node.child(&pattern.sensor)?);
                }
            }
        }
        if outputs.is_empty() {
            skipped.push(SkippedUnit {
                name: unit_name.clone(),
                pattern: first_output.to_string(),
            });
            continue;
        }

        units.push(Unit {
            name: unit_name,
            inputs,
            outputs,
        });
    }

    Ok(Resolution { units, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    /// The full tree of the paper's Figure 2 example.
    fn paper_tree() -> SensorNavigator {
        let mut topics: Vec<Topic> = Vec::new();
        for r in ["r01", "r02", "r03", "r04"] {
            topics.push(t(&format!("/{r}/inlet-temp")));
            for c in ["c01", "c02", "c03"] {
                topics.push(t(&format!("/{r}/{c}/power")));
                for s in ["s01", "s02", "s03", "s04"] {
                    topics.push(t(&format!("/{r}/{c}/{s}/memfree")));
                    for cpu in ["cpu0", "cpu1"] {
                        topics.push(t(&format!("/{r}/{c}/{s}/{cpu}/cpu-cycles")));
                        topics.push(t(&format!("/{r}/{c}/{s}/{cpu}/cache-misses")));
                    }
                }
            }
        }
        SensorNavigator::build(&topics)
    }

    /// The paper's §III-C pattern unit, verbatim.
    fn paper_template() -> UnitTemplate {
        UnitTemplate::parse(
            &[
                "<topdown+1>power",
                "<bottomup, filter cpu>cpu-cycles",
                "<bottomup, filter cpu>cache-misses",
            ],
            &["<bottomup-1>healthy"],
        )
        .unwrap()
    }

    #[test]
    fn parse_pattern_expressions() {
        let p = PatternExpr::parse("<topdown+1>power").unwrap();
        assert_eq!(p.level, LevelSpec::TopDown(1));
        assert!(p.filter.is_none());
        assert_eq!(p.sensor, "power");

        let p = PatternExpr::parse("<bottomup, filter cpu>cpu-cycles").unwrap();
        assert_eq!(p.level, LevelSpec::BottomUp(0));
        assert_eq!(p.filter.as_ref().unwrap().pattern(), "cpu");
        assert_eq!(p.sensor, "cpu-cycles");

        let p = PatternExpr::parse("<bottomup-2>avg").unwrap();
        assert_eq!(p.level, LevelSpec::BottomUp(2));

        let p = PatternExpr::parse("<topdown>x").unwrap();
        assert_eq!(p.level, LevelSpec::TopDown(0));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "topdown>x",
            "<topdown",
            "<topdown>",
            "<topdown>a/b",
            "<updown>x",
            "<topdown-1>x",
            "<bottomup+1>x",
            "<topdown, wibble y>x",
            "<topdown, filter>x",
            "<topdown, filter [>x",
        ] {
            assert!(PatternExpr::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "<topdown+1>power",
            "<bottomup, filter cpu>cpu-cycles",
            "<bottomup-1>healthy",
            "<topdown>inlet-temp",
        ] {
            let p = PatternExpr::parse(s).unwrap();
            let printed = p.to_string();
            let reparsed = PatternExpr::parse(&printed).unwrap();
            assert_eq!(reparsed.to_string(), printed);
        }
    }

    #[test]
    fn domain_respects_level_and_filter() {
        let nav = paper_tree();
        let p = PatternExpr::parse("<topdown, filter ^r0[12]$>inlet-temp").unwrap();
        let d: Vec<String> = p
            .domain(&nav)
            .unwrap()
            .iter()
            .map(|x| x.as_str().to_string())
            .collect();
        assert_eq!(d, vec!["/r01", "/r02"]);
    }

    #[test]
    fn paper_example_resolves_exactly() {
        let nav = paper_tree();
        let resolution = resolve_units(&paper_template(), &nav).unwrap();
        // One unit per server: 4 racks × 3 chassis × 4 servers.
        assert_eq!(resolution.units.len(), 48);
        assert!(resolution.skipped.is_empty());

        let unit = resolution
            .units
            .iter()
            .find(|u| u.name.as_str() == "/r03/c02/s02")
            .expect("the paper's unit exists");
        let mut inputs: Vec<&str> = unit.inputs.iter().map(|x| x.as_str()).collect();
        inputs.sort();
        assert_eq!(
            inputs,
            vec![
                "/r03/c02/power",
                "/r03/c02/s02/cpu0/cache-misses",
                "/r03/c02/s02/cpu0/cpu-cycles",
                "/r03/c02/s02/cpu1/cache-misses",
                "/r03/c02/s02/cpu1/cpu-cycles",
            ]
        );
        assert_eq!(unit.outputs.len(), 1);
        assert_eq!(unit.outputs[0].as_str(), "/r03/c02/s02/healthy");
    }

    #[test]
    fn unit_isolation_between_siblings() {
        // The unit for s03 must not see s02's cpus or c01's power.
        let nav = paper_tree();
        let resolution = resolve_units(&paper_template(), &nav).unwrap();
        let unit = resolution
            .units
            .iter()
            .find(|u| u.name.as_str() == "/r01/c01/s03")
            .unwrap();
        assert!(unit
            .inputs
            .iter()
            .all(|i| i.as_str().starts_with("/r01/c01")));
        assert!(unit.inputs.iter().any(|i| i.as_str() == "/r01/c01/power"));
    }

    #[test]
    fn missing_input_sensor_skips_unit() {
        // A tree where one server has no cpu sensors.
        let topics = vec![
            t("/r1/c1/power"),
            t("/r1/c1/s1/cpu0/cpu-cycles"),
            t("/r1/c1/s1/cpu0/cache-misses"),
            t("/r1/c1/s1/memfree"),
            t("/r1/c1/s2/memfree"), // s2 has no cpus at all
            t("/r1/c1/s2/cpu-less/other"),
        ];
        let nav = SensorNavigator::build(&topics);
        let template = UnitTemplate::parse(
            &["<topdown+1>power", "<bottomup, filter cpu>cpu-cycles"],
            &["<bottomup-1>healthy"],
        )
        .unwrap();
        let resolution = resolve_units(&template, &nav).unwrap();
        let names: Vec<&str> = resolution.units.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["/r1/c1/s1"]);
        assert_eq!(resolution.skipped.len(), 1);
        assert_eq!(resolution.skipped[0].name.as_str(), "/r1/c1/s2");
        assert!(resolution.skipped[0].pattern.contains("cpu-cycles"));
    }

    #[test]
    fn same_level_input_resolves_to_unit_node() {
        let nav = paper_tree();
        let template =
            UnitTemplate::parse(&["<bottomup-1>memfree"], &["<bottomup-1>memfree-pred"]).unwrap();
        let resolution = resolve_units(&template, &nav).unwrap();
        assert_eq!(resolution.units.len(), 48);
        let u = &resolution.units[0];
        assert_eq!(u.inputs.len(), 1);
        assert_eq!(u.inputs[0], u.name.child("memfree").unwrap());
        assert_eq!(u.outputs[0], u.name.child("memfree-pred").unwrap());
    }

    #[test]
    fn output_filter_restricts_units() {
        let nav = paper_tree();
        let template = UnitTemplate::parse(
            &["<bottomup-1>memfree"],
            &["<bottomup-1, filter ^s01$>swap-pred"],
        )
        .unwrap();
        let resolution = resolve_units(&template, &nav).unwrap();
        assert_eq!(resolution.units.len(), 12); // one s01 per chassis
        assert!(resolution.units.iter().all(|u| u.name.name() == "s01"));
    }

    #[test]
    fn top_level_unit_sees_whole_subtree() {
        let nav = paper_tree();
        // Rack-level aggregation: every chassis power under the rack.
        let template =
            UnitTemplate::parse(&["<topdown+1>power"], &["<topdown>rack-power"]).unwrap();
        let resolution = resolve_units(&template, &nav).unwrap();
        assert_eq!(resolution.units.len(), 4);
        for u in &resolution.units {
            assert_eq!(u.inputs.len(), 3, "{u}");
            assert!(u.inputs.iter().all(|i| i.name() == "power"));
        }
    }

    #[test]
    fn multiple_outputs() {
        let nav = paper_tree();
        let template = UnitTemplate::parse(
            &["<bottomup, filter cpu>cpu-cycles"],
            &["<bottomup-1>healthy", "<bottomup-1>score"],
        )
        .unwrap();
        let resolution = resolve_units(&template, &nav).unwrap();
        let u = &resolution.units[0];
        assert_eq!(u.outputs.len(), 2);
        assert_eq!(u.outputs[0].name(), "healthy");
        assert_eq!(u.outputs[1].name(), "score");
    }

    #[test]
    fn template_requires_output() {
        assert!(UnitTemplate::parse(&["<topdown>x"], &[]).is_err());
    }
}
