//! k-means clustering (k-means++ seeding + Lloyd iterations).
//!
//! Used to initialize the mixture models' responsibilities and as the
//! simplest clustering baseline in the ablation benches: the paper picks
//! a *Bayesian* gaussian mixture precisely because simpler models need
//! the cluster count tuned by hand (§VI-D).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Per-point cluster assignment.
    pub labels: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on row-major `data` with `k` clusters.
///
/// Panics if `data` is empty or `k == 0`; if `k > n` the effective k is
/// clamped to n.
pub fn kmeans(data: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans on empty data");
    assert!(k > 0, "k must be positive");
    let k = k.min(data.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    let mut dists: Vec<f64> = data.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = data.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(data[next].clone());
        for (i, p) in data.iter().enumerate() {
            let d = sq_dist(p, centroids.last().unwrap());
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }

    // Lloyd iterations.
    let d = data[0].len();
    let mut labels = vec![0usize; data.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let (best, _) = centroids
                .iter()
                .enumerate()
                .map(|(c, cent)| (c, sq_dist(p, cent)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; d]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &l) in data.iter().zip(labels.iter()) {
            counts[l] += 1;
            for (s, &x) in sums[l].iter_mut().zip(p.iter()) {
                *s += x;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (j, s) in sums[c].iter().enumerate() {
                    centroid[j] = s / counts[c] as f64;
                }
            }
            // Empty clusters keep their old centroid; k-means++ makes
            // this rare and the mixture init tolerates it.
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = data
        .iter()
        .zip(labels.iter())
        .map(|(p, &l)| sq_dist(p, &centroids[l]))
        .sum();
    KMeansResult {
        centroids,
        labels,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.01;
            data.push(vec![0.0 + jitter, 0.0]);
            data.push(vec![10.0 + jitter, 10.0]);
            data.push(vec![-10.0, 10.0 + jitter]);
        }
        data
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = three_blobs();
        let res = kmeans(&data, 3, 100, 1);
        // Points from the same blob share a label.
        for chunk in data.chunks(3) {
            let _ = chunk;
        }
        let l0 = res.labels[0];
        let l1 = res.labels[1];
        let l2 = res.labels[2];
        assert!(l0 != l1 && l1 != l2 && l0 != l2);
        for (i, &l) in res.labels.iter().enumerate() {
            assert_eq!(l, [l0, l1, l2][i % 3], "point {i}");
        }
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![vec![1.0], vec![2.0]];
        let res = kmeans(&data, 10, 10, 0);
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![vec![1.0, 0.0], vec![3.0, 0.0], vec![5.0, 6.0]];
        let res = kmeans(&data, 1, 10, 0);
        assert!((res.centroids[0][0] - 3.0).abs() < 1e-12);
        assert!((res.centroids[0][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = vec![vec![4.0, 4.0]; 12];
        let res = kmeans(&data, 3, 10, 0);
        assert_eq!(res.labels.len(), 12);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = three_blobs();
        let a = kmeans(&data, 3, 100, 42);
        let b = kmeans(&data, 3, 100, 42);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = three_blobs();
        let k1 = kmeans(&data, 1, 100, 0).inertia;
        let k3 = kmeans(&data, 3, 100, 0).inertia;
        assert!(k3 < k1 / 10.0, "k1={k1} k3={k3}");
    }
}
