//! The storage VFS: every byte the durable engine moves goes through
//! [`StorageIo`].
//!
//! The PR-1 engine called `std::fs` directly, which made storage I/O
//! faults — the dominant real-world failure mode of production ODA
//! deployments — untestable: a full disk, a flaky controller or a
//! failing fsync could only be observed in production. This module
//! pulls every filesystem operation behind a small trait with two
//! implementations:
//!
//! * [`StdIo`] — the production implementation, a thin veneer over
//!   `std::fs` with the exact semantics the engine always had;
//! * [`FaultIo`] — a seeded, deterministic fault injector wrapping any
//!   inner [`StorageIo`]. Per-op-class fault schedules (ENOSPC after a
//!   byte budget, per-op EIO probability, fsync failure, torn/short
//!   writes, injected latency) replay bit-for-bit from a single seed,
//!   and an optional virtual-time window gates when faults fire — the
//!   same clocking discipline as the bus's `ChaosBus`, so storage
//!   chaos composes with transport chaos in one deterministic run.
//!
//! The surface is deliberately coarse (whole-file reads, ranged reads,
//! append-oriented writes) because that is all the WAL, segment,
//! and snapshot formats need — a narrow waist keeps both
//! implementations honest.

use dcdb_common::error::{DcdbError, Result};
use dcdb_common::sim::{EventTrace, SimClock};
use dcdb_common::time::Timestamp;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A writable file handle produced by [`StorageIo::create`] or
/// [`StorageIo::open_append`].
pub trait IoFile: Send {
    /// Appends `buf` in full (short writes surface as errors).
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;
    /// Forces written data to stable storage (`fsync`).
    fn sync(&mut self) -> Result<()>;
    /// Truncates the file to `len` bytes — used to restore a clean
    /// prefix after a failed (possibly partial) append.
    fn truncate(&mut self, len: u64) -> Result<()>;
    /// A second handle to the same underlying file, for use by a
    /// background fsync thread (an fsync on either handle flushes the
    /// same inode). `None` when the implementation cannot (or should
    /// not) support concurrent syncing — callers must then sync
    /// in-line.
    fn try_clone(&self) -> Option<Box<dyn IoFile>> {
        None
    }
}

/// The filesystem operations the durable engine performs, as a
/// swappable VFS. See the module docs.
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) a file for writing.
    fn create(&self, path: &Path) -> Result<Box<dyn IoFile>>;
    /// Opens an existing file for appending, truncating it to
    /// `truncate_to` bytes first.
    fn open_append(&self, path: &Path, truncate_to: u64) -> Result<Box<dyn IoFile>>;
    /// Reads an entire file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// Reads exactly `len` bytes starting at `offset`.
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Length of a file in bytes.
    fn file_len(&self, path: &Path) -> Result<u64>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> Result<()>;
    /// Lists the entries of a directory.
    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>>;
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<()>;
    /// Fsyncs a directory so renames inside it are durable.
    fn sync_dir(&self, dir: &Path) -> Result<()>;
}

// ---------------------------------------------------------------------------
// StdIo — production implementation over std::fs.
// ---------------------------------------------------------------------------

/// The production [`StorageIo`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

struct StdFile(File);

impl IoFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.0.write_all(buf)?;
        Ok(())
    }
    fn sync(&mut self) -> Result<()> {
        self.0.sync_data()?;
        Ok(())
    }
    fn truncate(&mut self, len: u64) -> Result<()> {
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::Start(len))?;
        Ok(())
    }
    fn try_clone(&self) -> Option<Box<dyn IoFile>> {
        self.0
            .try_clone()
            .ok()
            .map(|f| Box::new(StdFile(f)) as Box<dyn IoFile>)
    }
}

impl StorageIo for StdIo {
    fn create(&self, path: &Path) -> Result<Box<dyn IoFile>> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn open_append(&self, path: &Path, truncate_to: u64) -> Result<Box<dyn IoFile>> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(truncate_to)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(StdFile(file)))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultIo — seeded deterministic fault injection.
// ---------------------------------------------------------------------------

/// The fault schedule of a [`FaultIo`]. All probabilities are in
/// `[0, 1]`; identical seeds replay identical fault sequences.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the fault RNG.
    pub seed: u64,
    /// Writes (and file creations) fail with `ENOSPC` once the injector
    /// has passed this many bytes through while faults are active —
    /// a disk filling up.
    pub enospc_after_bytes: Option<u64>,
    /// Probability that a read or write op fails with `EIO`.
    pub eio_prob: f64,
    /// Probability that an `fsync` reports failure (the data may or may
    /// not have reached the platter — exactly the ambiguity real fsync
    /// failures carry, which is why the WAL poisons the fd).
    pub fsync_fail_prob: f64,
    /// Probability that a write is torn: a strict prefix of the buffer
    /// reaches the inner file, then the op fails with `EIO`.
    pub torn_write_prob: f64,
    /// Latency injected per I/O op, nanoseconds. Accounted in
    /// [`FaultIoStats::injected_latency_ns`]; also slept on the wall
    /// clock when [`FaultConfig::sleep_on_latency`] is set (for live
    /// `wintermute-sim` runs — tests and benches keep it virtual).
    pub latency_ns: u64,
    /// Sleep for `latency_ns` on every op instead of only accounting it.
    pub sleep_on_latency: bool,
    /// Virtual-time window `[from_ns, until_ns)` during which faults
    /// fire; `None` means always. Clocked by [`FaultIo::advance`], like
    /// the bus's `ChaosBus`.
    pub window_ns: Option<(u64, u64)>,
}

impl FaultConfig {
    /// A schedule that injects nothing (a transparent wrapper).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            enospc_after_bytes: None,
            eio_prob: 0.0,
            fsync_fail_prob: 0.0,
            torn_write_prob: 0.0,
            latency_ns: 0,
            sleep_on_latency: false,
            window_ns: None,
        }
    }

    /// Restricts the schedule to a virtual-time window, milliseconds.
    pub fn with_window_ms(mut self, from_ms: u64, until_ms: u64) -> FaultConfig {
        self.window_ns = Some((from_ms * 1_000_000, until_ms * 1_000_000));
        self
    }

    fn injects_anything(&self) -> bool {
        self.enospc_after_bytes.is_some()
            || self.eio_prob > 0.0
            || self.fsync_fail_prob > 0.0
            || self.torn_write_prob > 0.0
            || self.latency_ns > 0
    }
}

/// Injection and traffic counters of a [`FaultIo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultIoStats {
    /// Write/create ops refused with `ENOSPC`.
    pub injected_enospc: u64,
    /// Read/write ops failed with `EIO`.
    pub injected_eio: u64,
    /// Fsyncs that reported failure.
    pub injected_fsync_failures: u64,
    /// Writes torn after a strict prefix.
    pub injected_torn_writes: u64,
    /// Total latency injected, nanoseconds (virtual unless
    /// `sleep_on_latency`).
    pub injected_latency_ns: u64,
    /// Write ops attempted (including failed ones).
    pub writes: u64,
    /// Read ops attempted.
    pub reads: u64,
    /// Sync ops attempted.
    pub syncs: u64,
    /// Bytes accepted by the inner io (prefix bytes of torn writes
    /// included).
    pub bytes_written: u64,
}

#[derive(Debug)]
struct FaultState {
    config: Mutex<FaultConfig>,
    rng: Mutex<u64>,
    clock: Arc<SimClock>,
    trace: Mutex<Option<(EventTrace, String)>>,
    injected_enospc: AtomicU64,
    injected_eio: AtomicU64,
    injected_fsync_failures: AtomicU64,
    injected_torn_writes: AtomicU64,
    injected_latency_ns: AtomicU64,
    writes: AtomicU64,
    reads: AtomicU64,
    syncs: AtomicU64,
    bytes_written: AtomicU64,
}

/// xorshift64* step; decent-quality deterministic draws without a
/// dependency on this hot-path crate.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultState {
    /// Appends an injected-fault event to the attached trace, if any.
    fn record(&self, kind: &str) {
        if let Some((trace, label)) = self.trace.lock().as_ref() {
            trace.record(self.clock.now(), "io", &format!("{label} {kind}"));
        }
    }

    /// Draws a uniform f64 in [0, 1).
    fn draw(&self) -> f64 {
        let x = xorshift(&mut self.rng.lock());
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn draw_below(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            xorshift(&mut self.rng.lock()) % n
        }
    }

    fn active(&self, config: &FaultConfig) -> bool {
        if !config.injects_anything() {
            return false;
        }
        match config.window_ns {
            None => true,
            Some((from, until)) => {
                let now = self.clock.now_ns();
                now >= from && now < until
            }
        }
    }

    fn latency(&self, config: &FaultConfig) {
        if config.latency_ns > 0 {
            self.injected_latency_ns
                .fetch_add(config.latency_ns, Ordering::Relaxed);
            if config.sleep_on_latency {
                std::thread::sleep(std::time::Duration::from_nanos(config.latency_ns));
            }
        }
    }
}

fn enospc() -> DcdbError {
    DcdbError::Io(std::io::Error::from_raw_os_error(28)) // ENOSPC
}

fn eio(what: &str) -> DcdbError {
    DcdbError::Io(std::io::Error::other(format!(
        "injected I/O error ({what})"
    )))
}

/// Deterministic fault-injecting [`StorageIo`] wrapper. See the module
/// docs for the fault classes.
#[derive(Debug, Clone)]
pub struct FaultIo {
    inner: Arc<dyn StorageIo>,
    state: Arc<FaultState>,
}

impl FaultIo {
    /// Wraps `inner` behind the fault schedule `config`, on a private
    /// clock.
    pub fn new(inner: Arc<dyn StorageIo>, config: FaultConfig) -> FaultIo {
        FaultIo::with_clock(inner, config, SimClock::new())
    }

    /// Wraps `inner` ticking from a shared [`SimClock`], so storage
    /// fault windows and the bus/delivery chaos layers observe one
    /// timeline.
    pub fn with_clock(
        inner: Arc<dyn StorageIo>,
        config: FaultConfig,
        clock: Arc<SimClock>,
    ) -> FaultIo {
        FaultIo {
            inner,
            state: Arc::new(FaultState {
                rng: Mutex::new(config.seed | 1),
                config: Mutex::new(config),
                clock,
                trace: Mutex::new(None),
                injected_enospc: AtomicU64::new(0),
                injected_eio: AtomicU64::new(0),
                injected_fsync_failures: AtomicU64::new(0),
                injected_torn_writes: AtomicU64::new(0),
                injected_latency_ns: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                reads: AtomicU64::new(0),
                syncs: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
            }),
        }
    }

    /// Wraps the production [`StdIo`] behind the schedule.
    pub fn std(config: FaultConfig) -> FaultIo {
        FaultIo::new(Arc::new(StdIo), config)
    }

    /// Advances virtual time; window-gated faults fire only while the
    /// clock sits inside the configured window. The shared [`SimClock`]
    /// is monotonic (`fetch_max`): out-of-order ticks never rewind the
    /// window.
    pub fn advance(&self, now: Timestamp) {
        self.state.clock.advance_to(now);
    }

    /// Attaches the canonical event trace; every injected fault is
    /// appended as `<label> <kind>` under the `io` lane (the label
    /// distinguishes per-shard devices sharing one trace).
    pub fn set_trace(&self, trace: EventTrace, label: &str) {
        *self.state.trace.lock() = Some((trace, label.to_string()));
    }

    /// The shared virtual clock this wrapper ticks from.
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.state.clock)
    }

    /// Replaces the fault schedule (counters and the clock persist).
    pub fn set_config(&self, config: FaultConfig) {
        *self.state.config.lock() = config;
    }

    /// Clears all faults, turning the wrapper transparent.
    pub fn clear_faults(&self) {
        let seed = self.state.config.lock().seed;
        self.set_config(FaultConfig::quiet(seed));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultIoStats {
        let s = &self.state;
        FaultIoStats {
            injected_enospc: s.injected_enospc.load(Ordering::Relaxed),
            injected_eio: s.injected_eio.load(Ordering::Relaxed),
            injected_fsync_failures: s.injected_fsync_failures.load(Ordering::Relaxed),
            injected_torn_writes: s.injected_torn_writes.load(Ordering::Relaxed),
            injected_latency_ns: s.injected_latency_ns.load(Ordering::Relaxed),
            writes: s.writes.load(Ordering::Relaxed),
            reads: s.reads.load(Ordering::Relaxed),
            syncs: s.syncs.load(Ordering::Relaxed),
            bytes_written: s.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// ENOSPC / EIO gate shared by create and open ops.
    fn check_write_op(&self, what: &str) -> Result<()> {
        let config = *self.state.config.lock();
        if !self.state.active(&config) {
            return Ok(());
        }
        self.state.latency(&config);
        if let Some(budget) = config.enospc_after_bytes {
            if self.state.bytes_written.load(Ordering::Relaxed) >= budget {
                self.state.injected_enospc.fetch_add(1, Ordering::Relaxed);
                self.state.record("enospc");
                return Err(enospc());
            }
        }
        if config.eio_prob > 0.0 && self.state.draw() < config.eio_prob {
            self.state.injected_eio.fetch_add(1, Ordering::Relaxed);
            self.state.record("eio");
            return Err(eio(what));
        }
        Ok(())
    }

    fn check_read_op(&self, what: &str) -> Result<()> {
        self.state.reads.fetch_add(1, Ordering::Relaxed);
        let config = *self.state.config.lock();
        if !self.state.active(&config) {
            return Ok(());
        }
        self.state.latency(&config);
        if config.eio_prob > 0.0 && self.state.draw() < config.eio_prob {
            self.state.injected_eio.fetch_add(1, Ordering::Relaxed);
            self.state.record("eio");
            return Err(eio(what));
        }
        Ok(())
    }
}

struct FaultFile {
    inner: Box<dyn IoFile>,
    state: Arc<FaultState>,
}

impl IoFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.state.writes.fetch_add(1, Ordering::Relaxed);
        let config = *self.state.config.lock();
        if self.state.active(&config) {
            self.state.latency(&config);
            if let Some(budget) = config.enospc_after_bytes {
                let written = self.state.bytes_written.load(Ordering::Relaxed);
                if written.saturating_add(buf.len() as u64) > budget {
                    // Model a filling disk: accept what fits, refuse the
                    // record — a short write the caller must roll back.
                    let room = budget.saturating_sub(written) as usize;
                    if room > 0 {
                        let _ = self.inner.write_all(&buf[..room.min(buf.len())]);
                        self.state
                            .bytes_written
                            .fetch_add(room.min(buf.len()) as u64, Ordering::Relaxed);
                    }
                    self.state.injected_enospc.fetch_add(1, Ordering::Relaxed);
                    self.state.record("enospc");
                    return Err(enospc());
                }
            }
            if config.torn_write_prob > 0.0 && self.state.draw() < config.torn_write_prob {
                // Tear the write: a strict prefix lands, then EIO.
                let cut = self.state.draw_below(buf.len().max(1) as u64) as usize;
                if cut > 0 {
                    let _ = self.inner.write_all(&buf[..cut]);
                    self.state
                        .bytes_written
                        .fetch_add(cut as u64, Ordering::Relaxed);
                }
                self.state
                    .injected_torn_writes
                    .fetch_add(1, Ordering::Relaxed);
                self.state.record("torn-write");
                return Err(eio("torn write"));
            }
            if config.eio_prob > 0.0 && self.state.draw() < config.eio_prob {
                self.state.injected_eio.fetch_add(1, Ordering::Relaxed);
                self.state.record("eio");
                return Err(eio("write"));
            }
        }
        self.inner.write_all(buf)?;
        self.state
            .bytes_written
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.state.syncs.fetch_add(1, Ordering::Relaxed);
        let config = *self.state.config.lock();
        if self.state.active(&config) {
            self.state.latency(&config);
            if config.fsync_fail_prob > 0.0 && self.state.draw() < config.fsync_fail_prob {
                self.state
                    .injected_fsync_failures
                    .fetch_add(1, Ordering::Relaxed);
                self.state.record("fsync-fail");
                // Like a real failing fsync, data may or may not be
                // durable; the inner sync is deliberately skipped.
                return Err(eio("fsync"));
            }
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        let config = *self.state.config.lock();
        if self.state.active(&config)
            && config.eio_prob > 0.0
            && self.state.draw() < config.eio_prob
        {
            self.state.injected_eio.fetch_add(1, Ordering::Relaxed);
            return Err(eio("truncate"));
        }
        self.inner.truncate(len)
    }

    // Deliberately no `try_clone`: a background sync thread would
    // interleave its RNG draws with the writer's, breaking the
    // replay-from-seed guarantee. Under fault injection the WAL falls
    // back to in-line fsyncs, which exercise the same failure rules.
}

impl StorageIo for FaultIo {
    fn create(&self, path: &Path) -> Result<Box<dyn IoFile>> {
        self.state.writes.fetch_add(1, Ordering::Relaxed);
        self.check_write_op("create")?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_append(&self, path: &Path, truncate_to: u64) -> Result<Box<dyn IoFile>> {
        self.state.writes.fetch_add(1, Ordering::Relaxed);
        self.check_write_op("open_append")?;
        let inner = self.inner.open_append(path, truncate_to)?;
        Ok(Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        self.check_read_op("read")?;
        self.inner.read(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.check_read_op("read_range")?;
        self.inner.read_range(path, offset, len)
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        self.inner.file_len(path)
    }

    // Namespace ops are kept fault-free: quarantine moves and crash
    // cleanup must be able to make progress even mid-outage, and the
    // interesting failure modes (lost acks, torn journals, poisoned
    // fsync) all live on the data path.
    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dcdb-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn std_io_round_trips() {
        let path = temp("std-roundtrip");
        let io = StdIo;
        let mut f = io.create(&path).unwrap();
        f.write_all(b"hello world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello world");
        assert_eq!(io.read_range(&path, 6, 5).unwrap(), b"world");
        assert_eq!(io.file_len(&path).unwrap(), 11);
        let mut f = io.open_append(&path, 5).unwrap();
        f.write_all(b"!").unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello!");
        io.remove(&path).unwrap();
        assert!(io.read(&path).is_err());
    }

    #[test]
    fn fault_io_is_transparent_when_quiet() {
        let path = temp("quiet");
        let io = FaultIo::std(FaultConfig::quiet(7));
        let mut f = io.create(&path).unwrap();
        f.write_all(b"data").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"data");
        let s = io.stats();
        assert_eq!(
            s.injected_eio + s.injected_enospc + s.injected_fsync_failures,
            0
        );
        assert_eq!(s.bytes_written, 4);
        StdIo.remove(&path).ok();
    }

    #[test]
    fn enospc_fires_after_budget_and_is_deterministic() {
        let path = temp("enospc");
        let mut cfg = FaultConfig::quiet(42);
        cfg.enospc_after_bytes = Some(10);
        let io = FaultIo::std(cfg);
        let mut f = io.create(&path).unwrap();
        f.write_all(b"12345").unwrap();
        f.write_all(b"1234").unwrap();
        // 9 bytes down, budget 10: the next 5-byte write must fail.
        let err = f.write_all(b"67890").unwrap_err();
        assert!(err.to_string().contains("os error 28"), "{err}");
        assert_eq!(io.stats().injected_enospc, 1);
        // And stays failing: the disk is "full".
        assert!(f.write_all(b"x").is_err());
        StdIo.remove(&path).ok();
    }

    #[test]
    fn torn_writes_leave_a_strict_prefix() {
        let path = temp("torn");
        let mut cfg = FaultConfig::quiet(1234);
        cfg.torn_write_prob = 1.0;
        let io = FaultIo::std(cfg);
        let mut f = io.create(&path).unwrap();
        assert!(f.write_all(&[0xAB; 64]).is_err());
        drop(f);
        let on_disk = StdIo.read(&path).unwrap();
        assert!(on_disk.len() < 64, "torn write persisted fully");
        assert!(on_disk.iter().all(|&b| b == 0xAB));
        assert_eq!(io.stats().injected_torn_writes, 1);
        StdIo.remove(&path).ok();
    }

    #[test]
    fn fsync_failures_and_eio_replay_from_seed() {
        let run = |seed: u64| {
            let path = temp(&format!("replay-{seed}"));
            let io = FaultIo::std(FaultConfig::quiet(seed));
            let mut f = io.create(&path).unwrap();
            let mut cfg = FaultConfig::quiet(seed);
            cfg.fsync_fail_prob = 0.5;
            cfg.eio_prob = 0.3;
            io.set_config(cfg);
            let mut outcomes = Vec::new();
            for i in 0..50 {
                outcomes.push(f.write_all(&[i as u8]).is_ok());
                outcomes.push(f.sync().is_ok());
            }
            drop(f);
            StdIo.remove(&path).ok();
            (outcomes, io.stats())
        };
        let (a, sa) = run(99);
        let (b, sb) = run(99);
        assert_eq!(a, b, "same seed must replay identically");
        assert_eq!(sa, sb);
        assert!(sa.injected_fsync_failures > 0);
        assert!(sa.injected_eio > 0);
        let (c, _) = run(100);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn window_gates_faults_on_virtual_time() {
        let path = temp("window");
        let mut cfg = FaultConfig::quiet(5).with_window_ms(1_000, 2_000);
        cfg.eio_prob = 1.0;
        let io = FaultIo::std(cfg);
        let mut f = io.create(&path).unwrap();
        // Before the window: clean.
        assert!(f.write_all(b"a").is_ok());
        io.advance(Timestamp::from_millis(1_500));
        assert!(f.write_all(b"b").is_err());
        io.advance(Timestamp::from_millis(2_500));
        assert!(f.write_all(b"c").is_ok());
        drop(f);
        assert_eq!(StdIo.read(&path).unwrap(), b"ac");
        StdIo.remove(&path).ok();
    }

    #[test]
    fn clear_faults_heals_the_wrapper() {
        let path = temp("clear");
        let mut cfg = FaultConfig::quiet(9);
        cfg.eio_prob = 1.0;
        let io = FaultIo::std(cfg);
        assert!(io.create(&path).is_err());
        io.clear_faults();
        let mut f = io.create(&path).unwrap();
        f.write_all(b"ok").unwrap();
        drop(f);
        StdIo.remove(&path).ok();
    }

    #[test]
    fn latency_is_accounted_virtually() {
        let path = temp("latency");
        let mut cfg = FaultConfig::quiet(3);
        cfg.latency_ns = 1_000_000;
        let io = FaultIo::std(cfg);
        let mut f = io.create(&path).unwrap();
        f.write_all(b"x").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(io.stats().injected_latency_ns >= 3_000_000);
        StdIo.remove(&path).ok();
    }
}
